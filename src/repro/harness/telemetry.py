"""The harness's one wall-clock boundary.

Everything the harness *computes* is deterministic — simulated metrics
must be byte-identical across executors, hosts and repeat runs.  The
only legitimate uses of the host clock are telemetry (how long did the
sweep take, events per wall-second) and artifact timestamps, and they
all go through this module so the determinism checker (``repro lint``,
RPR001) can verify by inspection that no wall-clock read sits anywhere
near measured results.  Nothing here may influence a simulated value.
"""

from __future__ import annotations

import time


def wall_clock() -> float:
    """A monotonic high-resolution timestamp for elapsed-time telemetry.

    Only differences are meaningful; never store the absolute value in
    an artifact.
    """
    return time.perf_counter()


def unix_now() -> float:
    """The wall time as a Unix timestamp, for artifact ``created``
    fields and log stamps — never for measured quantities."""
    return time.time()


class Stopwatch:
    """Elapsed wall time since construction (or the last ``restart``).

    The one idiom the harness needs: start before the work, read
    ``elapsed`` after it, report the difference as telemetry.
    """

    __slots__ = ("_started",)

    def __init__(self) -> None:
        self._started = wall_clock()

    def restart(self) -> None:
        self._started = wall_clock()

    @property
    def elapsed(self) -> float:
        return wall_clock() - self._started
