"""ASCII plotting for experiment series.

The paper presents Figures 4–6 as line plots (latency on a log axis);
the CLI renders a terminal approximation so the curve *shapes* —
flat CT, SC below BFT, saturation blow-ups, Figure 6's straight lines —
are visible without leaving the shell.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError

_MARKERS = "ox+*#@%&"


def _scale(value: float, lo: float, hi: float, log: bool) -> float:
    if log:
        return (math.log10(value) - math.log10(lo)) / (
            math.log10(hi) - math.log10(lo)
        )
    return (value - lo) / (hi - lo)


def ascii_plot(
    title: str,
    series: dict[str, list[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    log_y: bool = False,
    xlabel: str = "x",
    ylabel: str = "y",
) -> str:
    """Render named (x, y) series on one character grid.

    Each series gets a marker from ``oxо+*…``; the legend maps markers
    back to names.  ``log_y`` mimics the paper's log-scale latency axes.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ConfigError("nothing to plot")
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if log_y and y_lo <= 0:
        raise ConfigError("log axis needs positive values")
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo * 1.1 if y_lo else 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in pts:
            col = round(_scale(x, x_lo, x_hi, log=False) * (width - 1))
            row = round(_scale(y, y_lo, y_hi, log=log_y) * (height - 1))
            grid[height - 1 - row][col] = marker

    y_hi_label = f"{y_hi:.4g}"
    y_lo_label = f"{y_lo:.4g}"
    margin = max(len(y_hi_label), len(y_lo_label)) + 1
    lines = [title, "=" * len(title)]
    for i, row in enumerate(grid):
        if i == 0:
            label = y_hi_label.rjust(margin - 1)
        elif i == height - 1:
            label = y_lo_label.rjust(margin - 1)
        else:
            label = " " * (margin - 1)
        lines.append(f"{label}│{''.join(row)}")
    lines.append(" " * (margin - 1) + "└" + "─" * width)
    x_axis = f"{x_lo:.4g}".ljust(width - 8) + f"{x_hi:.4g}".rjust(8)
    lines.append(" " * margin + x_axis)
    axis_note = f"{ylabel}{' (log)' if log_y else ''} vs {xlabel}"
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"{axis_note}   legend: {legend}")
    return "\n".join(lines)
