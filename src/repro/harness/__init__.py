"""Experiment harness: clusters, workloads, metrics and the paper's
figures.

* :mod:`~repro.harness.cluster` — builds a complete simulated
  deployment of any protocol plugin registered in
  :mod:`repro.protocols` (``sc``, ``scr``, ``bft``, ``ct``, ...);
* :mod:`~repro.harness.scenario` — declarative ``ScenarioSpec``:
  protocol + workload + faults + network + duration/seed as one
  frozen value, runnable one-off, as runner grids, or via
  ``python -m repro scenario``;
* :mod:`~repro.harness.workload` — open-loop clients;
* :mod:`~repro.harness.probes` — registry-backed measurement probes
  streaming over the trace (``order-latency``, ``throughput``,
  ``failover``, and anything registered);
* :mod:`~repro.harness.metrics` — post-hoc latency / throughput /
  fail-over extraction from retained traces (the probes' oracle);
* :mod:`~repro.harness.experiments` — one runner per paper artefact
  (Figure 4, Figure 5, Figure 6, the f = 3 discussion), with a CLI:
  ``python -m repro fig4`` / ``python -m repro suite``;
* :mod:`~repro.harness.runner` — pure sweep tasks executed across a
  worker-process pool (``--jobs N``);
* :mod:`~repro.harness.artifact` — machine-readable ``BENCH_*.json``
  benchmark artifacts;
* :mod:`~repro.harness.baseline` — perf-regression comparator over
  artifacts;
* :mod:`~repro.harness.sweeps` — shared sweep constants and helpers;
* :mod:`~repro.harness.report` — plain-text rendering of the series.
"""

from repro.harness.cluster import Cluster, build_cluster
from repro.harness.scenario import (
    BUILTIN_SCENARIOS,
    ScenarioResult,
    ScenarioSpec,
    build_scenario,
    load_spec,
    run_scenario,
    scenario_grid,
)
from repro.harness.metrics import (
    LatencyStats,
    collect_latencies,
    failover_latency,
    latency_stats,
    linear_fit,
    throughput_per_process,
)
from repro.harness.probes import (
    MetricSeries,
    Probe,
    ProbeContext,
    ProbeReport,
)
from repro.harness.stats import Summary, repeat_order_experiment, summarize
from repro.harness.workload import OpenLoopWorkload, saturating_rate

__all__ = [
    "BUILTIN_SCENARIOS",
    "Cluster",
    "LatencyStats",
    "MetricSeries",
    "Probe",
    "ProbeContext",
    "ProbeReport",
    "OpenLoopWorkload",
    "ScenarioResult",
    "ScenarioSpec",
    "Summary",
    "build_cluster",
    "build_scenario",
    "collect_latencies",
    "load_spec",
    "run_scenario",
    "scenario_grid",
    "failover_latency",
    "latency_stats",
    "linear_fit",
    "repeat_order_experiment",
    "saturating_rate",
    "summarize",
    "throughput_per_process",
]
