"""Hot-path performance measurement: ``python -m repro perf``.

The simulated metrics of this repository are deterministic, so the
only way the harness itself can regress is in *wall time* — and until
artifact schema v2 nothing recorded it.  This module makes the
harness's speed a first-class, reproducible number:

* :func:`run_reference_point` executes the committed reference sweep
  point (the profile subject of the hot-path optimisation work: SC,
  md5-rsa1024, 10 ms batching, 60 batches) and reports wall seconds
  and simulator events per second;
* :func:`microbench` times the individual hot-path ingredients —
  canonical encoding (cold and memo-warm), ``signing_bytes`` with its
  cache, and the digest backends — so a regression can be localised
  without re-profiling;
* ``--profile`` wraps the reference run in :mod:`cProfile` and prints
  the top of the table, which is exactly how the optimisation targets
  were found in the first place.

Wall numbers are machine-dependent: compare them across commits on
one machine (CI prints them in the job summary), never across
machines.
"""

from __future__ import annotations

import cProfile
import io
import json
import os
import pstats
import subprocess
import time
from dataclasses import dataclass, replace
from pathlib import Path

from repro.errors import ConfigError
from repro.harness.report import render_table
from repro.harness.runner import SweepTask, run_task
from repro.harness.telemetry import Stopwatch, unix_now

#: Version tag of the ``BENCH_perf.json`` record this module emits.
#: Bump on any field rename/removal; the trend comparator skips
#: records whose schema it does not recognise rather than guessing.
PERF_SCHEMA = "repro.perf/1"

#: The committed reference point: saturating SC run, 10 ms batching.
#: Small enough to run in seconds, busy enough (~30k simulator events,
#: ~2.4k signature operations) to exercise every hot path.
REFERENCE_TASK = SweepTask(
    kind="order",
    protocol="sc",
    scheme="md5-rsa1024",
    batching_interval=0.01,
    n_batches=60,
)


@dataclass(frozen=True)
class PerfPoint:
    """One timed execution of the reference point."""

    wall_time_s: float
    events: int
    events_per_second: float


def run_reference_point(task: SweepTask = REFERENCE_TASK) -> PerfPoint:
    """Execute the reference point once and time it."""
    point = run_task(task)
    events = point.events_processed
    return PerfPoint(
        wall_time_s=point.wall_time,
        events=events,
        events_per_second=(
            events / point.wall_time if point.wall_time > 0 else 0.0
        ),
    )


def _ops_per_second(fn, min_time: float = 0.2) -> float:
    """Run ``fn`` repeatedly for at least ``min_time`` seconds."""
    count = 0
    watch = Stopwatch()
    elapsed = 0.0
    while elapsed < min_time:
        fn()
        count += 1
        elapsed = watch.elapsed
    return count / elapsed


def sample_hotpath_message(n_entries: int = 25):
    """A representative doubly-signed order batch (~1 KB).

    The shared fixture for this module's microbench *and*
    ``benchmarks/bench_hotpath.py`` — one builder, so the two reports
    measure the same object shape and stay comparable.
    """
    from repro.core.messages import OrderBatch, OrderEntry
    from repro.crypto.schemes import MD5_RSA_1024
    from repro.crypto.signed import countersign, sign_message
    from repro.crypto.signing import SimulatedSignatureProvider

    provider = SimulatedSignatureProvider(MD5_RSA_1024, ["p1", "p1'"])
    entries = tuple(
        OrderEntry(seq=i, req_digest=bytes(range(16)), client="c1", req_id=i)
        for i in range(1, n_entries + 1)
    )
    batch = OrderBatch(rank=1, batch_id=7, entries=entries)
    return countersign(provider, "p1'", sign_message(provider, "p1", batch))


def microbench() -> list[tuple[str, float, str]]:
    """Per-ingredient hot-path rates: ``(name, ops_or_mb_per_s, unit)``."""
    import copy

    from repro.crypto.canon import encode_canonical, strip_memo
    from repro.crypto.digests import digest
    from repro.crypto.encoding import reference_canonical_bytes
    from repro.crypto.signed import signing_bytes

    message = sample_hotpath_message()
    results: list[tuple[str, float, str]] = []
    results.append((
        "canonical encode (reference oracle)",
        _ops_per_second(lambda: reference_canonical_bytes(message)),
        "msg/s",
    ))
    # Cold: every memo in the object graph is stripped before each
    # encode, so the measured rate is the no-cache single-pass encoder
    # (the stripping itself is a few attribute deletes, noise-level).
    cold = copy.deepcopy(message)

    def encode_cold():
        strip_memo(cold)
        encode_canonical(cold)

    results.append((
        "canonical encode (fast, cold)", _ops_per_second(encode_cold), "msg/s"
    ))
    results.append((
        "canonical encode (fast, memo-warm)",
        _ops_per_second(lambda: encode_canonical(message)),
        "msg/s",
    ))
    results.append((
        "signing_bytes (cached)",
        _ops_per_second(
            lambda: signing_bytes(message.body, message.signatures)
        ),
        "msg/s",
    ))
    data = bytes(range(256)) * 4  # 1 KB
    for name, use_stdlib in (("hashlib", True), ("from-scratch", False)):
        rate = _ops_per_second(lambda: digest("md5", data, use_stdlib=use_stdlib))
        results.append((f"md5 1KB ({name})", rate / 1024.0, "MB/s"))
    # The streaming-measurement overhead: one probe consuming one
    # commit record — the per-record cost every probed sweep pays on
    # the emit path.
    from repro.harness.probes import OrderLatencyProbe, ProbeContext
    from repro.sim.trace import TraceRecord

    probe = OrderLatencyProbe(ProbeContext(window_end=1.0))
    record = TraceRecord(0.5, "order_committed",
                         {"rank": 1, "batch_id": 3, "actor": "p2",
                          "n_requests": 25})
    results.append((
        "probe consume (order-latency)",
        _ops_per_second(lambda: probe.consume(record)),
        "rec/s",
    ))
    return results


def profile_reference_point(task: SweepTask = REFERENCE_TASK, top: int = 20) -> str:
    """cProfile the reference point; returns the formatted top table."""
    profiler = cProfile.Profile()
    profiler.enable()
    run_task(task)
    profiler.disable()
    stream = io.StringIO()
    pstats.Stats(profiler, stream=stream).sort_stats("cumulative").print_stats(top)
    return stream.getvalue()


# ----------------------------------------------------------------------
# Versioned perf records (``repro perf --json``) and the trend gate
# (``repro perf compare --history DIR``)
# ----------------------------------------------------------------------
def _git_sha() -> str:
    """The current commit, for labelling perf records.

    Falls back to ``GITHUB_SHA`` (checkout actions sometimes run from
    a detached worktree state) and then ``"unknown"`` — a record is
    still comparable without provenance, just harder to bisect.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, check=False,
        )
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except OSError:
        pass
    return os.environ.get("GITHUB_SHA", "unknown")


def collect_perf_record(repeats: int = 3, include_micro: bool = True) -> dict:
    """Measure the reference point in both crypto modes plus the
    microbench rows, as one versioned, JSON-ready record.

    Best-of-``repeats`` wall time is recorded per mode (minimum is the
    right statistic for a deterministic workload on a noisy machine:
    every run does identical work, so the fastest run is the one with
    the least interference).
    """
    repeats = max(1, repeats)
    default_runs = [run_reference_point() for _ in range(repeats)]
    fast_task = replace(REFERENCE_TASK, fast_crypto=True)
    fast_runs = [
        run_reference_point(fast_task) for _ in range(repeats)
    ]

    def best(runs: list[PerfPoint]) -> dict:
        top = min(runs, key=lambda r: r.wall_time_s)
        return {
            "wall_time_s": top.wall_time_s,
            "events": top.events,
            "events_per_second": top.events_per_second,
        }

    record = {
        "schema": PERF_SCHEMA,
        "created_unix": unix_now(),
        "git_sha": _git_sha(),
        "reference_point": REFERENCE_TASK.point_id,
        "repeats": repeats,
        "reference": {
            "default": best(default_runs),
            "fast_crypto": best(fast_runs),
        },
    }
    if include_micro:
        record["microbench"] = [
            {"name": name, "rate": rate, "unit": unit}
            for name, rate, unit in microbench()
        ]
    return record


def write_perf_record(record: dict, path: str | Path) -> Path:
    """Write one perf record as JSON, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def load_history(directory: str | Path) -> list[dict]:
    """Load every recognisable perf record under ``directory``,
    oldest first (by recorded creation time, then filename for
    stability when clocks collide)."""
    directory = Path(directory)
    if not directory.is_dir():
        raise ConfigError(f"perf history directory {directory} does not exist")
    records = []
    for path in sorted(directory.glob("*.json")):
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(record, dict) or record.get("schema") != PERF_SCHEMA:
            continue
        record["_path"] = str(path)
        records.append(record)
    records.sort(key=lambda r: (r.get("created_unix", 0.0), r["_path"]))
    return records


def trend_verdict(
    eps_history: list[float],
    tolerance_pct: float = 15.0,
    window: int = 3,
) -> tuple[bool, str]:
    """Gate a sequence of events/s measurements against *sustained*
    regression.

    A single slow point is expected on shared CI runners, so one bad
    sample never fails the gate.  The gate trips only when the last
    ``window`` points (including the newest) **all** fall below
    ``(1 - tolerance) × reference``, where the reference is the median
    of the points *before* that window — a sustained, not transient,
    slowdown.  With fewer than ``window + 1`` points there is no
    before-window reference yet, so the gate passes while history
    accumulates.

    Returns ``(ok, explanation)``.
    """
    if window < 1:
        raise ConfigError("trend window must be >= 1")
    n = len(eps_history)
    if n < window + 1:
        return True, (
            f"insufficient history ({n} point(s), need {window + 1}); "
            f"gate passes while history accumulates"
        )
    earlier = sorted(eps_history[:-window])
    mid = len(earlier) // 2
    if len(earlier) % 2:
        reference = earlier[mid]
    else:
        reference = (earlier[mid - 1] + earlier[mid]) / 2.0
    floor = reference * (1.0 - tolerance_pct / 100.0)
    tail = eps_history[-window:]
    below = [eps < floor for eps in tail]
    if all(below):
        return False, (
            f"sustained regression: last {window} points "
            f"({', '.join(f'{e:,.0f}' for e in tail)} events/s) all below "
            f"{floor:,.0f} events/s ({tolerance_pct:g}% under the "
            f"reference median {reference:,.0f})"
        )
    slow = sum(below)
    note = (
        f"{slow} of the last {window} below the floor (transient, not "
        f"sustained)" if slow else f"last {window} points at or above the floor"
    )
    return True, (
        f"no sustained regression: {note}; reference median "
        f"{reference:,.0f} events/s, floor {floor:,.0f}"
    )


def _record_eps(record: dict) -> float:
    return float(record["reference"]["default"]["events_per_second"])


def cmd_perf_compare(args) -> int:
    """CLI entry: trend-gate the perf history directory.

    The newest record is the point under test; everything older is
    history.  Prints a per-point table (markdown with ``--markdown``,
    for ``$GITHUB_STEP_SUMMARY``) and exits 1 on a sustained
    regression.
    """
    directory = Path(args.history)
    if not directory.is_dir():
        # First run on a fresh branch/cache: not an error, just no
        # baseline to trend against yet.
        print(f"no perf history at {directory}: no trend yet — gate passes")
        return 0
    records = load_history(directory)
    if len(records) < 2:
        count = f"{len(records)} perf record(s)"
        print(f"{count} under {directory}: no trend yet — gate passes "
              f"(need at least 2 records to compare)")
        return 0
    eps = [_record_eps(r) for r in records]
    ok, why = trend_verdict(eps, tolerance_pct=args.tolerance,
                            window=args.window)
    newest = eps[-1]
    rows = []
    for record, value in zip(records, eps):
        sha = str(record.get("git_sha", "unknown"))[:10]
        created = time.strftime(
            "%Y-%m-%d %H:%M", time.gmtime(record.get("created_unix", 0))
        )
        delta = (value / eps[0] - 1.0) * 100.0 if eps[0] else 0.0
        wall = record["reference"]["default"]["wall_time_s"]
        fast = record["reference"].get("fast_crypto", {})
        fast_wall = fast.get("wall_time_s")
        rows.append((
            sha, created, f"{wall:.3f}",
            "-" if fast_wall is None else f"{fast_wall:.3f}",
            f"{value:,.0f}", f"{delta:+.1f}%",
        ))
    header = ("commit", "when (UTC)", "wall (s)", "fast-crypto wall (s)",
              "events/s", "Δ vs oldest")
    if args.markdown:
        print(f"### Perf trend — {records[-1]['reference_point']}")
        print()
        print("| " + " | ".join(header) + " |")
        print("|" + "|".join(" --- " for _ in header) + "|")
        for row in rows:
            print("| " + " | ".join(row) + " |")
        print()
        print(("✅ " if ok else "❌ ") + why)
    else:
        print(render_table(
            f"Perf trend — {records[-1]['reference_point']} "
            f"(newest: {newest:,.0f} events/s)",
            header, rows,
        ))
        print(("PASS: " if ok else "FAIL: ") + why)
    return 0 if ok else 1


def cmd_perf(args) -> int:
    """CLI entry: time the reference point (and optionally profile it)."""
    if getattr(args, "perf_command", None) == "compare":
        return cmd_perf_compare(args)
    if args.json:
        record = collect_perf_record(
            repeats=max(1, args.repeat), include_micro=not args.no_micro
        )
        path = write_perf_record(record, args.json)
        default = record["reference"]["default"]
        fast = record["reference"]["fast_crypto"]
        print(
            f"wrote {path}: default {default['wall_time_s']:.3f}s "
            f"({default['events_per_second']:,.0f} events/s), fast-crypto "
            f"{fast['wall_time_s']:.3f}s "
            f"({fast['events_per_second']:,.0f} events/s)"
        )
        return 0
    repeats = max(1, args.repeat)
    runs = [run_reference_point() for _ in range(repeats)]
    best = min(runs, key=lambda r: r.wall_time_s)
    rows = [
        (
            f"run {i + 1}",
            f"{r.wall_time_s:.3f}",
            f"{r.events}",
            f"{r.events_per_second:,.0f}",
        )
        for i, r in enumerate(runs)
    ]
    rows.append((
        "best", f"{best.wall_time_s:.3f}", f"{best.events}",
        f"{best.events_per_second:,.0f}",
    ))
    print(render_table(
        f"Reference point — {REFERENCE_TASK.point_id}",
        ("run", "wall (s)", "events", "events/s"),
        rows,
    ))
    # The dispatch scheduler's shape-derived cost key next to the
    # measured event count: a sanity anchor for the heuristic in
    # repro.harness.exec.schedule (units are arbitrary; only the
    # ordering across tasks matters).
    from repro.harness.exec.schedule import predicted_cost

    print(f"  scheduler cost key (shape heuristic): "
          f"{predicted_cost(REFERENCE_TASK):,.0f} slots; "
          f"measured events: {best.events:,}")
    if not args.no_micro:
        micro = [
            (name, f"{rate:,.0f}", unit) for name, rate, unit in microbench()
        ]
        print()
        print(render_table(
            "Hot-path microbenchmarks",
            ("ingredient", "rate", "unit"),
            micro,
        ))
    if args.profile:
        print()
        print(profile_reference_point(top=args.profile_top))
    return 0


def add_perf_arguments(parser) -> None:
    """Install ``perf`` options on an argparse subparser."""
    parser.add_argument("--repeat", type=int, default=3,
                        help="timed executions of the reference point "
                             "(default %(default)s; best is reported)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="emit a versioned BENCH_perf.json record "
                             "(reference point in default and fast-crypto "
                             "modes, microbench rows, git sha) instead of "
                             "the human tables")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile the reference point and print the top")
    parser.add_argument("--profile-top", type=int, default=20,
                        help="rows of cProfile output (default %(default)s)")
    parser.add_argument("--no-micro", action="store_true",
                        help="skip the per-ingredient microbenchmarks")
    sub = parser.add_subparsers(dest="perf_command")
    compare = sub.add_parser(
        "compare",
        help="trend-gate a directory of BENCH_perf.json records "
             "(fails only on a sustained regression)",
    )
    compare.add_argument("--history", required=True, metavar="DIR",
                         help="directory of perf records; the newest is "
                              "the point under test")
    compare.add_argument("--tolerance", type=float, default=15.0,
                         help="allowed events/s drop vs the reference "
                              "median, percent (default %(default)s)")
    compare.add_argument("--window", type=int, default=3,
                         help="consecutive below-floor points that "
                              "constitute a sustained regression "
                              "(default %(default)s)")
    compare.add_argument("--markdown", action="store_true",
                         help="emit a GitHub-flavoured markdown table "
                              "(for $GITHUB_STEP_SUMMARY)")
