"""Hot-path performance measurement: ``python -m repro perf``.

The simulated metrics of this repository are deterministic, so the
only way the harness itself can regress is in *wall time* — and until
artifact schema v2 nothing recorded it.  This module makes the
harness's speed a first-class, reproducible number:

* :func:`run_reference_point` executes the committed reference sweep
  point (the profile subject of the hot-path optimisation work: SC,
  md5-rsa1024, 10 ms batching, 60 batches) and reports wall seconds
  and simulator events per second;
* :func:`microbench` times the individual hot-path ingredients —
  canonical encoding (cold and memo-warm), ``signing_bytes`` with its
  cache, and the digest backends — so a regression can be localised
  without re-profiling;
* ``--profile`` wraps the reference run in :mod:`cProfile` and prints
  the top of the table, which is exactly how the optimisation targets
  were found in the first place.

Wall numbers are machine-dependent: compare them across commits on
one machine (CI prints them in the job summary), never across
machines.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from dataclasses import dataclass

from repro.harness.report import render_table
from repro.harness.runner import SweepTask, run_task

#: The committed reference point: saturating SC run, 10 ms batching.
#: Small enough to run in seconds, busy enough (~30k simulator events,
#: ~2.4k signature operations) to exercise every hot path.
REFERENCE_TASK = SweepTask(
    kind="order",
    protocol="sc",
    scheme="md5-rsa1024",
    batching_interval=0.01,
    n_batches=60,
)


@dataclass(frozen=True)
class PerfPoint:
    """One timed execution of the reference point."""

    wall_time_s: float
    events: int
    events_per_second: float


def run_reference_point(task: SweepTask = REFERENCE_TASK) -> PerfPoint:
    """Execute the reference point once and time it."""
    point = run_task(task)
    events = point.events_processed
    return PerfPoint(
        wall_time_s=point.wall_time,
        events=events,
        events_per_second=(
            events / point.wall_time if point.wall_time > 0 else 0.0
        ),
    )


def _ops_per_second(fn, min_time: float = 0.2) -> float:
    """Run ``fn`` repeatedly for at least ``min_time`` seconds."""
    count = 0
    started = time.perf_counter()
    elapsed = 0.0
    while elapsed < min_time:
        fn()
        count += 1
        elapsed = time.perf_counter() - started
    return count / elapsed


def sample_hotpath_message(n_entries: int = 25):
    """A representative doubly-signed order batch (~1 KB).

    The shared fixture for this module's microbench *and*
    ``benchmarks/bench_hotpath.py`` — one builder, so the two reports
    measure the same object shape and stay comparable.
    """
    from repro.core.messages import OrderBatch, OrderEntry
    from repro.crypto.schemes import MD5_RSA_1024
    from repro.crypto.signed import countersign, sign_message
    from repro.crypto.signing import SimulatedSignatureProvider

    provider = SimulatedSignatureProvider(MD5_RSA_1024, ["p1", "p1'"])
    entries = tuple(
        OrderEntry(seq=i, req_digest=bytes(range(16)), client="c1", req_id=i)
        for i in range(1, n_entries + 1)
    )
    batch = OrderBatch(rank=1, batch_id=7, entries=entries)
    return countersign(provider, "p1'", sign_message(provider, "p1", batch))


def microbench() -> list[tuple[str, float, str]]:
    """Per-ingredient hot-path rates: ``(name, ops_or_mb_per_s, unit)``."""
    import copy

    from repro.crypto.canon import encode_canonical, strip_memo
    from repro.crypto.digests import digest
    from repro.crypto.encoding import reference_canonical_bytes
    from repro.crypto.signed import signing_bytes

    message = sample_hotpath_message()
    results: list[tuple[str, float, str]] = []
    results.append((
        "canonical encode (reference oracle)",
        _ops_per_second(lambda: reference_canonical_bytes(message)),
        "msg/s",
    ))
    # Cold: every memo in the object graph is stripped before each
    # encode, so the measured rate is the no-cache single-pass encoder
    # (the stripping itself is a few attribute deletes, noise-level).
    cold = copy.deepcopy(message)

    def encode_cold():
        strip_memo(cold)
        encode_canonical(cold)

    results.append((
        "canonical encode (fast, cold)", _ops_per_second(encode_cold), "msg/s"
    ))
    results.append((
        "canonical encode (fast, memo-warm)",
        _ops_per_second(lambda: encode_canonical(message)),
        "msg/s",
    ))
    results.append((
        "signing_bytes (cached)",
        _ops_per_second(
            lambda: signing_bytes(message.body, message.signatures)
        ),
        "msg/s",
    ))
    data = bytes(range(256)) * 4  # 1 KB
    for name, use_stdlib in (("hashlib", True), ("from-scratch", False)):
        rate = _ops_per_second(lambda: digest("md5", data, use_stdlib=use_stdlib))
        results.append((f"md5 1KB ({name})", rate / 1024.0, "MB/s"))
    # The streaming-measurement overhead: one probe consuming one
    # commit record — the per-record cost every probed sweep pays on
    # the emit path.
    from repro.harness.probes import OrderLatencyProbe, ProbeContext
    from repro.sim.trace import TraceRecord

    probe = OrderLatencyProbe(ProbeContext(window_end=1.0))
    record = TraceRecord(0.5, "order_committed",
                         {"rank": 1, "batch_id": 3, "actor": "p2",
                          "n_requests": 25})
    results.append((
        "probe consume (order-latency)",
        _ops_per_second(lambda: probe.consume(record)),
        "rec/s",
    ))
    return results


def profile_reference_point(task: SweepTask = REFERENCE_TASK, top: int = 20) -> str:
    """cProfile the reference point; returns the formatted top table."""
    profiler = cProfile.Profile()
    profiler.enable()
    run_task(task)
    profiler.disable()
    stream = io.StringIO()
    pstats.Stats(profiler, stream=stream).sort_stats("cumulative").print_stats(top)
    return stream.getvalue()


def cmd_perf(args) -> int:
    """CLI entry: time the reference point (and optionally profile it)."""
    repeats = max(1, args.repeat)
    runs = [run_reference_point() for _ in range(repeats)]
    best = min(runs, key=lambda r: r.wall_time_s)
    rows = [
        (
            f"run {i + 1}",
            f"{r.wall_time_s:.3f}",
            f"{r.events}",
            f"{r.events_per_second:,.0f}",
        )
        for i, r in enumerate(runs)
    ]
    rows.append((
        "best", f"{best.wall_time_s:.3f}", f"{best.events}",
        f"{best.events_per_second:,.0f}",
    ))
    print(render_table(
        f"Reference point — {REFERENCE_TASK.point_id}",
        ("run", "wall (s)", "events", "events/s"),
        rows,
    ))
    # The dispatch scheduler's shape-derived cost key next to the
    # measured event count: a sanity anchor for the heuristic in
    # repro.harness.exec.schedule (units are arbitrary; only the
    # ordering across tasks matters).
    from repro.harness.exec.schedule import predicted_cost

    print(f"  scheduler cost key (shape heuristic): "
          f"{predicted_cost(REFERENCE_TASK):,.0f} slots; "
          f"measured events: {best.events:,}")
    if not args.no_micro:
        micro = [
            (name, f"{rate:,.0f}", unit) for name, rate, unit in microbench()
        ]
        print()
        print(render_table(
            "Hot-path microbenchmarks",
            ("ingredient", "rate", "unit"),
            micro,
        ))
    if args.profile:
        print()
        print(profile_reference_point(top=args.profile_top))
    return 0


def add_perf_arguments(parser) -> None:
    """Install ``perf`` options on an argparse subparser."""
    parser.add_argument("--repeat", type=int, default=3,
                        help="timed executions of the reference point "
                             "(default %(default)s; best is reported)")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile the reference point and print the top")
    parser.add_argument("--profile-top", type=int, default=20,
                        help="rows of cProfile output (default %(default)s)")
    parser.add_argument("--no-micro", action="store_true",
                        help="skip the per-ingredient microbenchmarks")
