"""Aggregated population workload model: O(events), not O(clients).

The paper's open-loop driver (:class:`~repro.harness.workload.
OpenLoopWorkload`) models every client individually, so population
size — not event rate — caps scenario scale.  This module inverts
that: a declarative :class:`PopulationSpec` describes *how many*
clients exist and how load is composed, and :func:`population_stream`
superposes the per-class arrival streams into one merged event stream,
sampling the issuing client id **at delivery time**.  A million-client
day therefore costs exactly as much as its event count.

Building blocks:

* :class:`ClassSpec` — one traffic class: a share of the aggregate
  rate plus an inter-arrival law (``poisson``, ``uniform``, or
  bounded-``pareto`` for heavy-tailed gaps).
* :class:`EnvelopeSpec` — a piecewise-linear rate envelope (diurnal
  curves, flash crowds) applied through *thinning*: candidates are
  generated at the peak rate and accepted with probability
  ``factor(t) / max_factor``, so draws stay deterministic per seed and
  a flat envelope is bit-identical to no envelope at the peak rate.
* :class:`ZipfSampler` — rejection-inversion Zipf sampling (Hörmann &
  Derflinger) in O(1) memory: no CDF table over 10^6 ids.
* :func:`population_stream` — the merged ``(time, class, client_id)``
  stream, reproducible from a :class:`~repro.sim.rng.RngRegistry`
  seed, so the simulator and the live TCP driver replay the **same**
  schedule (checked via :class:`StreamDigest`).
"""

from __future__ import annotations

import hashlib
import heapq
import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import ConfigError
from repro.harness.workload import arrival_times
from repro.sim.rng import RngRegistry

ID_DISTRIBUTIONS = ("uniform", "zipf")
SPACINGS = ("poisson", "uniform", "pareto")

#: RNG stream names, shared verbatim by sim and live drivers.
ID_STREAM = "population:ids"


def class_stream_name(class_name: str) -> str:
    return f"population:{class_name}"


# ---------------------------------------------------------------------------
# Declarative spec
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClassSpec:
    """One traffic class inside a population.

    ``share`` is a relative weight: the class emits
    ``share / sum(shares)`` of the aggregate rate.  ``pareto`` spacing
    draws bounded-Pareto inter-arrival gaps with tail index
    ``pareto_alpha`` and upper bound ``pareto_cap`` × mean gap, scaled
    so the mean gap still matches the class rate.
    """

    name: str
    share: float = 1.0
    spacing: str = "poisson"
    pareto_alpha: float = 1.5
    pareto_cap: float = 50.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("population class needs a non-empty name")
        if self.share <= 0:
            raise ConfigError(f"class {self.name!r}: share must be > 0, got {self.share}")
        if self.spacing not in SPACINGS:
            raise ConfigError(
                f"class {self.name!r}: spacing must be one of {SPACINGS}, "
                f"got {self.spacing!r}"
            )
        if self.spacing == "pareto":
            if self.pareto_alpha <= 0:
                raise ConfigError(
                    f"class {self.name!r}: pareto_alpha must be > 0, "
                    f"got {self.pareto_alpha}"
                )
            if self.pareto_cap <= 1:
                raise ConfigError(
                    f"class {self.name!r}: pareto_cap must be > 1 (it bounds the "
                    f"tail at cap × mean gap), got {self.pareto_cap}"
                )


@dataclass(frozen=True)
class EnvelopeSpec:
    """Piecewise-linear rate envelope: ``(time, factor)`` knots.

    ``factor(t)`` interpolates linearly between knots and clamps to
    the first/last factor outside the knot range.  Factors are
    multipliers on the class rate; the peak factor defines the
    candidate rate for thinning.
    """

    points: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ConfigError("envelope needs at least one (time, factor) point")
        times = [t for t, _ in self.points]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ConfigError("envelope times must be strictly increasing")
        if any(factor < 0 for _, factor in self.points):
            raise ConfigError("envelope factors must be >= 0")
        if max(factor for _, factor in self.points) <= 0:
            raise ConfigError("envelope needs at least one factor > 0")

    @property
    def max_factor(self) -> float:
        return max(factor for _, factor in self.points)

    def factor(self, t: float) -> float:
        points = self.points
        if t <= points[0][0]:
            return points[0][1]
        if t >= points[-1][0]:
            return points[-1][1]
        for (t0, f0), (t1, f1) in zip(points, points[1:]):
            if t0 <= t <= t1:
                return f0 + (f1 - f0) * (t - t0) / (t1 - t0)
        raise AssertionError("unreachable: t inside knot range")


@dataclass(frozen=True)
class PopulationSpec:
    """Declarative client population for aggregated workloads."""

    clients: int
    id_distribution: str = "uniform"
    zipf_s: float = 1.1
    classes: tuple[ClassSpec, ...] = field(
        default_factory=lambda: (ClassSpec(name="all"),)
    )
    envelope: EnvelopeSpec | None = None

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ConfigError(f"population clients must be >= 1, got {self.clients}")
        if self.id_distribution not in ID_DISTRIBUTIONS:
            raise ConfigError(
                f"id_distribution must be one of {ID_DISTRIBUTIONS}, "
                f"got {self.id_distribution!r}"
            )
        if self.id_distribution == "zipf" and self.zipf_s <= 0:
            raise ConfigError(f"zipf_s must be > 0, got {self.zipf_s}")
        if not self.classes:
            raise ConfigError("population needs at least one traffic class")
        names = [cls.name for cls in self.classes]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate population class names: {names}")

    def class_rates(self, aggregate_rate: float) -> dict[str, float]:
        """Split an aggregate request rate across classes by share."""
        if aggregate_rate <= 0:
            raise ConfigError(f"aggregate rate must be > 0, got {aggregate_rate}")
        total = sum(cls.share for cls in self.classes)
        return {cls.name: aggregate_rate * cls.share / total for cls in self.classes}


# --- dict round-trip (JSON/TOML spec files) --------------------------------


def _check_keys(data: dict, allowed: tuple[str, ...], where: str) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise ConfigError(f"unknown key(s) in {where}: {', '.join(unknown)}")


def population_from_dict(data: dict, where: str = "population") -> PopulationSpec:
    if not isinstance(data, dict):
        raise ConfigError(f"{where} must be a table/object")
    _check_keys(
        data, ("clients", "id_distribution", "zipf_s", "classes", "envelope"), where
    )
    if "clients" not in data:
        raise ConfigError(f"{where} needs a 'clients' count")
    kwargs: dict = {"clients": int(data["clients"])}
    if "id_distribution" in data:
        kwargs["id_distribution"] = str(data["id_distribution"])
    if "zipf_s" in data:
        kwargs["zipf_s"] = float(data["zipf_s"])
    if "classes" in data:
        classes = []
        for i, entry in enumerate(data["classes"]):
            cls_where = f"{where}.classes[{i}]"
            if not isinstance(entry, dict):
                raise ConfigError(f"{cls_where} must be a table/object")
            _check_keys(
                entry,
                ("name", "share", "spacing", "pareto_alpha", "pareto_cap"),
                cls_where,
            )
            if "name" not in entry:
                raise ConfigError(f"{cls_where} needs a 'name'")
            classes.append(
                ClassSpec(
                    name=str(entry["name"]),
                    share=float(entry.get("share", 1.0)),
                    spacing=str(entry.get("spacing", "poisson")),
                    pareto_alpha=float(entry.get("pareto_alpha", 1.5)),
                    pareto_cap=float(entry.get("pareto_cap", 50.0)),
                )
            )
        kwargs["classes"] = tuple(classes)
    if "envelope" in data and data["envelope"] is not None:
        env = data["envelope"]
        if not isinstance(env, dict):
            raise ConfigError(f"{where}.envelope must be a table/object")
        _check_keys(env, ("points",), f"{where}.envelope")
        points = tuple(
            (float(t), float(factor)) for t, factor in env.get("points", ())
        )
        kwargs["envelope"] = EnvelopeSpec(points=points)
    return PopulationSpec(**kwargs)


def population_to_dict(spec: PopulationSpec) -> dict:
    data: dict = {
        "clients": spec.clients,
        "id_distribution": spec.id_distribution,
        "classes": [
            {
                "name": cls.name,
                "share": cls.share,
                "spacing": cls.spacing,
                **(
                    {"pareto_alpha": cls.pareto_alpha, "pareto_cap": cls.pareto_cap}
                    if cls.spacing == "pareto"
                    else {}
                ),
            }
            for cls in spec.classes
        ],
    }
    if spec.id_distribution == "zipf":
        data["zipf_s"] = spec.zipf_s
    if spec.envelope is not None:
        data["envelope"] = {"points": [list(p) for p in spec.envelope.points]}
    return data


# ---------------------------------------------------------------------------
# Client-id sampling
# ---------------------------------------------------------------------------


class ZipfSampler:
    """Zipf(s) sampling over ``{1..n}`` by rejection inversion.

    Hörmann & Derflinger's O(1)-memory sampler (the scheme behind
    commons-math's ``RejectionInversionZipfSampler``): invert the
    integral of the dominating hat function, then accept/reject.  No
    CDF table is materialised, so ``n = 10^6`` costs the same as
    ``n = 10``.
    """

    def __init__(self, n: int, s: float) -> None:
        if n < 1:
            raise ConfigError(f"zipf support size must be >= 1, got {n}")
        if s <= 0:
            raise ConfigError(f"zipf exponent must be > 0, got {s}")
        self.n = n
        self.s = s
        self._h_x1 = self._h_integral(1.5) - 1.0
        self._h_n = self._h_integral(n + 0.5)
        self._threshold = 2.0 - self._h_integral_inverse(
            self._h_integral(2.5) - self._h(2.0)
        )

    def _h(self, x: float) -> float:
        return math.exp(-self.s * math.log(x))

    def _h_integral(self, x: float) -> float:
        log_x = math.log(x)
        return _helper((1.0 - self.s) * log_x) * log_x

    def _h_integral_inverse(self, x: float) -> float:
        t = x * (1.0 - self.s)
        if t < -1.0:
            t = -1.0  # guard rounding at the support edge
        return math.exp(_helper_inverse(t) * x)

    def sample(self, rng) -> int:
        while True:
            u = self._h_n + rng.random() * (self._h_x1 - self._h_n)
            x = self._h_integral_inverse(u)
            k = int(x + 0.5)
            if k < 1:
                k = 1
            elif k > self.n:
                k = self.n
            if (k - x <= self._threshold) or (
                u >= self._h_integral(k + 0.5) - self._h(float(k))
            ):
                return k


def _helper(x: float) -> float:
    """``(exp(x) - 1) / x`` with a stable small-x expansion."""
    if abs(x) > 1e-8:
        return math.expm1(x) / x
    return 1.0 + x / 2.0 * (1.0 + x / 3.0 * (1.0 + x / 4.0))


def _helper_inverse(x: float) -> float:
    """``log(1 + x) / x`` with a stable small-x expansion."""
    if abs(x) > 1e-8:
        return math.log1p(x) / x
    return 1.0 - x / 2.0 * (1.0 - (2.0 * x) / 3.0 * (1.0 - (3.0 * x) / 4.0))


def make_id_sampler(spec: PopulationSpec):
    """A ``sample(rng) -> id`` callable for the spec's id distribution."""
    if spec.id_distribution == "zipf":
        return ZipfSampler(spec.clients, spec.zipf_s).sample
    n = spec.clients
    return lambda rng: rng.randrange(1, n + 1)


# ---------------------------------------------------------------------------
# Heavy-tailed gaps
# ---------------------------------------------------------------------------


def _bounded_pareto_mean(low: float, high: float, alpha: float) -> float:
    if alpha == 1.0:
        return low * high / (high - low) * math.log(high / low)
    return (
        (low**alpha / (1.0 - (low / high) ** alpha))
        * (alpha / (alpha - 1.0))
        * (low ** (1.0 - alpha) - high ** (1.0 - alpha))
    )


def bounded_pareto_params(mean: float, alpha: float, cap: float) -> tuple[float, float]:
    """``(low, high)`` for a bounded Pareto with the requested mean.

    ``high = cap × mean``; ``low`` is solved by bisection (the mean is
    monotone increasing in ``low``) so the gap distribution matches
    the class rate exactly despite the truncation.
    """
    high = cap * mean
    lo, hi = mean * 1e-12, mean
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if _bounded_pareto_mean(mid, high, alpha) < mean:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi), high


def _class_arrivals(
    cls: ClassSpec,
    rate: float,
    duration: float,
    rng,
    envelope: EnvelopeSpec | None,
    start: float,
) -> Iterator[float]:
    """Arrival times for one class in ``[start, start + duration)``.

    Without an envelope, ``poisson``/``uniform`` spacing defers to
    :func:`~repro.harness.workload.arrival_times` verbatim, so a
    single-class population is bit-identical to the per-client model's
    stream (superposition equivalence is tested on this).  With an
    envelope, candidates are generated at the peak rate and thinned:
    the gap is drawn *before* the acceptance draw, so a flat envelope
    degenerates to the plain stream plus one extra draw per event.
    """
    if cls.spacing == "pareto":
        # Thinning candidates must come in at the peak rate.
        peak = rate if envelope is None else rate * envelope.max_factor
        low, high = bounded_pareto_params(1.0 / peak, cls.pareto_alpha, cls.pareto_cap)
        tail = 1.0 - (low / high) ** cls.pareto_alpha
        inv_alpha = -1.0 / cls.pareto_alpha

        def gap() -> float:
            return low * (1.0 - rng.random() * tail) ** inv_alpha

    elif envelope is not None:
        peak = rate * envelope.max_factor
        if cls.spacing == "poisson":
            def gap() -> float:
                return rng.expovariate(peak)
        else:
            mean_gap = 1.0 / peak

            def gap() -> float:
                return mean_gap

    else:
        yield from arrival_times(
            rate,
            duration,
            spacing=cls.spacing,
            rng=rng if cls.spacing == "poisson" else None,
            start=start,
        )
        return

    if envelope is None:
        t = start
        while True:
            t += gap()
            if t - start >= duration:
                return
            yield t
    else:
        max_factor = envelope.max_factor
        t = start
        while True:
            t += gap()
            if t - start >= duration:
                return
            # Thinning: gap first, acceptance second, both from the
            # class stream — deterministic per seed.
            if rng.random() * max_factor < envelope.factor(t - start):
                yield t


# ---------------------------------------------------------------------------
# The merged stream
# ---------------------------------------------------------------------------


def population_stream(
    population: PopulationSpec,
    aggregate_rate: float,
    duration: float,
    registry: RngRegistry,
    start: float = 0.0,
) -> Iterator[tuple[float, str, int]]:
    """Yield ``(time, class_name, client_id)`` in merged time order.

    Per-class streams draw from ``registry.stream("population:<name>")``
    and client ids from ``registry.stream("population:ids")`` in merged
    order, so the whole schedule is a pure function of the registry
    seed — the simulator and the live driver construct identical
    streams (see :class:`StreamDigest`).
    """
    rates = population.class_rates(aggregate_rate)
    id_rng = registry.stream(ID_STREAM)
    sample_id = make_id_sampler(population)
    heads: list[tuple[float, int, str, Iterator[float]]] = []
    for index, cls in enumerate(population.classes):
        stream = _class_arrivals(
            cls,
            rates[cls.name],
            duration,
            registry.stream(class_stream_name(cls.name)),
            population.envelope,
            start,
        )
        first = next(stream, None)
        if first is not None:
            heads.append((first, index, cls.name, stream))
    heapq.heapify(heads)
    while heads:
        t, index, name, stream = heads[0]
        yield t, name, sample_id(id_rng)
        nxt = next(stream, None)
        if nxt is None:
            heapq.heappop(heads)
        else:
            heapq.heapreplace(heads, (nxt, index, name, stream))


class StreamDigest:
    """Incremental fingerprint of a ``(time, class, client_id)`` stream.

    Feeds ``repr(float)`` so the digest is exact (no rounding ties):
    two streams match iff every event is bit-identical.  Used to prove
    the sim schedule and the live TCP replay saw the same arrivals.
    """

    def __init__(self) -> None:
        self._hash = hashlib.sha256()
        self.events = 0

    def update(self, t: float, class_name: str, client_id: int) -> None:
        self._hash.update(f"{t!r}|{class_name}|{client_id}\n".encode())
        self.events += 1

    def hexdigest(self) -> str:
        return self._hash.hexdigest()[:16]


def stream_digest(events: Iterable[tuple[float, str, int]]) -> str:
    """Digest a full event stream (convenience over :class:`StreamDigest`)."""
    digest = StreamDigest()
    for t, name, cid in events:
        digest.update(t, name, cid)
    return digest.hexdigest()
