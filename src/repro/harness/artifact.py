"""Machine-readable benchmark artifacts (``BENCH_<figure>.json``).

Every suite run emits one artifact per figure: a versioned JSON
document carrying the per-point measurement series plus enough context
(git SHA, environment fingerprint, sweep parameters, wall time) to
interpret a number months later.  Artifacts are the interface between
benchmark runs and the regression gate in
:mod:`repro.harness.baseline` — CI uploads them and diffs them against
committed baselines.

Schema (version 3)::

    {
      "schema_version": 3,
      "figure": "fig4",
      "git_sha": "<40 hex chars or 'unknown'>",
      "created_at": "2026-07-29T12:00:00Z",
      "wall_time_s": 12.34,
      "events_total": 1234567,          # v2: simulator events, all points
      "events_per_second": 430000.0,    # v2: events_total / wall_time_s
      "env": {"python": ..., "implementation": ..., "platform": ...,
              "machine": ..., "cpu_count": ...},
      "params": {...sweep parameters, free-form...},
      "points": [
        {"id": "order/sc/md5-rsa1024/f2/i0.04/s1",
         "kind": "order", "protocol": "sc", "scheme": "md5-rsa1024",
         "f": 2, "x": 0.04,
         "probes": ["order-latency", "throughput"],  # v3
         "metrics": {"latency_mean": ..., "throughput": ...},
         "wall_time_s": 1.2,
         "events": 56789,               # v2: deterministic event count
         "events_per_second": 47324.2}, # v2: events / wall_time_s
        ...
      ]
    }

``points[*].id`` is the stable join key the baseline comparator
matches on; ``metrics`` values are deterministic simulation outputs.
Version 2 added the **wall-time telemetry** (``events``/
``events_per_second`` per point and per suite) so a harness slowdown
is visible in the artifact trail; these fields are informational and
never gated — only ``metrics`` is — because wall time varies between
machines.  Version 3 makes the metric map **probe-emitted**: each
point records which registered measurement probes
(:mod:`repro.harness.probes`) produced its metrics, so a document is
self-describing about *what* was measured, and the baseline gate keys
purely on metric names whichever probes emitted them.  The reader
accepts version 1 and 2 documents unchanged (``probes`` reads as
absent there).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable

from repro.errors import ConfigError
from repro.harness.runner import PointResult

#: Version written by this build.  Bump on incompatible layout change.
SCHEMA_VERSION = 3
#: Versions :func:`load_artifact` accepts (v1 lacks the telemetry
#: fields, v1/v2 lack per-point probe names; every key kept its
#: meaning across versions).
SUPPORTED_VERSIONS = (1, 2, 3)

_REQUIRED_KEYS = (
    "schema_version", "figure", "git_sha", "created_at",
    "wall_time_s", "env", "params", "points",
)
_REQUIRED_POINT_KEYS = ("id", "kind", "protocol", "scheme", "f", "x", "metrics")


def env_fingerprint() -> dict[str, object]:
    """Where the numbers came from: interpreter and machine identity."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def current_git_sha(cwd: str | Path | None = None) -> str:
    """The repository HEAD, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


@dataclass(frozen=True)
class BenchArtifact:
    """One figure's measurement series plus provenance."""

    figure: str
    points: list[dict]
    params: dict = field(default_factory=dict)
    wall_time_s: float = 0.0
    git_sha: str = "unknown"
    created_at: str = ""
    env: dict = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION
    #: v2 wall-time telemetry (0 on documents loaded from v1).
    events_total: int = 0
    events_per_second: float = 0.0

    def to_dict(self) -> dict:
        return asdict(self)

    def point_by_id(self) -> dict[str, dict]:
        return {point["id"]: point for point in self.points}


def from_results(
    figure: str,
    results: Iterable[PointResult],
    params: dict | None = None,
    wall_time_s: float | None = None,
    git_sha: str | None = None,
) -> BenchArtifact:
    """Package executed sweep points as an artifact.

    ``wall_time_s`` defaults to the sum of per-point worker times
    (under a pool, elapsed wall time is smaller — pass it explicitly
    when the figure-level timing matters).
    """
    results = list(results)
    points = [
        {
            "id": r.task.point_id,
            "kind": r.task.kind,
            "protocol": r.task.protocol,
            "scheme": r.task.scheme,
            "f": r.task.f,
            "x": r.task.x,
            "probes": list(r.probes),
            "metrics": r.metrics(),
            "wall_time_s": r.wall_time,
            "events": r.events_processed,
            "events_per_second": (
                r.events_processed / r.wall_time if r.wall_time > 0 else 0.0
            ),
        }
        for r in results
    ]
    wall = (
        wall_time_s if wall_time_s is not None
        else sum(r.wall_time for r in results)
    )
    events_total = sum(r.events_processed for r in results)
    return BenchArtifact(
        figure=figure,
        points=points,
        params=dict(params or {}),
        wall_time_s=wall,
        git_sha=git_sha if git_sha is not None else current_git_sha(),
        created_at=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        env=env_fingerprint(),
        events_total=events_total,
        events_per_second=events_total / wall if wall > 0 else 0.0,
    )


def from_points(
    figure: str,
    points: Iterable[dict],
    params: dict | None = None,
    wall_time_s: float = 0.0,
    git_sha: str | None = None,
) -> BenchArtifact:
    """Package pre-shaped point dicts as a schema-current artifact.

    The seam for producers that measure outside the sweep runner — the
    live cluster (:mod:`repro.live.validate`) builds its points from
    probe reports over real trace records, not :class:`PointResult`
    objects.  Points must already carry the schema's required keys;
    the document is validated before it is returned, so a malformed
    producer fails here rather than at the comparator months later.
    """
    points = [dict(point) for point in points]
    events_total = int(sum(point.get("events", 0) for point in points))
    artifact = BenchArtifact(
        figure=figure,
        points=points,
        params=dict(params or {}),
        wall_time_s=wall_time_s,
        git_sha=git_sha if git_sha is not None else current_git_sha(),
        created_at=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        env=env_fingerprint(),
        events_total=events_total,
        events_per_second=(
            events_total / wall_time_s if wall_time_s > 0 else 0.0
        ),
    )
    validate(artifact.to_dict())
    return artifact


def validate(data: dict) -> dict:
    """Check an artifact document against the schema; returns it."""
    if not isinstance(data, dict):
        raise ConfigError("artifact must be a JSON object")
    missing = [key for key in _REQUIRED_KEYS if key not in data]
    if missing:
        raise ConfigError(f"artifact missing keys: {missing}")
    if data["schema_version"] not in SUPPORTED_VERSIONS:
        raise ConfigError(
            f"unsupported artifact schema version {data['schema_version']!r} "
            f"(this build reads versions {SUPPORTED_VERSIONS})"
        )
    if not isinstance(data["points"], list):
        raise ConfigError("artifact 'points' must be a list")
    for i, point in enumerate(data["points"]):
        missing = [key for key in _REQUIRED_POINT_KEYS if key not in point]
        if missing:
            raise ConfigError(f"artifact point {i} missing keys: {missing}")
        if not isinstance(point["metrics"], dict):
            raise ConfigError(f"artifact point {i} 'metrics' must be an object")
        if data["schema_version"] >= 3 and not isinstance(
            point.get("probes"), list
        ):
            raise ConfigError(
                f"artifact point {i} needs a 'probes' list (schema v3)"
            )
    ids = [point["id"] for point in data["points"]]
    if len(set(ids)) != len(ids):
        duplicates = sorted({pid for pid in ids if ids.count(pid) > 1})
        raise ConfigError(f"artifact has duplicate point ids: {duplicates}")
    return data


def events_by_point(artifact: BenchArtifact) -> dict[str, float]:
    """``{point_id: events}`` for every point carrying telemetry.

    The deterministic per-point event counts double as a perfect
    relative-cost oracle for the dispatch scheduler
    (:mod:`repro.harness.exec.schedule`); v1 documents carry none and
    contribute an empty mapping.
    """
    return {
        point["id"]: float(point["events"])
        for point in artifact.points
        if point.get("events")
    }


def artifact_path(json_dir: str | Path, figure: str) -> Path:
    """The canonical on-disk name: ``<dir>/BENCH_<figure>.json``."""
    return Path(json_dir) / f"BENCH_{figure}.json"


def write_artifact(artifact: BenchArtifact, json_dir: str | Path) -> Path:
    """Serialise to ``<json_dir>/BENCH_<figure>.json``; returns the path."""
    path = artifact_path(json_dir, artifact.figure)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(artifact.to_dict(), indent=2, sort_keys=True) + "\n")
    return path


def load_artifact(path: str | Path) -> BenchArtifact:
    """Read and validate an artifact document."""
    try:
        data = json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise ConfigError(f"no artifact at {path}") from None
    except json.JSONDecodeError as exc:
        raise ConfigError(f"artifact {path} is not valid JSON: {exc}") from None
    validate(data)
    return BenchArtifact(
        figure=data["figure"],
        points=data["points"],
        params=data["params"],
        wall_time_s=data["wall_time_s"],
        git_sha=data["git_sha"],
        created_at=data["created_at"],
        env=data["env"],
        schema_version=data["schema_version"],
        # Telemetry arrived with v2; v1 baselines read as zeros.
        events_total=data.get("events_total", 0),
        events_per_second=data.get("events_per_second", 0.0),
    )
