"""Plain-text rendering of experiment output (tables and series)."""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """A fixed-width table with a title line."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = [title, "=" * len(title), fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def render_series(
    title: str,
    xlabel: str,
    ylabel: str,
    series: dict[str, list[tuple[float, float]]],
) -> str:
    """Several (x, y) series sharing an x axis, as one table.

    The x values are taken from the union of all series; missing points
    render as '-'.
    """
    xs = sorted({x for points in series.values() for x, _ in points})
    labels = list(series)
    headers = [xlabel] + [f"{label} {ylabel}" for label in labels]
    lookup = {
        label: {x: y for x, y in points} for label, points in series.items()
    }
    rows = []
    for x in xs:
        row = [f"{x:g}"]
        for label in labels:
            y = lookup[label].get(x)
            row.append("-" if y is None else f"{y:.2f}")
        rows.append(row)
    return render_table(title, headers, rows)
