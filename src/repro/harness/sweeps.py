"""Shared sweep vocabulary for benchmarks, CLI and the runner.

One home for the constants and small helpers that were previously
copy-pasted between ``benchmarks/conftest.py`` and the individual
``bench_*.py`` files: the swept batching intervals, the backlog sizes
of Figure 6, and the table renderer the benchmarks print with.  The
suite CLI's quick/full sweep shapes live here too, so the benchmark
files, ``python -m repro suite`` and the tests all measure the same
grids.
"""

from __future__ import annotations

#: The batching intervals (seconds) the paper sweeps (40 ms .. 500 ms).
PAPER_INTERVALS = (0.040, 0.060, 0.080, 0.100, 0.150, 0.250, 0.500)
#: The crypto schemes of Figures 4-6, in presentation order.
PAPER_SCHEME_NAMES = ("md5-rsa1024", "md5-rsa1536", "sha1-dsa1024")

#: Reduced interval sweep the pytest benchmarks regenerate (keeps the
#: suite's runtime reasonable while spanning the saturation knee).
BENCH_INTERVALS = (0.040, 0.060, 0.100, 0.250, 0.500)
#: Quick-mode intervals for CI smoke runs.
QUICK_INTERVALS = (0.040, 0.100, 0.500)
#: Steady-state / saturated ends of the sweep, used by assertions.
STEADY_INTERVAL = 0.500
TIGHT_INTERVAL = 0.040

#: Figure 6's BackLog sizes (held ~1 KB batches), full and quick.
BACKLOG_BATCHES = (1, 2, 3, 4, 5)
QUICK_BACKLOG_BATCHES = (1, 3, 5)

#: The f = 2 vs f = 3 comparison sweep (Section 5 text observation).
F3_INTERVALS = (0.060, 0.100, 0.250, 0.500)
QUICK_F3_INTERVALS = (0.100, 0.500)

#: Protocol line-ups per figure.
ORDER_PROTOCOLS = ("ct", "sc", "bft")
FAILOVER_PROTOCOLS = ("sc", "scr")
F3_PROTOCOLS = ("sc", "bft")

#: Population-scaling figure (f3pop): client counts swept at a fixed
#: aggregate rate — the point is that cost stays O(events) while the
#: population grows four orders of magnitude.
F3POP_CLIENTS = (100, 10_000, 1_000_000)
QUICK_F3POP_CLIENTS = (100, 100_000)
#: Fixed aggregate rate (req/s) and durations for the f3pop sweep.
F3POP_RATE = 400.0
F3POP_DURATION = 3.0
QUICK_F3POP_DURATION = 1.5


def series_table(title: str, series: dict[str, list[tuple[float, float]]],
                 xlabel: str, ylabel: str) -> str:
    """Render several (x, y) series as one fixed-width table."""
    from repro.harness.report import render_series

    return render_series(title, xlabel, ylabel, series)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
