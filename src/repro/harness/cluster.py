"""Cluster builder: one call from protocol name to runnable deployment.

Wires together the simulator, network (with per-pair fast links), the
trusted dealer, the order processes of the chosen protocol, clients and
the fault injector — the simulated analogue of Figure 1's architecture.

Protocol-specific construction lives entirely in the plugins of
:mod:`repro.protocols`; this module only assembles the substrate and
asks the registered plugin to populate it, so any protocol registered
with :func:`repro.protocols.register` is buildable here by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import repro.protocols as protocols
from repro.calibration import CalibrationProfile, paper_testbed
from repro.core.config import ProtocolConfig
from repro.core.client import Client
from repro.crypto.dealer import TrustedDealer
from repro.crypto.signing import SignatureProvider
from repro.failures.injector import FaultInjector
from repro.net.addresses import client_name
from repro.net.delay import SurgeableDelay
from repro.net.network import Network
from repro.protocols import Deployment, OrderProtocol
from repro.sim.kernel import Simulator


def __getattr__(name: str):
    # Back-compat: the old hard-coded tuple is now the registry's view.
    if name == "PROTOCOLS":
        return protocols.names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class Cluster:
    """A fully wired simulated deployment."""

    protocol: str
    sim: Simulator
    network: Network
    config: ProtocolConfig
    calibration: CalibrationProfile
    provider: SignatureProvider
    processes: dict[str, object]
    clients: list[Client]
    injector: FaultInjector
    pair_links: dict[int, SurgeableDelay] = field(default_factory=dict)
    plugin: OrderProtocol | None = None

    def process(self, name: str):
        """Look up an order process by name."""
        return self.processes[name]

    @property
    def process_names(self) -> tuple[str, ...]:
        return tuple(self.processes)

    @property
    def coordinator_name(self) -> str:
        """The initial coordinator/primary, per the protocol plugin."""
        plugin = self.plugin if self.plugin is not None else protocols.get(self.protocol)
        return plugin.initial_coordinator(self.config)

    def start(self) -> None:
        """Arm every process's initial timers."""
        for process in self.processes.values():
            process.start()

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Advance the simulation."""
        self.sim.run(until=until, max_events=max_events)

    # ------------------------------------------------------------------
    # Cross-replica inspection helpers (used by tests and examples)
    # ------------------------------------------------------------------
    def machines(self) -> dict[str, object]:
        """The replicated state machines, by process name."""
        return {name: proc.machine for name, proc in self.processes.items()}

    def committed_histories(self) -> dict[str, list[tuple[int, bytes]]]:
        """Execution history (seq, digest) per process."""
        return {
            name: list(proc.machine.history) for name, proc in self.processes.items()
        }

    def agreement_digests(self) -> dict[str, bytes]:
        """State digest per process — equal prefixes imply safety."""
        return {
            name: proc.machine.state_digest() for name, proc in self.processes.items()
        }


def order_process_names(protocol: str, config: ProtocolConfig) -> tuple[str, ...]:
    """The order-process names a protocol deploys."""
    return protocols.get(protocol).process_names(config)


def build_cluster(
    protocol: str = "sc",
    config: ProtocolConfig | None = None,
    calibration: CalibrationProfile | None = None,
    seed: int = 1,
    n_clients: int = 2,
    crypto_mode: str = "simulated",
    key_bits: int | None = None,
) -> Cluster:
    """Build a runnable deployment of the given protocol.

    ``protocol`` names any plugin registered in :mod:`repro.protocols`.
    ``crypto_mode="real"`` provisions actual RSA/DSA keys (use small
    ``key_bits`` to keep key generation fast in tests); the default
    simulated provider is unforgeable and fast, with operation *times*
    charged from the calibration profile either way.
    """
    plugin = protocols.get(protocol)
    if config is None:
        config = plugin.default_config()
    plugin.validate(config)
    calibration = calibration if calibration is not None else paper_testbed()

    sim = Simulator(seed=seed)
    network = Network(sim, default_link=calibration.lan_link())
    names = plugin.process_names(config)
    dealer = TrustedDealer(config.scheme, mode=crypto_mode, seed=seed, key_bits=key_bits)
    provider = dealer.provision(list(names))

    deployment = Deployment(
        sim=sim,
        network=network,
        config=config,
        calibration=calibration,
        provider=provider,
        dealer=dealer,
    )
    plugin.build(deployment)

    clients = [
        Client(
            sim,
            client_name(i),
            network,
            targets=names,
            request_bytes=config.request_bytes,
            f=config.f,
        )
        for i in range(1, n_clients + 1)
    ]
    for client in clients:
        network.attach(client)

    injector = FaultInjector(sim)
    return Cluster(
        protocol=protocol,
        sim=sim,
        network=network,
        config=config,
        calibration=calibration,
        provider=provider,
        processes=deployment.processes,
        clients=clients,
        injector=injector,
        pair_links=deployment.pair_links,
        plugin=plugin,
    )
