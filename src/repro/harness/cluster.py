"""Cluster builder: one call from protocol name to runnable deployment.

Wires together the simulator, network (with per-pair fast links), the
trusted dealer, the order processes of the chosen protocol, clients and
the fault injector — the simulated analogue of Figure 1's architecture.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.calibration import CalibrationProfile, paper_testbed
from repro.baselines.bft.replica import BftReplica
from repro.baselines.ct import CtProcess
from repro.core.config import ProtocolConfig
from repro.core.client import Client
from repro.core.messages import FailSignalBody
from repro.core.sc import ScProcess
from repro.core.scr import ScrProcess
from repro.crypto.dealer import TrustedDealer
from repro.crypto.signing import SignatureProvider
from repro.errors import ConfigError
from repro.failures.injector import FaultInjector
from repro.net.addresses import client_name, replica_name
from repro.net.delay import SurgeableDelay
from repro.net.network import Network
from repro.net.pairlink import connect_pair
from repro.sim.kernel import Simulator

PROTOCOLS = ("sc", "scr", "bft", "ct")


@dataclass
class Cluster:
    """A fully wired simulated deployment."""

    protocol: str
    sim: Simulator
    network: Network
    config: ProtocolConfig
    calibration: CalibrationProfile
    provider: SignatureProvider
    processes: dict[str, object]
    clients: list[Client]
    injector: FaultInjector
    pair_links: dict[int, SurgeableDelay] = field(default_factory=dict)

    def process(self, name: str):
        """Look up an order process by name."""
        return self.processes[name]

    @property
    def process_names(self) -> tuple[str, ...]:
        return tuple(self.processes)

    def start(self) -> None:
        """Arm every process's initial timers."""
        for process in self.processes.values():
            process.start()

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Advance the simulation."""
        self.sim.run(until=until, max_events=max_events)

    # ------------------------------------------------------------------
    # Cross-replica inspection helpers (used by tests and examples)
    # ------------------------------------------------------------------
    def machines(self) -> dict[str, object]:
        """The replicated state machines, by process name."""
        return {name: proc.machine for name, proc in self.processes.items()}

    def committed_histories(self) -> dict[str, list[tuple[int, bytes]]]:
        """Execution history (seq, digest) per process."""
        return {
            name: list(proc.machine.history) for name, proc in self.processes.items()
        }

    def agreement_digests(self) -> dict[str, bytes]:
        """State digest per process — equal prefixes imply safety."""
        return {
            name: proc.machine.state_digest() for name, proc in self.processes.items()
        }


def order_process_names(protocol: str, config: ProtocolConfig) -> tuple[str, ...]:
    """The order-process names a protocol deploys."""
    if protocol in ("sc", "scr"):
        return config.process_names
    if protocol == "ct":
        return config.replica_names
    if protocol == "bft":
        return tuple(replica_name(i) for i in range(1, 3 * config.f + 2))
    raise ConfigError(f"unknown protocol {protocol!r}; known: {PROTOCOLS}")


def build_cluster(
    protocol: str = "sc",
    config: ProtocolConfig | None = None,
    calibration: CalibrationProfile | None = None,
    seed: int = 1,
    n_clients: int = 2,
    crypto_mode: str = "simulated",
    key_bits: int | None = None,
) -> Cluster:
    """Build a runnable deployment of the given protocol.

    ``crypto_mode="real"`` provisions actual RSA/DSA keys (use small
    ``key_bits`` to keep key generation fast in tests); the default
    simulated provider is unforgeable and fast, with operation *times*
    charged from the calibration profile either way.
    """
    if protocol not in PROTOCOLS:
        raise ConfigError(f"unknown protocol {protocol!r}; known: {PROTOCOLS}")
    if config is None:
        config = ProtocolConfig(variant="scr" if protocol == "scr" else "sc")
    if protocol == "scr" and config.variant != "scr":
        raise ConfigError("protocol 'scr' needs config.variant='scr'")
    if protocol != "scr" and config.variant == "scr":
        raise ConfigError(f"protocol {protocol!r} needs config.variant='sc'")
    calibration = calibration if calibration is not None else paper_testbed()

    sim = Simulator(seed=seed)
    network = Network(sim, default_link=calibration.lan_link())
    names = order_process_names(protocol, config)
    dealer = TrustedDealer(config.scheme, mode=crypto_mode, seed=seed, key_bits=key_bits)
    provider = dealer.provision(list(names))

    processes: dict[str, object] = {}
    pair_links: dict[int, SurgeableDelay] = {}

    if protocol in ("sc", "scr"):
        proc_cls = ScProcess if protocol == "sc" else ScrProcess
        blanks: dict[str, tuple[FailSignalBody, object]] = {}
        for rank in config.paired_indices:
            first, second = config.coordinator_members(rank)
            for holder, (body, sig) in dealer.issue_fail_signal_blanks(
                provider, rank, first, second
            ).items():
                blanks[holder] = (body, sig)
        for name in names:
            blank = blanks.get(name)
            processes[name] = proc_cls(
                sim, name, network, config, provider, calibration,
                fail_signal_blank=blank,
            )
        for rank in config.paired_indices:
            first, second = config.coordinator_members(rank)
            link = SurgeableDelay(calibration.pair_link())
            connect_pair(network, first, second, link)
            pair_links[rank] = link
        if protocol == "sc":
            _wire_suspicion_oracles(sim, processes, config)
    elif protocol == "ct":
        for name in names:
            processes[name] = CtProcess(sim, name, network, config, provider, calibration)
    else:  # bft
        for name in names:
            processes[name] = BftReplica(sim, name, network, config, provider, calibration)

    clients = [
        Client(
            sim,
            client_name(i),
            network,
            targets=names,
            request_bytes=config.request_bytes,
            f=config.f,
        )
        for i in range(1, n_clients + 1)
    ]
    for client in clients:
        network.attach(client)

    injector = FaultInjector(sim)
    return Cluster(
        protocol=protocol,
        sim=sim,
        network=network,
        config=config,
        calibration=calibration,
        provider=provider,
        processes=processes,
        clients=clients,
        injector=injector,
        pair_links=pair_links,
    )


def _wire_suspicion_oracles(
    sim: Simulator, processes: dict[str, object], config: ProtocolConfig
) -> None:
    """Assumption 3(a)(i) made operational: a pair member's time-domain
    suspicion is confirmed against the counterpart's true fault state,
    so correct members never falsely suspect each other (the delay
    estimates are "accurate")."""
    for rank in config.paired_indices:
        first, second = config.coordinator_members(rank)
        a, b = processes[first], processes[second]

        def oracle_for(other):
            def oracle() -> bool:
                return other.fault.active(sim.now)

            return oracle

        a.suspicion_oracle = oracle_for(b)
        b.suspicion_oracle = oracle_for(a)
