"""Client workloads.

The paper's clients "direct their requests to all nodes"; latency is
measured from *batch formation*, so the workload's job is simply to
keep the coordinator's batches populated at the desired pressure.
:class:`OpenLoopWorkload` issues requests at a fixed aggregate rate
with exponential (Poisson) or uniform spacing, split round-robin over
the cluster's clients.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.errors import ConfigError
from repro.harness.cluster import Cluster


def arrival_times(
    rate: float,
    duration: float,
    spacing: str = "poisson",
    rng: random.Random | None = None,
    start: float = 0.0,
) -> Iterator[float]:
    """Yield the absolute arrival instants of one open-loop stream.

    The single source of request-arrival schedules: the simulated
    :class:`OpenLoopWorkload` schedules these on the kernel, the live
    ``repro load`` driver sleeps until each on a wall clock — same
    spacing law, so live and simulated runs see statistically identical
    offered load (identical, for a shared seeded ``rng``).
    """
    if rate <= 0 or duration <= 0:
        raise ConfigError("rate and duration must be positive")
    if spacing not in ("poisson", "uniform"):
        raise ConfigError(f"unknown spacing {spacing!r}")
    if spacing == "poisson" and rng is None:
        raise ConfigError("poisson spacing needs an rng")
    t = start
    mean_gap = 1.0 / rate
    while True:
        t += rng.expovariate(rate) if spacing == "poisson" else mean_gap
        if t - start >= duration:
            return
        yield t


def saturating_rate(batch_size_bytes: int, request_bytes: int, batching_interval: float,
                    headroom: float = 1.3) -> float:
    """Aggregate request rate that keeps every batch full.

    A batch carries at most ``batch_size_bytes / request_bytes``
    requests and one batch forms per ``batching_interval``; the
    headroom factor keeps the unordered queue non-empty despite
    arrival jitter.
    """
    per_batch = max(1, batch_size_bytes // request_bytes)
    return headroom * per_batch / batching_interval


class OpenLoopWorkload:
    """Issues requests at ``rate`` per second for ``duration`` seconds."""

    def __init__(
        self,
        cluster: Cluster,
        rate: float,
        duration: float,
        start: float = 0.0,
        spacing: str = "poisson",
        stream: str = "workload",
    ) -> None:
        if rate <= 0 or duration <= 0:
            raise ConfigError("rate and duration must be positive")
        if spacing not in ("poisson", "uniform"):
            raise ConfigError(f"unknown spacing {spacing!r}")
        self.cluster = cluster
        self.rate = rate
        self.duration = duration
        self.start = start
        self.spacing = spacing
        self.stream = stream
        self.issued = 0

    def install(self) -> None:
        """Schedule every arrival up front (deterministic given seed).

        Each workload draws from its own named RNG stream, so several
        (e.g. a base load plus bursts) compose without correlating or
        perturbing one another's arrival sequences.
        """
        sim = self.cluster.sim
        rng = sim.rng.stream(self.stream)
        clients = self.cluster.clients
        times = arrival_times(
            self.rate, self.duration, self.spacing, rng, self.start
        )
        for i, t in enumerate(times):
            sim.schedule_at(t, self._issue, clients[i % len(clients)])

    def _issue(self, client) -> None:
        client.issue()
        self.issued += 1
