"""Client workloads.

The paper's clients "direct their requests to all nodes"; latency is
measured from *batch formation*, so the workload's job is simply to
keep the coordinator's batches populated at the desired pressure.
:class:`OpenLoopWorkload` issues requests at a fixed aggregate rate
with exponential (Poisson) or uniform spacing, split round-robin over
the cluster's clients; :class:`AggregatedWorkload` replaces the
per-client model with one merged population stream
(:mod:`repro.harness.population`) so offered load costs O(events),
not O(clients).
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.core.requests import ClientRequest
from repro.errors import ConfigError
from repro.harness.cluster import Cluster
from repro.sim.process import Actor

#: Name of the single network sender standing in for every virtual
#: client — one entry in the network's per-link delay-stream cache no
#: matter how large the population.
POOL_NAME = "population"


def arrival_times(
    rate: float,
    duration: float,
    spacing: str = "poisson",
    rng: random.Random | None = None,
    start: float = 0.0,
) -> Iterator[float]:
    """Yield the absolute arrival instants of one open-loop stream.

    Arrivals lie in the half-open window ``[start, start + duration)``:
    ``start`` offsets the whole stream and the duration check is
    relative to it, so a late-starting stream still emits for its full
    ``duration``.  ``spacing="poisson"`` requires a seeded ``rng``;
    ``spacing="uniform"`` is deterministic and *rejects* one (silently
    accepting an unused rng hid seeding bugs).

    The single source of request-arrival schedules: the simulated
    :class:`OpenLoopWorkload` schedules these on the kernel, the live
    ``repro load`` driver sleeps until each on a wall clock — same
    spacing law, so live and simulated runs see statistically identical
    offered load (identical, for a shared seeded ``rng``).
    """
    if rate <= 0 or duration <= 0:
        raise ConfigError("rate and duration must be positive")
    if start < 0:
        raise ConfigError(f"start offset must be >= 0, got {start}")
    if spacing not in ("poisson", "uniform"):
        raise ConfigError(f"unknown spacing {spacing!r}")
    if spacing == "poisson" and rng is None:
        raise ConfigError("poisson spacing needs an rng")
    if spacing == "uniform" and rng is not None:
        raise ConfigError("uniform spacing is deterministic; it takes no rng")
    t = start
    mean_gap = 1.0 / rate
    while True:
        t += rng.expovariate(rate) if spacing == "poisson" else mean_gap
        if t - start >= duration:
            return
        yield t


def saturating_rate(batch_size_bytes: int, request_bytes: int, batching_interval: float,
                    headroom: float = 1.3) -> float:
    """Aggregate request rate that keeps every batch full.

    A batch carries at most ``batch_size_bytes / request_bytes``
    requests and one batch forms per ``batching_interval``; the
    headroom factor keeps the unordered queue non-empty despite
    arrival jitter.

    This models a **single coordinator batch stream** — the four seed
    protocols all drain one ordered queue — so the rate is aggregate,
    not per-class.  Multi-class populations that want saturation split
    by traffic share use :func:`saturating_rate_per_class`.
    """
    per_batch = max(1, batch_size_bytes // request_bytes)
    return headroom * per_batch / batching_interval


def saturating_rate_per_class(
    batch_size_bytes: int,
    request_bytes: int,
    batching_interval: float,
    shares: dict[str, float],
    headroom: float = 1.3,
) -> dict[str, float]:
    """Split one coordinator's saturating rate across traffic classes.

    All classes feed the same unordered queue (there is one batch
    stream, see :func:`saturating_rate`), so the *aggregate* saturates
    the coordinator and each class receives its share of that
    aggregate — flash-crowd specs can target saturation per class
    without overdriving the queue ``k`` times over.
    """
    if not shares:
        raise ConfigError("saturating_rate_per_class needs at least one class share")
    if any(share <= 0 for share in shares.values()):
        raise ConfigError(f"class shares must be > 0, got {shares}")
    aggregate = saturating_rate(
        batch_size_bytes, request_bytes, batching_interval, headroom
    )
    total = sum(shares.values())
    return {name: aggregate * share / total for name, share in shares.items()}


class OpenLoopWorkload:
    """Issues requests at ``rate`` per second for ``duration`` seconds."""

    def __init__(
        self,
        cluster: Cluster,
        rate: float,
        duration: float,
        start: float = 0.0,
        spacing: str = "poisson",
        stream: str = "workload",
    ) -> None:
        if rate <= 0 or duration <= 0:
            raise ConfigError("rate and duration must be positive")
        if spacing not in ("poisson", "uniform"):
            raise ConfigError(f"unknown spacing {spacing!r}")
        self.cluster = cluster
        self.rate = rate
        self.duration = duration
        self.start = start
        self.spacing = spacing
        self.stream = stream
        self.issued = 0

    def install(self) -> None:
        """Schedule every arrival up front (deterministic given seed).

        Each workload draws from its own named RNG stream, so several
        (e.g. a base load plus bursts) compose without correlating or
        perturbing one another's arrival sequences.
        """
        sim = self.cluster.sim
        rng = sim.rng.stream(self.stream) if self.spacing == "poisson" else None
        clients = self.cluster.clients
        times = arrival_times(
            self.rate, self.duration, self.spacing, rng, self.start
        )
        for i, t in enumerate(times):
            sim.schedule_at(t, self._issue, clients[i % len(clients)])

    def _issue(self, client) -> None:
        client.issue()
        self.issued += 1


class VirtualClientPool(Actor):
    """One network sender standing in for an entire client population.

    Requests carry the sampled virtual identity in
    ``ClientRequest.client`` (``"c<id>"``) while the wire sender is
    always :data:`POOL_NAME` — the network's per-link delay-stream
    cache and actor table stay O(1) in population size.  Request ids
    come from a single pool-wide counter, so ``(client, req_id)`` keys
    stay unique even when Zipf sampling repeats a client id.
    """

    def __init__(
        self,
        cluster: Cluster,
        request_bytes: int = 64,
        marshal_cost: float = 20e-6,
    ) -> None:
        super().__init__(cluster.sim, POOL_NAME)
        self.network = cluster.network
        self.targets = cluster.process_names
        self.request_bytes = request_bytes
        self.marshal_cost = marshal_cost
        self.issued = 0
        self._next_id = 1

    def issue(self, client_id: int, class_name: str) -> None:
        request = ClientRequest(
            client=f"c{client_id}",
            req_id=self._next_id,
            size_bytes=self.request_bytes,
        )
        self._next_id += 1
        depart = self.charge(self.marshal_cost)
        self.network.multicast(
            self.name, self.targets, request, request.size_bytes, depart_time=depart
        )
        # Scale-only kind: guard so unmeasured runs skip the record.
        if self.sim.trace.wants("request_issued"):
            self.trace("request_issued", req=request.key, cls=class_name)
        self.issued += 1

    def on_message(self, sender: str, payload) -> None:  # pragma: no cover
        # Replies are disabled under population workloads (the virtual
        # ids are not addressable); nothing routes here.
        pass


class AggregatedWorkload:
    """Population-model open-loop load: O(events) regardless of clients.

    Schedules the merged :func:`~repro.harness.population.
    population_stream` **lazily** — only the next arrival lives on the
    kernel heap at any instant, and the issuing client id is sampled
    at delivery time — so install cost, heap residency, and memory are
    all independent of the population size.  The seeded stream digest
    is exposed for sim-vs-live identity checks.
    """

    def __init__(
        self,
        cluster: Cluster,
        population,
        rate: float,
        duration: float,
        start: float = 0.0,
    ) -> None:
        if rate <= 0 or duration <= 0:
            raise ConfigError("rate and duration must be positive")
        self.cluster = cluster
        self.population = population
        self.rate = rate
        self.duration = duration
        self.start = start
        self.pool: VirtualClientPool | None = None
        self._events = None
        self._digest = None

    @property
    def issued(self) -> int:
        return self.pool.issued if self.pool is not None else 0

    def stream_digest(self) -> str:
        """Digest of every arrival scheduled so far (complete after a run)."""
        return self._digest.hexdigest() if self._digest is not None else ""

    def install(self) -> None:
        from repro.harness.population import StreamDigest, population_stream

        sim = self.cluster.sim
        self.pool = VirtualClientPool(
            self.cluster, request_bytes=self.cluster.config.request_bytes
        )
        self._digest = StreamDigest()
        self._events = population_stream(
            self.population, self.rate, self.duration, sim.rng, self.start
        )
        self._schedule_next()

    def _schedule_next(self) -> None:
        event = next(self._events, None)
        if event is None:
            return
        t, class_name, client_id = event
        self._digest.update(t, class_name, client_id)
        self.cluster.sim.schedule_at(t, self._fire, class_name, client_id)

    def _fire(self, class_name: str, client_id: int) -> None:
        self.pool.issue(client_id, class_name)
        self._schedule_next()
