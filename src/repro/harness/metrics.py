"""Metric extraction from simulation traces.

The measured quantities follow the paper's definitions (Section 5):

* **Latency** — "the time interval between the instance the request is
  batched by the coordinator and the instance the first process
  commits a sequence number for that request" (waiting-to-be-batched
  time excluded) → per batch: ``batch_formed`` to the earliest
  ``order_committed`` with the same (rank, batch id);
* **Throughput** — "the number of messages committed by an order
  process per second" → committed requests per process per second over
  the measurement window;
* **Fail-over latency** — "the time interval between the moment the
  current coordinator issues fail-signal and the instance the new
  coordinator issues a Start message with (f+1) identifier-signature
  tuples" → ``fail_signal_emitted`` to ``failover_complete``.

These functions extract *post hoc* from a retained trace.  The sweep
experiments measure through the streaming probes of
:mod:`repro.harness.probes` instead, which consume records as they are
emitted; this module stays as the reference implementation the probes
are equivalence-tested against (and as the convenient API for tests
and examples that already hold a full trace).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import MetricsError
from repro.sim.trace import Tracer


@dataclass(frozen=True)
class LatencySample:
    """One batch's measured order latency."""

    rank: int
    batch_id: int
    formed_at: float
    first_commit_at: float

    @property
    def latency(self) -> float:
        return self.first_commit_at - self.formed_at


@dataclass(frozen=True)
class LatencyStats:
    """Aggregate latency statistics over a measurement window."""

    count: int
    mean: float
    p50: float
    p95: float
    maximum: float

    @classmethod
    def from_values(cls, values: list[float]) -> "LatencyStats":
        if not values:
            raise MetricsError("no latency samples to aggregate")
        ordered = sorted(values)

        def pct(p: float) -> float:
            idx = min(len(ordered) - 1, max(0, math.ceil(p * len(ordered)) - 1))
            return ordered[idx]

        return cls(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            p50=pct(0.50),
            p95=pct(0.95),
            maximum=ordered[-1],
        )


def collect_latencies(trace: Tracer) -> list[LatencySample]:
    """Pair each ``batch_formed`` with its earliest commit anywhere."""
    formed: dict[tuple[int, int], float] = {}
    for record in trace.of_kind("batch_formed"):
        key = (record.fields["rank"], record.fields["batch_id"])
        formed.setdefault(key, record.time)
    first_commit: dict[tuple[int, int], float] = {}
    for record in trace.of_kind("order_committed"):
        key = (record.fields["rank"], record.fields["batch_id"])
        if key not in first_commit or record.time < first_commit[key]:
            first_commit[key] = record.time
    samples = [
        LatencySample(rank=key[0], batch_id=key[1], formed_at=t0,
                      first_commit_at=first_commit[key])
        for key, t0 in formed.items()
        if key in first_commit
    ]
    samples.sort(key=lambda s: s.formed_at)
    return samples


def latency_stats(
    samples: list[LatencySample], skip_first: int = 0, cap: int | None = None
) -> LatencyStats:
    """Aggregate, optionally discarding warm-up batches."""
    window = samples[skip_first:]
    if cap is not None:
        window = window[:cap]
    return LatencyStats.from_values([s.latency for s in window])


def throughput_per_process(
    trace: Tracer, window_start: float, window_end: float, process: str | None = None
) -> float:
    """Committed requests per second at one process (or averaged).

    ``order_committed`` records carry the committing actor's name and
    the batch's request count; the paper's throughput is the per-
    process commit rate, so we count one process's commits (or average
    the per-process rates when ``process`` is None).
    """
    if window_end <= window_start:
        raise MetricsError("empty throughput window")
    per_actor: dict[str, int] = {}
    for record in trace.of_kind("order_committed"):
        if not window_start <= record.time < window_end:
            continue
        actor = record.fields.get("actor", "?")
        per_actor[actor] = per_actor.get(actor, 0) + record.fields["n_requests"]
    if not per_actor:
        return 0.0
    duration = window_end - window_start
    if process is not None:
        return per_actor.get(process, 0) / duration
    rates = [count / duration for count in per_actor.values()]
    return sum(rates) / len(rates)


def failover_latency(trace: Tracer) -> float:
    """Fail-signal emission to new-coordinator completion (Section 5)."""
    signals = trace.of_kind("fail_signal_emitted")
    completes = trace.of_kind("failover_complete")
    if not signals or not completes:
        raise MetricsError("trace contains no complete fail-over episode")
    t0 = min(record.time for record in signals)
    t1 = min(record.time for record in completes if record.time >= t0)
    return t1 - t0


def backlog_bytes_observed(trace: Tracer, before: float | None = None) -> float:
    """Mean BackLog (or ViewChange) wire size seen during fail-over.

    ``before`` restricts the average to one fail-over episode —
    recovery messages sent after the measured installation (e.g. later
    view changes) would otherwise dilute the size axis of Figure 6.
    """
    records = trace.of_kind("backlog_sent") + trace.of_kind("view_change_sent")
    sizes = [
        r.fields["size"]
        for r in records
        if "size" in r.fields and (before is None or r.time <= before)
    ]
    if not sizes:
        return 0.0
    return sum(sizes) / len(sizes)


def linear_fit(xs: list[float], ys: list[float]) -> tuple[float, float, float]:
    """Least-squares line fit; returns ``(slope, intercept, r²)``.

    Used to check the paper's claim that fail-over latency grows
    linearly with BackLog size.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise MetricsError("need at least two points for a fit")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    syy = sum((y - mean_y) ** 2 for y in ys)
    if sxx == 0:
        raise MetricsError("degenerate fit: all x equal")
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    r2 = 1.0 if syy == 0 else (sxy * sxy) / (sxx * syy)
    return slope, intercept, r2
