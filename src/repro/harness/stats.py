"""Statistics for multi-seed experiment repetition.

The paper averages each plotted point over 100 experimental runs.  One
simulated run already aggregates ~100 batches, but run-to-run variance
(different seeds → different jitter and arrival patterns) is the honest
error bar.  This module provides mean/stdev/95% confidence intervals
(Student's t for the small sample counts experiments actually use) and
a repeat-runner that sweeps seeds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError

# Two-sided 95% Student-t critical values for df = 1..30.
_T95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)


def t95(df: int) -> float:
    """Two-sided 95% t critical value (1.96 beyond the table)."""
    if df < 1:
        raise ConfigError("need at least two samples for a CI")
    if df <= len(_T95):
        return _T95[df - 1]
    return 1.96


@dataclass(frozen=True)
class Summary:
    """Mean with a 95% confidence half-width."""

    n: int
    mean: float
    stdev: float
    ci95: float

    @property
    def low(self) -> float:
        return self.mean - self.ci95

    @property
    def high(self) -> float:
        return self.mean + self.ci95

    def overlaps(self, other: "Summary") -> bool:
        """Whether the two 95% intervals intersect."""
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return f"{self.mean:.6g} ± {self.ci95:.2g} (n={self.n})"


def summarize(values: list[float]) -> Summary:
    """Mean, stdev and 95% CI half-width of a sample."""
    if not values:
        raise ConfigError("cannot summarize an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return Summary(n=1, mean=mean, stdev=0.0, ci95=0.0)
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    stdev = math.sqrt(var)
    ci95 = t95(n - 1) * stdev / math.sqrt(n)
    return Summary(n=n, mean=mean, stdev=stdev, ci95=ci95)


def repeat_order_experiment(
    protocol: str,
    scheme_name: str,
    batching_interval: float,
    seeds: tuple[int, ...] = (1, 2, 3),
    **kwargs,
) -> tuple[Summary, Summary]:
    """Run the order experiment once per seed.

    Returns ``(latency_summary, throughput_summary)`` across seeds.
    """
    from repro.harness.experiments import run_order_experiment

    if not seeds:
        raise ConfigError("need at least one seed")
    latencies: list[float] = []
    throughputs: list[float] = []
    for seed in seeds:
        result = run_order_experiment(
            protocol, scheme_name, batching_interval, seed=seed, **kwargs
        )
        latencies.append(result.latency_mean)
        throughputs.append(result.throughput)
    return summarize(latencies), summarize(throughputs)
