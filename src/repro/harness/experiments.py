"""Experiment runners: one per paper artefact.

Each runner builds a fresh cluster, drives it, and returns plain data
(dictionaries / dataclasses) that the benchmarks assert on and the CLI
renders.  Paper mapping:

* :func:`run_order_experiment` / :func:`fig4` — order latency vs
  batching interval, per protocol and crypto scheme (Figure 4 a/b/c);
* :func:`fig5` — throughput vs batching interval (Figure 5 a/b/c);
* :func:`run_failover_experiment` / :func:`fig6` — fail-over latency
  vs BackLog size for SC and SCR (Figure 6);
* :func:`f3_scaling` — the Section 5 text observation that f = 3
  raises steady-state latency and moves the saturation threshold to
  larger batching intervals.

Run from the command line::

    python -m repro.harness.experiments fig4 --quick
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass

from repro.core.config import ProtocolConfig
from repro.crypto.schemes import PLAIN, scheme_by_name
from repro.errors import ConfigError
from repro.failures.faults import WrongDigestFault
from repro.harness.cluster import Cluster, build_cluster
from repro.harness.metrics import (
    backlog_bytes_observed,
    collect_latencies,
    failover_latency,
    latency_stats,
    linear_fit,
    throughput_per_process,
)
from repro.harness.report import render_series, render_table
from repro.harness.workload import OpenLoopWorkload, saturating_rate
from repro.net.message import Envelope
from repro.core.messages import Ack, SignedMessage
from repro.sim.trace import Tracer

#: The batching intervals (seconds) the paper sweeps (40 ms .. 500 ms).
PAPER_INTERVALS = (0.040, 0.060, 0.080, 0.100, 0.150, 0.250, 0.500)
#: The crypto schemes of Figures 4-6, in presentation order.
PAPER_SCHEME_NAMES = ("md5-rsa1024", "md5-rsa1536", "sha1-dsa1024")


def _slim_tracer() -> Tracer:
    """Keep only the records the metrics read (memory-bounded runs)."""
    wanted = {
        "batch_formed",
        "order_committed",
        "fail_signal_emitted",
        "failover_complete",
        "backlog_sent",
        "view_change_sent",
        "install_committed",
        "coordinator_installed",
        "view_installed",
        "pair_recovered",
    }
    return Tracer(keep=lambda record: record.kind in wanted)


@dataclass(frozen=True)
class OrderRunResult:
    """Latency/throughput measurement of one (protocol, scheme,
    interval) point."""

    protocol: str
    scheme: str
    f: int
    batching_interval: float
    latency_mean: float
    latency_p50: float
    latency_p95: float
    throughput: float
    batches_measured: int


def run_order_experiment(
    protocol: str,
    scheme_name: str,
    batching_interval: float,
    f: int = 2,
    seed: int = 1,
    n_batches: int = 100,
    warmup_batches: int = 15,
) -> OrderRunResult:
    """Measure order latency and throughput at one sweep point.

    The workload saturates batches (the paper's throughput rises as the
    interval shrinks because each interval's 1 KB batch is always
    full), and each point aggregates ``n_batches`` measured batches
    after warm-up — the paper averages 100 experimental results.
    """
    scheme = PLAIN if protocol == "ct" else scheme_by_name(scheme_name)
    config = ProtocolConfig(
        f=f,
        variant="scr" if protocol == "scr" else "sc",
        scheme=scheme,
        batching_interval=batching_interval,
    )
    cluster = build_cluster(protocol, config=config, seed=seed)
    # Replace the tracer before start(): actors emit via sim.trace, so
    # the slim filter applies to everything the run produces.
    cluster.sim.trace = _slim_tracer()
    rate = saturating_rate(
        config.batch_size_bytes, config.request_bytes, batching_interval
    )
    duration = (warmup_batches + n_batches + 4) * batching_interval
    workload = OpenLoopWorkload(cluster, rate=rate, duration=duration)
    workload.install()
    cluster.start()
    # Allow commits of late batches to drain: saturated runs (the
    # figures' blow-up regions) lag far behind the arrival window.
    drain = max(2.0, 60 * batching_interval)
    cluster.run(until=duration + drain)
    samples = collect_latencies(cluster.sim.trace)
    if len(samples) < 5:
        raise ConfigError(
            f"too few batches measured ({len(samples)}) for "
            f"{protocol}/{scheme_name}@{batching_interval}"
        )
    # Deeply saturated points commit only a fraction of their batches
    # within the run; keep at least five measured samples.
    skip = min(warmup_batches, max(0, len(samples) - 5))
    stats = latency_stats(samples, skip_first=skip, cap=n_batches)
    # Throughput counts commits inside the arrival window (the paper's
    # per-second commit rate); the drain period only settles latency
    # measurements and would dilute the rate.
    window_start = warmup_batches * batching_interval
    window_end = duration
    throughput = throughput_per_process(cluster.sim.trace, window_start, window_end)
    return OrderRunResult(
        protocol=protocol,
        scheme=scheme_name if protocol != "ct" else "plain",
        f=f,
        batching_interval=batching_interval,
        latency_mean=stats.mean,
        latency_p50=stats.p50,
        latency_p95=stats.p95,
        throughput=throughput,
        batches_measured=stats.count,
    )


@dataclass(frozen=True)
class FailoverRunResult:
    """One fail-over measurement (Figure 6 point)."""

    protocol: str
    scheme: str
    f: int
    target_backlog_batches: int
    observed_backlog_bytes: float
    failover_latency: float


def run_failover_experiment(
    protocol: str,
    scheme_name: str,
    backlog_batches: int,
    f: int = 2,
    seed: int = 1,
    batching_interval: float = 0.250,
) -> FailoverRunResult:
    """Measure fail-over latency with a controlled BackLog size.

    Acks are held (a transient asynchronous-network delay, which the
    system model permits) so that ``backlog_batches`` ~1 KB batches
    accumulate acked-but-uncommitted; a value-domain fault is then
    injected at the coordinator replica, whose shadow detects it and
    fail-signals.  BackLogs therefore carry ``backlog_batches`` KB of
    uncommitted orders — the paper's 1..5 KB x-axis.
    """
    if protocol not in ("sc", "scr"):
        raise ConfigError("fail-over experiment applies to sc/scr only")
    scheme = scheme_by_name(scheme_name)
    config = ProtocolConfig(
        f=f,
        variant=protocol,
        scheme=scheme,
        batching_interval=batching_interval,
    )
    cluster = build_cluster(protocol, config=config, seed=seed)
    cluster.sim.trace = _slim_tracer()
    sim = cluster.sim

    rate = saturating_rate(config.batch_size_bytes, config.request_bytes, batching_interval)
    warm = 6 * batching_interval
    hold_at = warm + batching_interval * 0.5
    fault_at = hold_at + (backlog_batches + 0.5) * batching_interval
    duration = fault_at + 4.0
    workload = OpenLoopWorkload(cluster, rate=rate, duration=duration)
    workload.install()

    def is_ack(envelope: Envelope) -> bool:
        return isinstance(envelope.payload, SignedMessage) and isinstance(
            envelope.payload.body, Ack
        )

    sim.schedule_at(hold_at, cluster.network.hold_matching, is_ack)
    # Release the held acks once the fail-over measurement endpoint has
    # passed (releasing at the fail-signal instead would let the ack
    # burst race the BackLog exchange, committing the very orders whose
    # recovery fig. 6 measures).  The network stays reliable: every
    # held ack is still delivered, merely late.
    sim.trace.subscribe(
        lambda record: cluster.network.release_held()
        if record.kind == "failover_complete"
        else None
    )
    coordinator = cluster.process("p1")
    cluster.injector.inject(coordinator, WrongDigestFault(active_from=fault_at))
    cluster.start()
    cluster.run(until=duration + 4.0)
    latency = failover_latency(sim.trace)
    completes = sim.trace.of_kind("failover_complete")
    episode_end = completes[0].time if completes else None
    observed = backlog_bytes_observed(sim.trace, before=episode_end)
    return FailoverRunResult(
        protocol=protocol,
        scheme=scheme_name,
        f=f,
        target_backlog_batches=backlog_batches,
        observed_backlog_bytes=observed,
        failover_latency=latency,
    )


# ----------------------------------------------------------------------
# Figure-level sweeps
# ----------------------------------------------------------------------
def fig4(
    intervals: tuple[float, ...] = PAPER_INTERVALS,
    schemes: tuple[str, ...] = PAPER_SCHEME_NAMES,
    f: int = 2,
    seed: int = 1,
    n_batches: int = 100,
) -> dict[str, dict[str, list[tuple[float, float]]]]:
    """Order latency vs batching interval; returns
    ``{scheme: {protocol: [(interval, latency_s), ...]}}``."""
    out: dict[str, dict[str, list[tuple[float, float]]]] = {}
    for scheme in schemes:
        per_protocol: dict[str, list[tuple[float, float]]] = {}
        for protocol in ("ct", "sc", "bft"):
            series = []
            for interval in intervals:
                result = run_order_experiment(
                    protocol, scheme, interval, f=f, seed=seed, n_batches=n_batches
                )
                series.append((interval, result.latency_mean))
            per_protocol[protocol] = series
        out[scheme] = per_protocol
    return out


def fig5(
    intervals: tuple[float, ...] = PAPER_INTERVALS,
    schemes: tuple[str, ...] = PAPER_SCHEME_NAMES,
    f: int = 2,
    seed: int = 1,
    n_batches: int = 100,
) -> dict[str, dict[str, list[tuple[float, float]]]]:
    """Throughput vs batching interval; same shape as :func:`fig4`."""
    out: dict[str, dict[str, list[tuple[float, float]]]] = {}
    for scheme in schemes:
        per_protocol: dict[str, list[tuple[float, float]]] = {}
        for protocol in ("ct", "sc", "bft"):
            series = []
            for interval in intervals:
                result = run_order_experiment(
                    protocol, scheme, interval, f=f, seed=seed, n_batches=n_batches
                )
                series.append((interval, result.throughput))
            per_protocol[protocol] = series
        out[scheme] = per_protocol
    return out


def fig6(
    backlog_batches: tuple[int, ...] = (1, 2, 3, 4, 5),
    schemes: tuple[str, ...] = PAPER_SCHEME_NAMES,
    f: int = 2,
    seed: int = 1,
) -> dict[str, dict[str, list[tuple[float, float]]]]:
    """Fail-over latency vs BackLog size; returns
    ``{scheme: {protocol: [(backlog_kb, latency_s), ...]}}``."""
    out: dict[str, dict[str, list[tuple[float, float]]]] = {}
    for scheme in schemes:
        per_protocol: dict[str, list[tuple[float, float]]] = {}
        for protocol in ("sc", "scr"):
            series = []
            for k in backlog_batches:
                result = run_failover_experiment(protocol, scheme, k, f=f, seed=seed)
                series.append(
                    (result.observed_backlog_bytes / 1024.0, result.failover_latency)
                )
            per_protocol[protocol] = series
        out[scheme] = per_protocol
    return out


def f3_scaling(
    intervals: tuple[float, ...] = (0.060, 0.100, 0.250, 0.500),
    scheme: str = "md5-rsa1024",
    seed: int = 1,
    n_batches: int = 60,
) -> dict[int, dict[str, list[tuple[float, float]]]]:
    """Latency sweeps at f = 2 vs f = 3 (Section 5 text observation)."""
    out: dict[int, dict[str, list[tuple[float, float]]]] = {}
    for f in (2, 3):
        per_protocol: dict[str, list[tuple[float, float]]] = {}
        for protocol in ("sc", "bft"):
            series = []
            for interval in intervals:
                result = run_order_experiment(
                    protocol, scheme, interval, f=f, seed=seed, n_batches=n_batches
                )
                series.append((interval, result.latency_mean))
            per_protocol[protocol] = series
        out[f] = per_protocol
    return out


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="Reproduce the paper's figures")
    parser.add_argument("figure", choices=["fig4", "fig5", "fig6", "f3"])
    parser.add_argument("--quick", action="store_true", help="fewer points/batches")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    intervals = (0.040, 0.100, 0.500) if args.quick else PAPER_INTERVALS
    schemes = ("md5-rsa1024",) if args.quick else PAPER_SCHEME_NAMES
    n_batches = 30 if args.quick else 100

    if args.figure == "fig4":
        from repro.harness.plots import ascii_plot

        data = fig4(intervals, schemes, seed=args.seed, n_batches=n_batches)
        for scheme, per_protocol in data.items():
            ms_series = {
                p: [(x, y * 1e3) for x, y in s] for p, s in per_protocol.items()
            }
            print(render_series(
                f"Figure 4 — order latency vs batching interval [{scheme}]",
                "interval (s)", "latency (ms)",
                ms_series,
            ))
            print()
            print(ascii_plot(
                f"Figure 4 [{scheme}] (log y, as in the paper)",
                ms_series, log_y=True,
                xlabel="batching interval (s)", ylabel="latency (ms)",
            ))
    elif args.figure == "fig5":
        data = fig5(intervals, schemes, seed=args.seed, n_batches=n_batches)
        for scheme, per_protocol in data.items():
            print(render_series(
                f"Figure 5 — throughput vs batching interval [{scheme}]",
                "interval (s)", "committed req/s/process",
                per_protocol,
            ))
    elif args.figure == "fig6":
        backlogs = (1, 3, 5) if args.quick else (1, 2, 3, 4, 5)
        data = fig6(backlogs, schemes, seed=args.seed)
        for scheme, per_protocol in data.items():
            print(render_series(
                f"Figure 6 — fail-over latency vs BackLog size [{scheme}]",
                "backlog (KB)", "fail-over latency (ms)",
                {p: [(x, y * 1e3) for x, y in s] for p, s in per_protocol.items()},
            ))
            for protocol, series in per_protocol.items():
                xs = [x for x, _ in series]
                ys = [y for _, y in series]
                slope, intercept, r2 = linear_fit(xs, ys)
                print(f"  {protocol}: latency ≈ {slope*1e3:.2f} ms/KB × size "
                      f"+ {intercept*1e3:.2f} ms  (r² = {r2:.3f})")
    else:
        data = f3_scaling(seed=args.seed)
        rows = []
        for f_val, per_protocol in data.items():
            for protocol, series in per_protocol.items():
                for interval, latency in series:
                    rows.append((f_val, protocol, f"{interval*1e3:.0f}",
                                 f"{latency*1e3:.1f}"))
        print(render_table(
            "f = 2 vs f = 3 — steady-state latency (ms)",
            ("f", "protocol", "interval (ms)", "latency (ms)"),
            rows,
        ))
    return 0


if __name__ == "__main__":
    sys.exit(main())
