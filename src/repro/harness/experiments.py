"""Experiment runners: one per paper artefact.

Each point experiment builds a fresh cluster, wires the requested
measurement probes (:mod:`repro.harness.probes`), drives the run and
returns a generic :class:`~repro.harness.probes.ProbeReport` — the
probes' merged metric map, readable by name or attribute.  Paper
mapping:

* :func:`run_order_experiment` / :func:`fig4` — order latency vs
  batching interval, per protocol and crypto scheme (Figure 4 a/b/c);
* :func:`fig5` — throughput vs batching interval (Figure 5 a/b/c);
* :func:`run_failover_experiment` / :func:`fig6` — fail-over latency
  vs BackLog size for SC and SCR (Figure 6);
* :func:`f3_scaling` — the Section 5 text observation that f = 3
  raises steady-state latency and moves the saturation threshold to
  larger batching intervals.

The figure-level sweeps are grids of :class:`~repro.harness.runner.
SweepTask` executed by :mod:`repro.harness.runner` — pass ``jobs=N``
to fan a sweep out over a worker-process pool.

Run from the command line::

    python -m repro fig4 --quick
    python -m repro suite --figures fig4,fig5 --jobs 4 --json-dir out/
    python -m repro compare out/BENCH_fig4.json baselines/BENCH_fig4.json
"""

from __future__ import annotations

import argparse
import sys

import repro.harness.probes as probe_registry
import repro.protocols as protocols
from repro.calibration import CalibrationProfile
from repro.core.messages import Ack, SignedMessage
from repro.crypto.costs import fast_crypto as _fast_crypto_mode
from repro.errors import ConfigError, ReproError
from repro.failures.faults import WrongDigestFault
from repro.harness.cluster import build_cluster
from repro.harness.metrics import linear_fit
from repro.harness.probes import ProbeContext, ProbeReport, merged_values
from repro.harness.report import render_series, render_table
from repro.harness.runner import (
    SCENARIO,
    PointResult,
    SweepTask,
    default_executor,
    execute,
    f3_grid,
    failover_grid,
    failover_series,
    group_series,
    order_grid,
    order_series,
    print_progress,
)
from repro.harness.telemetry import Stopwatch
from repro.harness.sweeps import (
    BACKLOG_BATCHES,
    F3_INTERVALS,
    F3_PROTOCOLS,
    F3POP_CLIENTS,
    F3POP_DURATION,
    F3POP_RATE,
    FAILOVER_PROTOCOLS,
    ORDER_PROTOCOLS,
    PAPER_INTERVALS,
    PAPER_SCHEME_NAMES,
    QUICK_BACKLOG_BATCHES,
    QUICK_F3_INTERVALS,
    QUICK_F3POP_CLIENTS,
    QUICK_F3POP_DURATION,
    QUICK_INTERVALS,
)
from repro.harness.workload import OpenLoopWorkload, saturating_rate
from repro.net.message import Envelope
from repro.sim.trace import Tracer


#: Probes an order experiment wires when none are selected: the
#: paper's Figure 4/5 measurements.
DEFAULT_ORDER_PROBES = ("order-latency", "throughput")
#: Probes a fail-over experiment wires by default (Figure 6).
DEFAULT_FAILOVER_PROBES = ("failover",)
#: Fewest measured batches for a valid order point.
MIN_ORDER_SAMPLES = 5


def _probe_tracer(selected: tuple[str, ...]) -> Tracer:
    """A tracer retaining only the union of the selected probes'
    declared kinds — the keep-filter is *derived*, so a run holds no
    records no probe wants and new probes never edit the experiments."""
    return Tracer(keep_kinds=probe_registry.kinds_union(selected))


def run_order_experiment(
    protocol: str,
    scheme_name: str,
    batching_interval: float,
    f: int = 2,
    seed: int = 1,
    n_batches: int = 100,
    warmup_batches: int = 15,
    calibration: CalibrationProfile | None = None,
    probes: tuple[str, ...] | None = None,
    fast_crypto: bool = False,
) -> ProbeReport:
    """Measure one order sweep point through the selected probes.

    The workload saturates batches (the paper's throughput rises as the
    interval shrinks because each interval's 1 KB batch is always
    full), and each point aggregates ``n_batches`` measured batches
    after warm-up — the paper averages 100 experimental results.
    ``probes`` names registered probes (default: the paper's
    latency and throughput measurements).  ``fast_crypto=True``
    requests cost-model-only crypto (:func:`repro.crypto.costs.
    fast_crypto`); the run falls back to real byte-level crypto
    automatically when a selected probe declares ``needs_digests``.
    """
    plugin = protocols.get(protocol)
    selected = probe_registry.validate_names(
        DEFAULT_ORDER_PROBES if probes is None else probes
    )
    config = plugin.configure(
        scheme=scheme_name, f=f, batching_interval=batching_interval
    )
    use_fast = fast_crypto and not probe_registry.any_needs_digests(selected)
    # The fast-crypto context covers cluster *construction* too: the
    # dealer signs fail-signal blanks at build time, and verification
    # during the run must see the same byte representation it signed.
    with _fast_crypto_mode(use_fast):
        return _run_order_point(
            plugin, protocol, scheme_name, batching_interval, f, seed,
            n_batches, warmup_batches, calibration, selected, config,
        )


def _run_order_point(
    plugin,
    protocol: str,
    scheme_name: str,
    batching_interval: float,
    f: int,
    seed: int,
    n_batches: int,
    warmup_batches: int,
    calibration: CalibrationProfile | None,
    selected: tuple[str, ...],
    config,
) -> ProbeReport:
    cluster = build_cluster(protocol, config=config, calibration=calibration, seed=seed)
    rate = saturating_rate(
        config.batch_size_bytes, config.request_bytes, batching_interval
    )
    duration = (warmup_batches + n_batches + 4) * batching_interval
    # Throughput counts commits inside the arrival window (the paper's
    # per-second commit rate); the drain period only settles latency
    # measurements and would dilute the rate.
    context = ProbeContext(
        protocol=protocol,
        scheme=scheme_name,
        f=f,
        seed=seed,
        batching_interval=batching_interval,
        window_start=warmup_batches * batching_interval,
        window_end=duration,
        warmup_batches=warmup_batches,
        cap=n_batches,
        min_samples=MIN_ORDER_SAMPLES,
        label=f"{protocol}/{scheme_name}@{batching_interval}",
    )
    active = probe_registry.create_all(selected, context)
    # Replace the tracer before start(): actors emit via sim.trace, so
    # the derived keep-filter and the probe subscriptions cover
    # everything the run produces.
    cluster.sim.trace = _probe_tracer(selected)
    for probe in active:
        probe.attach(cluster.sim.trace)
    workload = OpenLoopWorkload(cluster, rate=rate, duration=duration)
    workload.install()
    cluster.start()
    # Allow commits of late batches to drain: saturated runs (the
    # figures' blow-up regions) lag far behind the arrival window.
    drain = max(2.0, 60 * batching_interval)
    cluster.run(until=duration + drain)
    return ProbeReport(
        protocol=protocol,
        scheme=plugin.reported_scheme(scheme_name),
        f=f,
        probes=selected,
        values=merged_values(active),
        series=tuple(s for probe in active for s in probe.series()),
        events_processed=cluster.sim.events_processed,
    )


def run_failover_experiment(
    protocol: str,
    scheme_name: str,
    backlog_batches: int,
    f: int = 2,
    seed: int = 1,
    batching_interval: float = 0.250,
    calibration: CalibrationProfile | None = None,
    probes: tuple[str, ...] | None = None,
    fast_crypto: bool = False,
) -> ProbeReport:
    """Measure fail-over latency with a controlled BackLog size.

    Acks are held (a transient asynchronous-network delay, which the
    system model permits) so that ``backlog_batches`` ~1 KB batches
    accumulate acked-but-uncommitted; a value-domain fault is then
    injected at the coordinator replica, whose shadow detects it and
    fail-signals.  BackLogs therefore carry ``backlog_batches`` KB of
    uncommitted orders — the paper's 1..5 KB x-axis.  ``fast_crypto``
    behaves as in :func:`run_order_experiment` (auto-fallback when a
    selected probe needs digest bytes).
    """
    plugin = protocols.get(protocol)
    if not plugin.supports_failover:
        capable = "/".join(protocols.failover_capable())
        raise ConfigError(f"fail-over experiment applies to {capable} only")
    selected = probe_registry.validate_names(
        DEFAULT_FAILOVER_PROBES if probes is None else probes
    )
    config = plugin.configure(
        scheme=scheme_name, f=f, batching_interval=batching_interval
    )
    use_fast = fast_crypto and not probe_registry.any_needs_digests(selected)
    with _fast_crypto_mode(use_fast):
        return _run_failover_point(
            plugin, protocol, scheme_name, backlog_batches, f, seed,
            batching_interval, calibration, selected, config,
        )


def _run_failover_point(
    plugin,
    protocol: str,
    scheme_name: str,
    backlog_batches: int,
    f: int,
    seed: int,
    batching_interval: float,
    calibration: CalibrationProfile | None,
    selected: tuple[str, ...],
    config,
) -> ProbeReport:
    cluster = build_cluster(protocol, config=config, calibration=calibration, seed=seed)
    sim = cluster.sim

    rate = saturating_rate(config.batch_size_bytes, config.request_bytes, batching_interval)
    warm = 6 * batching_interval
    hold_at = warm + batching_interval * 0.5
    fault_at = hold_at + (backlog_batches + 0.5) * batching_interval
    duration = fault_at + 4.0
    context = ProbeContext(
        protocol=protocol,
        scheme=scheme_name,
        f=f,
        seed=seed,
        batching_interval=batching_interval,
        window_start=0.0,
        window_end=duration,
        # An incomplete fail-over episode is an experiment failure
        # here (scenarios run the same probe leniently with 0).
        min_samples=1,
        label=f"{protocol}/{scheme_name} backlog={backlog_batches}",
    )
    active = probe_registry.create_all(selected, context)
    sim.trace = _probe_tracer(selected)
    for probe in active:
        probe.attach(sim.trace)
    workload = OpenLoopWorkload(cluster, rate=rate, duration=duration)
    workload.install()

    def is_ack(envelope: Envelope) -> bool:
        return isinstance(envelope.payload, SignedMessage) and isinstance(
            envelope.payload.body, Ack
        )

    sim.schedule_at(hold_at, cluster.network.hold_matching, is_ack)
    # Release the held acks once the fail-over measurement endpoint has
    # passed (releasing at the fail-signal instead would let the ack
    # burst race the BackLog exchange, committing the very orders whose
    # recovery fig. 6 measures).  The network stays reliable: every
    # held ack is still delivered, merely late.  A kind-scoped
    # subscription fires whether or not any probe retains the record.
    sim.trace.subscribe(
        lambda record: cluster.network.release_held(),
        kinds=("failover_complete",),
    )
    coordinator = cluster.process(plugin.initial_coordinator(config))
    cluster.injector.inject(coordinator, WrongDigestFault(active_from=fault_at))
    cluster.start()
    cluster.run(until=duration + 4.0)
    return ProbeReport(
        protocol=protocol,
        scheme=scheme_name,
        f=f,
        probes=selected,
        values=merged_values(active),
        series=tuple(s for probe in active for s in probe.series()),
        events_processed=sim.events_processed,
    )


# ----------------------------------------------------------------------
# Figure-level sweeps (task grids over the runner)
# ----------------------------------------------------------------------
def fig4(
    intervals: tuple[float, ...] = PAPER_INTERVALS,
    schemes: tuple[str, ...] = PAPER_SCHEME_NAMES,
    f: int = 2,
    seed: int = 1,
    n_batches: int = 100,
    jobs: int = 1,
    progress=None,
    probes: tuple[str, ...] | None = None,
) -> dict[str, dict[str, list[tuple[float, float]]]]:
    """Order latency vs batching interval; returns
    ``{scheme: {protocol: [(interval, latency_s), ...]}}``.

    Convenience API for one figure at a time; :func:`fig5` measures
    the *same runs*, so regenerate both through ``python -m repro
    suite`` (or one shared :func:`~repro.harness.runner.order_grid`)
    to pay for the grid once."""
    tasks = order_grid(
        ORDER_PROTOCOLS, schemes, intervals, f=f, seed=seed,
        n_batches=n_batches, probes=probes,
    )
    return order_series(
        execute(tasks, jobs=jobs, progress=progress), value="latency_mean"
    )


def fig5(
    intervals: tuple[float, ...] = PAPER_INTERVALS,
    schemes: tuple[str, ...] = PAPER_SCHEME_NAMES,
    f: int = 2,
    seed: int = 1,
    n_batches: int = 100,
    jobs: int = 1,
    progress=None,
    probes: tuple[str, ...] | None = None,
) -> dict[str, dict[str, list[tuple[float, float]]]]:
    """Throughput vs batching interval; same shape as :func:`fig4`."""
    tasks = order_grid(
        ORDER_PROTOCOLS, schemes, intervals, f=f, seed=seed,
        n_batches=n_batches, probes=probes,
    )
    return order_series(
        execute(tasks, jobs=jobs, progress=progress), value="throughput"
    )


def fig6(
    backlog_batches: tuple[int, ...] = BACKLOG_BATCHES,
    schemes: tuple[str, ...] = PAPER_SCHEME_NAMES,
    f: int = 2,
    seed: int = 1,
    jobs: int = 1,
    progress=None,
) -> dict[str, dict[str, list[tuple[float, float]]]]:
    """Fail-over latency vs BackLog size; returns
    ``{scheme: {protocol: [(backlog_kb, latency_s), ...]}}``."""
    tasks = failover_grid(
        FAILOVER_PROTOCOLS, schemes, backlog_batches, f=f, seed=seed
    )
    return failover_series(execute(tasks, jobs=jobs, progress=progress))


def f3_scaling(
    intervals: tuple[float, ...] = F3_INTERVALS,
    scheme: str = "md5-rsa1024",
    seed: int = 1,
    n_batches: int = 60,
    jobs: int = 1,
    progress=None,
) -> dict[int, dict[str, list[tuple[float, float]]]]:
    """Latency sweeps at f = 2 vs f = 3 (Section 5 text observation)."""
    tasks = f3_grid(
        F3_PROTOCOLS, (scheme,), intervals, seed=seed, n_batches=n_batches
    )
    results = execute(tasks, jobs=jobs, progress=progress)
    grouped = group_series(
        results,
        key=lambda p: (p.task.f, p.task.protocol),
        point=lambda p: (p.task.batching_interval, p.result.latency_mean),
    )
    out: dict[int, dict[str, list[tuple[float, float]]]] = {}
    for (f_val, protocol), series in grouped.items():
        out.setdefault(f_val, {})[protocol] = series
    return out


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
FIGURES = ("fig4", "fig5", "fig6", "f3", "f3pop")
#: Figures the suite runs (and gates) by default.  ``f3pop`` is
#: opt-in: its points are population scenarios with their own probe
#: set, and its baseline history starts from the dedicated CI step
#: rather than the committed paper baselines.
SUITE_FIGURES = ("fig4", "fig5", "fig6", "f3")


#: Metrics each figure's tables/series read.  A ``--probes``
#: selection must measure them, or the sweep would only fail at
#: render time — after every point has already run.
FIGURE_METRICS = {
    "fig4": ("latency_mean",),
    "fig5": ("throughput",),
    "fig6": ("failover_latency", "observed_backlog_bytes"),
    "f3": ("latency_mean",),
}

#: Probes fixed on every f3pop point's ScenarioSpec.
F3POP_PROBES = ("client-fairness", "queue-depth", "crypto-cost")


def f3pop_spec(clients: int, seed: int = 1, quick: bool = False):
    """One population-scaling point: fixed aggregate rate, Zipf ids."""
    from repro.harness.population import PopulationSpec
    from repro.harness.scenario import ScenarioSpec, WorkloadSpec

    return ScenarioSpec(
        name=f"f3pop-c{clients}",
        protocol="sc",
        seed=seed,
        duration=QUICK_F3POP_DURATION if quick else F3POP_DURATION,
        drain=2.0,
        workload=WorkloadSpec(rate=F3POP_RATE),
        population=PopulationSpec(clients=clients, id_distribution="zipf"),
        probes=F3POP_PROBES,
        description=(
            f"population scaling at {F3POP_RATE:g} req/s aggregate over "
            f"{clients:,} Zipf-sampled clients"
        ),
    )


def f3pop_grid(clients_list, seed: int = 1, quick: bool = False) -> list[SweepTask]:
    """The f3pop sweep: one scenario task per population size.

    Every point offers the *same* fixed aggregate rate; only
    ``population.clients`` varies — so identical event counts across
    the sweep are themselves the O(events) claim, and wall-time parity
    is the measured proof.
    """
    return [
        SweepTask(
            kind=SCENARIO,
            protocol=spec.protocol,
            scheme=spec.scheme,
            f=spec.f,
            seed=seed,
            calibration=spec.net.calibration,
            scenario=spec,
        )
        for spec in (f3pop_spec(c, seed=seed, quick=quick) for c in clients_list)
    ]


def _require_figure_metrics(figure: str, probes: tuple[str, ...]) -> None:
    """Fail fast when a probe selection cannot feed a figure."""
    provided = {
        metric
        for name in probes
        for metric in probe_registry.get(name).provides
    }
    missing = sorted(set(FIGURE_METRICS[figure]) - provided)
    if missing:
        raise ConfigError(
            f"--probes {','.join(probes)} does not measure {missing}, "
            f"which {figure} renders; `repro probes` shows what each "
            f"probe provides"
        )


def _figure_tasks(figure: str, quick: bool, seed: int, probes=None,
                  fast_crypto: bool = False):
    """The task grid one figure regenerates (quick or full shape).

    ``probes`` overrides every point's probe selection (``None`` keeps
    each experiment's paper defaults); ``fast_crypto`` requests
    cost-model-only crypto for every point."""
    if figure == "f3pop":
        # f3pop points are scenarios: probe selection and crypto mode
        # live on the ScenarioSpec, not the task.
        if probes is not None:
            raise ConfigError(
                "f3pop points are scenarios with a fixed probe set "
                f"({', '.join(F3POP_PROBES)}); --probes does not apply"
            )
        if fast_crypto:
            raise ConfigError(
                "f3pop points are scenarios; scenario tasks do not "
                "support --fast-crypto"
            )
        return f3pop_grid(
            QUICK_F3POP_CLIENTS if quick else F3POP_CLIENTS,
            seed=seed, quick=quick,
        )
    if figure in FIGURES and probes is not None:
        _require_figure_metrics(figure, probes)
    if figure in ("fig4", "fig5"):
        return order_grid(
            ORDER_PROTOCOLS,
            ("md5-rsa1024",) if quick else PAPER_SCHEME_NAMES,
            QUICK_INTERVALS if quick else PAPER_INTERVALS,
            seed=seed,
            n_batches=30 if quick else 100,
            probes=probes,
            fast_crypto=fast_crypto,
        )
    if figure == "fig6":
        return failover_grid(
            FAILOVER_PROTOCOLS,
            ("md5-rsa1024",) if quick else PAPER_SCHEME_NAMES,
            QUICK_BACKLOG_BATCHES if quick else BACKLOG_BATCHES,
            seed=seed,
            probes=probes,
            fast_crypto=fast_crypto,
        )
    if figure == "f3":
        return f3_grid(
            F3_PROTOCOLS,
            ("md5-rsa1024",),
            QUICK_F3_INTERVALS if quick else F3_INTERVALS,
            seed=seed,
            n_batches=20 if quick else 60,
            probes=probes,
            fast_crypto=fast_crypto,
        )
    raise ConfigError(f"unknown figure {figure!r}; known: {FIGURES}")


def _parse_probes(arg: str | None) -> tuple[str, ...] | None:
    """``--probes a,b`` to validated names (``None`` = defaults)."""
    if arg is None:
        return None
    selected = tuple(name.strip() for name in arg.split(",") if name.strip())
    if not selected:
        raise ConfigError("--probes names no probes")
    return probe_registry.validate_names(selected)


def _executor_options(args, executor: str) -> dict:
    """Backend construction options from CLI flags (sockets only)."""
    options: dict = {}
    bind = getattr(args, "bind", None)
    if bind is not None:
        host, _, port = bind.rpartition(":")
        if not host or not port.isdigit():
            raise ConfigError(f"--bind wants HOST:PORT, got {bind!r}")
        options["bind"] = host
        options["port"] = int(port)
    spawn = getattr(args, "spawn", None)
    if spawn is not None:
        if spawn < 0:
            raise ConfigError("--spawn must be >= 0")
        options["spawn"] = spawn
    auth_key = getattr(args, "auth_key", None)
    if auth_key is not None:
        options["auth_key"] = auth_key
    if options and executor != "sockets":
        raise ConfigError(
            "--bind/--spawn/--auth-key configure the sockets coordinator; "
            "pass --executor sockets"
        )
    return options


def _render_figure(figure: str, results: list[PointResult]) -> None:
    """Print one figure's tables (and plot) from executed results."""
    if figure == "fig4":
        from repro.harness.plots import ascii_plot

        for scheme, per_protocol in order_series(results, "latency_mean").items():
            ms_series = {
                p: [(x, y * 1e3) for x, y in s] for p, s in per_protocol.items()
            }
            print(render_series(
                f"Figure 4 — order latency vs batching interval [{scheme}]",
                "interval (s)", "latency (ms)",
                ms_series,
            ))
            print()
            print(ascii_plot(
                f"Figure 4 [{scheme}] (log y, as in the paper)",
                ms_series, log_y=True,
                xlabel="batching interval (s)", ylabel="latency (ms)",
            ))
    elif figure == "fig5":
        for scheme, per_protocol in order_series(results, "throughput").items():
            print(render_series(
                f"Figure 5 — throughput vs batching interval [{scheme}]",
                "interval (s)", "committed req/s/process",
                per_protocol,
            ))
    elif figure == "fig6":
        for scheme, per_protocol in failover_series(results).items():
            print(render_series(
                f"Figure 6 — fail-over latency vs BackLog size [{scheme}]",
                "backlog (KB)", "fail-over latency (ms)",
                {p: [(x, y * 1e3) for x, y in s] for p, s in per_protocol.items()},
            ))
            for protocol, series in per_protocol.items():
                xs = [x for x, _ in series]
                ys = [y for _, y in series]
                slope, intercept, r2 = linear_fit(xs, ys)
                print(f"  {protocol}: latency ≈ {slope*1e3:.2f} ms/KB × size "
                      f"+ {intercept*1e3:.2f} ms  (r² = {r2:.3f})")
    elif figure == "f3pop":
        rows = []
        for p in sorted(results, key=lambda p: p.task.x):
            m = p.result.metrics()
            rows.append((
                f"{int(p.task.x):,}",
                str(p.result.requests_issued),
                str(p.result.requests_committed),
                f"{p.result.latency_mean * 1e3:.1f}",
                f"{m.get('client-fairness.fairness_jain', 0.0):.3f}",
                f"{m.get('queue-depth.queue_depth_p95', 0.0):.0f}",
                f"{p.result.events_processed:,}",
                f"{p.wall_time:.2f}",
            ))
        print(render_table(
            "f3pop — population scaling at fixed aggregate rate "
            "(cost is O(events): the events column must not grow with "
            "clients)",
            ("clients", "issued", "committed", "latency (ms)",
             "fairness", "queue p95", "events", "wall (s)"),
            rows,
        ))
    else:
        grouped = group_series(
            results,
            key=lambda p: (p.task.f, p.task.protocol),
            point=lambda p: (p.task.batching_interval, p.result.latency_mean),
        )
        rows = []
        for (f_val, protocol), series in grouped.items():
            for interval, latency in series:
                rows.append((f_val, protocol, f"{interval*1e3:.0f}",
                             f"{latency*1e3:.1f}"))
        print(render_table(
            "f = 2 vs f = 3 — steady-state latency (ms)",
            ("f", "protocol", "interval (ms)", "latency (ms)"),
            rows,
        ))


def _sweep_params(args, figure: str, executor: str) -> dict:
    params = {
        "figure": figure,
        "quick": bool(args.quick),
        "seed": args.seed,
        "jobs": args.jobs,
        "executor": executor,
    }
    if getattr(args, "probes", None):
        params["probes"] = list(_parse_probes(args.probes))
    if getattr(args, "fast_crypto", False):
        params["fast_crypto"] = True
    return params


def _cmd_figure(figure: str, args) -> int:
    from repro.harness.artifact import from_results, write_artifact

    tasks = _figure_tasks(figure, args.quick, args.seed,
                          probes=_parse_probes(args.probes),
                          fast_crypto=args.fast_crypto)
    executor = args.executor or default_executor(args.jobs, len(tasks))
    watch = Stopwatch()
    results = execute(
        tasks, jobs=args.jobs,
        progress=print_progress if args.progress else None,
        executor=executor,
        checkpoint=args.resume,
        executor_options=_executor_options(args, executor),
    )
    wall = watch.elapsed
    if args.json_dir:
        params = _sweep_params(args, figure, executor)
        if figure == "f3pop":
            # Every point records its seeded arrival-stream fingerprint:
            # a loopback `repro load --population` run with the same
            # seed must reproduce these digests bit for bit.
            params["stream_digests"] = {
                p.task.point_id: p.result.stream_digest for p in results
            }
        artifact = from_results(figure, results, params=params, wall_time_s=wall)
        path = write_artifact(artifact, args.json_dir)
        print(f"wrote {path}", file=sys.stderr)
    _render_figure(figure, results)
    return 0


def _cmd_suite(args) -> int:
    from repro.harness.artifact import (
        artifact_path,
        from_results,
        load_artifact,
        write_artifact,
    )
    from repro.harness.baseline import compare

    figures = [name.strip() for name in args.figures.split(",") if name.strip()]
    unknown = [name for name in figures if name not in FIGURES]
    if unknown:
        raise ConfigError(f"unknown figures {unknown}; known: {FIGURES}")

    probes = _parse_probes(args.probes)
    grids = {
        figure: _figure_tasks(figure, args.quick, args.seed, probes=probes,
                              fast_crypto=args.fast_crypto)
        for figure in figures
    }
    # Figures sharing identical sweep points (fig4/fig5 measure the
    # same runs) execute each unique task once; tasks are values, so
    # deduplication is plain hashing.
    unique: list = []
    seen: set = set()
    for figure in figures:
        for task in grids[figure]:
            if task not in seen:
                seen.add(task)
                unique.append(task)
    requested = sum(len(grid) for grid in grids.values())
    print(
        f"suite: {', '.join(figures)} — {requested} points requested, "
        f"{len(unique)} unique, jobs={args.jobs}",
        file=sys.stderr,
    )
    watch = Stopwatch()
    # A prior run's artifacts are a perfect cost oracle (deterministic
    # per-point event counts): dispatch the expensive points first so
    # the slowest task never straggles at the tail of the sweep.
    from repro.harness.exec import load_cost_hints

    executor = args.executor or default_executor(args.jobs, len(unique))
    results = execute(
        unique, jobs=args.jobs,
        progress=None if args.no_progress else print_progress,
        executor=executor,
        checkpoint=args.resume,
        cost_hints=load_cost_hints(args.baseline_dir),
        executor_options=_executor_options(args, executor),
    )
    wall = watch.elapsed
    by_task = dict(zip(unique, results))

    rows = []
    artifacts = {}
    for figure in figures:
        figure_results = [by_task[task] for task in grids[figure]]
        artifact = from_results(
            figure, figure_results, params=_sweep_params(args, figure, executor)
        )
        path = write_artifact(artifact, args.json_dir)
        artifacts[figure] = artifact
        rows.append((figure, len(figure_results),
                     f"{artifact.wall_time_s:.1f}",
                     f"{artifact.events_per_second:,.0f}", str(path)))
    # Unique runs only: figures sharing points (fig4/fig5) would
    # double-count their events in the suite-level rate.
    total_events = sum(r.events_processed for r in results)
    print(render_table(
        f"Benchmark suite — {len(unique)} runs in {wall:.1f}s wall "
        f"({total_events / wall:,.0f} events/s)",
        ("figure", "points", "cpu time (s)", "events/s", "artifact"),
        rows,
    ))

    exit_code = 0
    if args.baseline_dir:
        for figure in figures:
            base_path = artifact_path(args.baseline_dir, figure)
            report = compare(
                artifacts[figure], load_artifact(base_path),
                tolerance_pct=args.tolerance,
            )
            print()
            print(report.render())
            if not report.ok:
                exit_code = 1
    return exit_code


def _cmd_compare(args) -> int:
    if args.live:
        from repro.live.validate import compare_live

        return compare_live(args.current, args.baseline)
    if args.baseline is None:
        raise ConfigError(
            "compare needs a baseline artifact (only --live may omit it, "
            "by simulating the counterpart on the fly)"
        )
    from repro.harness.baseline import main as baseline_main

    return baseline_main(
        [args.current, args.baseline, "--tolerance", str(args.tolerance)]
    )


def _cmd_probes(args) -> int:
    """List registered probes, or describe one in detail."""
    if args.name:
        cls = probe_registry.get(args.name)
        directions = dict(cls.directions)
        print(f"{cls.name} — {cls.description}")
        print(f"  consumes : {', '.join(sorted(cls.kinds))}")
        print("  metrics  :")
        for metric in cls.provides:
            gate = directions.get(metric)
            note = f"gated ({gate} is better)" if gate else "informational"
            print(f"    {metric:<24} {note}")
        return 0
    rows = [
        (
            cls.name,
            ", ".join(cls.provides),
            ", ".join(sorted(cls.kinds)),
            cls.description,
        )
        for cls in probe_registry.all_probes()
    ]
    print(render_table(
        "Registered measurement probes (repro.harness.probes)",
        ("name", "metrics", "trace kinds", "description"),
        rows,
    ))
    return 0


def _cmd_protocols(args) -> int:
    rows = [
        (
            plugin.name,
            f"{plugin.n(args.f)} (f={args.f})",
            "yes" if plugin.uses_pairs else "no",
            "yes" if plugin.supports_failover else "no",
            plugin.description,
        )
        for plugin in protocols.all_protocols()
    ]
    print(render_table(
        "Registered protocol plugins (repro.protocols)",
        ("name", "n(f)", "pairs", "failover", "description"),
        rows,
    ))
    return 0


def _add_sweep_options(parser, json_dir_default=None) -> None:
    from repro.harness import exec as exec_backends

    parser.add_argument("--quick", action="store_true", help="fewer points/batches")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = serial, in-process)")
    parser.add_argument("--executor", default=None,
                        choices=exec_backends.names(),
                        help="execution backend (default: serial for "
                             "--jobs 1, pool otherwise)")
    parser.add_argument("--resume", default=None, metavar="JOURNAL",
                        help="checkpoint journal: finished points are "
                             "appended here as they complete, and points "
                             "already journaled are not re-run")
    parser.add_argument("--fast-crypto", action="store_true",
                        dest="fast_crypto",
                        help="cost-model-only crypto: skip byte-level "
                             "encoding/digesting (simulated metrics are "
                             "identical; auto-falls back when a selected "
                             "probe needs digest bytes)")
    parser.add_argument("--probes", default=None, metavar="P1,P2",
                        help="probe selection for every point (default: "
                             "each experiment's paper probes; see "
                             "`repro probes`)")
    parser.add_argument("--bind", default=None, metavar="HOST:PORT",
                        help="sockets executor: listen on this interface "
                             "so workers can join from other hosts")
    parser.add_argument("--spawn", type=int, default=None, metavar="N",
                        help="sockets executor: local workers to spawn "
                             "(0 = wait for external workers only)")
    parser.add_argument("--auth-key", default=None,
                        help="sockets executor: pre-shared handshake key "
                             "(or $REPRO_AUTH_KEY); required with a "
                             "non-loopback --bind")
    parser.add_argument("--json-dir", default=json_dir_default,
                        help="write BENCH_<figure>.json artifacts here")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Reproduce the paper's figures"
    )
    sub = parser.add_subparsers(dest="command", required=True, metavar="command")

    for figure in FIGURES:
        figure_parser = sub.add_parser(figure, help=f"regenerate {figure}")
        _add_sweep_options(figure_parser)
        figure_parser.add_argument("--progress", action="store_true",
                                   help="per-point progress on stderr")

    suite = sub.add_parser(
        "suite", help="run figure sweeps and emit BENCH_*.json artifacts"
    )
    _add_sweep_options(suite, json_dir_default="out")
    suite.add_argument("--figures", default=",".join(SUITE_FIGURES),
                       help="comma-separated subset (default: "
                            f"{','.join(SUITE_FIGURES)}; f3pop is opt-in)")
    suite.add_argument("--no-progress", action="store_true",
                       help="suppress per-point progress lines")
    from repro.harness.baseline import DEFAULT_TOLERANCE_PCT

    suite.add_argument("--baseline-dir", default=None,
                       help="compare artifacts against BENCH_*.json here; "
                            "exit 1 on regression")
    suite.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE_PCT,
                       help="regression tolerance, percent (default %(default)s)")

    compare_parser = sub.add_parser(
        "compare", help="diff a BENCH_*.json artifact against a baseline"
    )
    compare_parser.add_argument("current")
    compare_parser.add_argument("baseline", nargs="?", default=None)
    compare_parser.add_argument("--tolerance", type=float,
                                default=DEFAULT_TOLERANCE_PCT,
                                help="allowed worsening, percent")
    compare_parser.add_argument("--live", action="store_true",
                                help="current is a BENCH_live_*.json from "
                                     "`repro serve`: render live-vs-simulated "
                                     "curves (baseline optional — omitted, the "
                                     "simulated counterpart runs on the fly)")

    from repro.harness.scenario import add_scenario_arguments

    scenario_parser = sub.add_parser(
        "scenario", help="run a declarative scenario (builtin or spec file)"
    )
    add_scenario_arguments(scenario_parser)

    protocols_parser = sub.add_parser(
        "protocols", help="list registered protocol plugins"
    )
    protocols_parser.add_argument("--f", type=int, default=2,
                                  help="fault tolerance shown in the n(f) column")

    probes_parser = sub.add_parser(
        "probes", help="list registered measurement probes"
    )
    probes_parser.add_argument("name", nargs="?", default=None,
                               help="describe one probe in detail")

    worker_parser = sub.add_parser(
        "worker", help="run sweep tasks streamed from a sockets-executor "
                       "coordinator (spawned automatically for local "
                       "sweeps; start by hand on extra hosts)"
    )
    worker_parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                               help="coordinator address")
    worker_parser.add_argument("--auth-key", default=None,
                               help="pre-shared handshake key (or "
                                    "$REPRO_AUTH_KEY)")

    from repro.live.client import add_load_arguments
    from repro.live.cluster import add_serve_arguments

    serve_parser = sub.add_parser(
        "serve", help="run (or join) a live replica cluster over TCP/asyncio"
    )
    add_serve_arguments(serve_parser)

    load_parser = sub.add_parser(
        "load", help="drive a live cluster with an open-loop request stream"
    )
    add_load_arguments(load_parser)

    from repro.harness.perf import add_perf_arguments

    perf_parser = sub.add_parser(
        "perf", help="time the hot-path reference point (wall-time telemetry)"
    )
    add_perf_arguments(perf_parser)

    from repro.analysis.cli import add_lint_arguments

    lint_parser = sub.add_parser(
        "lint", help="statically check the determinism/safety invariants "
                     "(RPR001-RPR005)"
    )
    add_lint_arguments(lint_parser)

    args = parser.parse_args(argv)
    try:
        if args.command == "suite":
            return _cmd_suite(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "scenario":
            from repro.harness.scenario import cmd_scenario

            return cmd_scenario(args)
        if args.command == "protocols":
            return _cmd_protocols(args)
        if args.command == "probes":
            return _cmd_probes(args)
        if args.command == "perf":
            from repro.harness.perf import cmd_perf

            return cmd_perf(args)
        if args.command == "worker":
            from repro.harness.exec.sockets import main as worker_main

            worker_argv = ["--connect", args.connect]
            if args.auth_key:
                worker_argv += ["--auth-key", args.auth_key]
            return worker_main(worker_argv)
        if args.command == "serve":
            from repro.live.cluster import cmd_serve

            return cmd_serve(args)
        if args.command == "load":
            from repro.live.client import cmd_load

            return cmd_load(args)
        if args.command == "lint":
            from repro.analysis.cli import cmd_lint

            return cmd_lint(args)
        return _cmd_figure(args.command, args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
