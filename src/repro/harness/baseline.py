"""Perf-regression gate: diff a benchmark artifact against a baseline.

:func:`compare` joins two ``BENCH_<figure>.json`` documents on their
stable point ids and flags any metric that got *worse* by more than a
tolerance: latency-like metrics regress upward, throughput regresses
downward.  Everything else in ``metrics`` (sample counts, observed
sizes) is carried for context but not gated.

The sweep metrics are deterministic simulation outputs, so on
unchanged code the diff is exactly zero; the tolerance absorbs
intentional small recalibrations without letting a real slowdown
through.  CI runs::

    python -m repro compare out/BENCH_fig4.json \\
        benchmarks/baselines/BENCH_fig4.json --tolerance 10

which exits non-zero when a regression is found.  The same entry point
is available as ``python -m repro.harness.baseline``.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.harness.artifact import BenchArtifact, load_artifact
from repro.harness.report import render_table

#: Default regression tolerance, percent.
DEFAULT_TOLERANCE_PCT = 10.0


def metric_direction(name: str) -> str | None:
    """``"lower"`` / ``"higher"`` is better, or ``None`` (not gated).

    Probes own their metrics' gate directions: the registry is
    consulted first (both bare names and the ``<probe>.<metric>``
    namespaced form scenario probe metrics use), so registering a new
    probe automatically gates what it declares.  The name heuristics
    remain as a fallback for metrics no probe claims (the scenario
    built-ins, and any v1/v2-era artifact names).
    """
    from repro.harness import probes as probe_registry

    direction = probe_registry.metric_direction(name)
    if direction is not None:
        return direction
    if name.startswith("latency") or name == "failover_latency":
        return "lower"
    if name.startswith("throughput"):
        return "higher"
    return None


@dataclass(frozen=True)
class MetricDelta:
    """One (point, metric) comparison."""

    point_id: str
    metric: str
    baseline: float
    current: float
    direction: str

    @property
    def delta_pct(self) -> float:
        if self.baseline == 0:
            return 0.0 if self.current == 0 else float("inf")
        return (self.current - self.baseline) / abs(self.baseline) * 100.0

    def regressed(self, tolerance_pct: float) -> bool:
        if self.direction == "lower":
            return self.delta_pct > tolerance_pct
        return self.delta_pct < -tolerance_pct


@dataclass
class BaselineReport:
    """The outcome of one artifact-vs-baseline comparison."""

    figure: str
    tolerance_pct: float
    deltas: list[MetricDelta] = field(default_factory=list)
    missing_points: list[str] = field(default_factory=list)
    new_points: list[str] = field(default_factory=list)
    missing_metrics: list[str] = field(default_factory=list)
    #: Informational wall-time telemetry (never gated): per shared
    #: point, ``(point_id, baseline_wall_s, current_wall_s)`` where a
    #: side without telemetry (schema v1) reports 0.0.
    wall_times: list[tuple[str, float, float]] = field(default_factory=list)
    #: Suite-level ``(baseline, current)`` telemetry, 0.0 when absent.
    suite_wall_s: tuple[float, float] = (0.0, 0.0)
    suite_events_per_s: tuple[float, float] = (0.0, 0.0)

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.regressed(self.tolerance_pct)]

    @property
    def ok(self) -> bool:
        """Pass unless a gated metric regressed, a baseline point
        vanished, or a gated metric vanished from a surviving point —
        silently dropped coverage is also a regression."""
        return (
            not self.regressions
            and not self.missing_points
            and not self.missing_metrics
        )

    def render(self) -> str:
        rows = [
            (
                d.point_id,
                d.metric,
                f"{d.baseline:.6g}",
                f"{d.current:.6g}",
                f"{d.delta_pct:+.1f}%",
                "REGRESSED" if d.regressed(self.tolerance_pct) else "ok",
            )
            for d in sorted(
                self.deltas,
                key=lambda d: (not d.regressed(self.tolerance_pct), d.point_id),
            )
        ]
        table = render_table(
            f"Baseline comparison — {self.figure} "
            f"(tolerance ±{self.tolerance_pct:g}%)",
            ("point", "metric", "baseline", "current", "delta", "verdict"),
            rows,
        )
        lines = [table]
        lines.extend(self._telemetry_lines())
        if self.missing_points:
            lines.append(f"missing vs baseline: {', '.join(self.missing_points)}")
        if self.new_points:
            lines.append(f"new (not in baseline): {', '.join(self.new_points)}")
        if self.missing_metrics:
            lines.append(
                f"gated metrics gone: {', '.join(self.missing_metrics)}"
            )
        lines.append(
            "PASS" if self.ok
            else f"FAIL: {len(self.regressions)} regression(s), "
                 f"{len(self.missing_points)} missing point(s), "
                 f"{len(self.missing_metrics)} vanished metric(s)"
        )
        return "\n".join(lines)

    def _telemetry_lines(self) -> list[str]:
        """Wall-time columns — informational only, never part of the
        verdict (wall time is machine-dependent).  A side without a
        usable measurement renders as '-'; events/s appears only for
        schema-v2 artifacts."""
        rows = []
        for point_id, base_wall, cur_wall in self.wall_times:
            if base_wall <= 0.0 and cur_wall <= 0.0:
                continue
            delta = (
                f"{(cur_wall - base_wall) / base_wall * 100.0:+.0f}%"
                if base_wall > 0.0 and cur_wall > 0.0 else "-"
            )
            rows.append((
                point_id,
                f"{base_wall:.2f}" if base_wall > 0.0 else "-",
                f"{cur_wall:.2f}" if cur_wall > 0.0 else "-",
                delta,
            ))
        if not rows:
            return []
        lines = ["", render_table(
            f"Wall-time telemetry — {self.figure} (informational, not gated)",
            ("point", "baseline (s)", "current (s)", "delta"),
            rows,
        )]
        base_eps, cur_eps = self.suite_events_per_s
        base_wall, cur_wall = self.suite_wall_s
        summary = [f"suite wall: {cur_wall:.1f}s"]
        if base_wall > 0.0:
            summary.append(f"(baseline {base_wall:.1f}s)")
        if cur_eps > 0.0:
            summary.append(f"— {cur_eps:,.0f} events/s")
            if base_eps > 0.0:
                summary.append(f"(baseline {base_eps:,.0f})")
        lines.append(" ".join(summary))
        return lines


def compare(
    current: BenchArtifact,
    baseline: BenchArtifact,
    tolerance_pct: float = DEFAULT_TOLERANCE_PCT,
) -> BaselineReport:
    """Diff ``current`` against ``baseline`` point-by-point."""
    if current.figure != baseline.figure:
        raise ConfigError(
            f"artifact figures differ: {current.figure!r} vs {baseline.figure!r}"
        )
    current_points = current.point_by_id()
    baseline_points = baseline.point_by_id()
    report = BaselineReport(figure=current.figure, tolerance_pct=tolerance_pct)
    report.missing_points = sorted(set(baseline_points) - set(current_points))
    report.new_points = sorted(set(current_points) - set(baseline_points))
    report.suite_wall_s = (baseline.wall_time_s, current.wall_time_s)
    report.suite_events_per_s = (
        baseline.events_per_second, current.events_per_second
    )
    for point_id in sorted(set(current_points) & set(baseline_points)):
        report.wall_times.append((
            point_id,
            float(baseline_points[point_id].get("wall_time_s") or 0.0),
            float(current_points[point_id].get("wall_time_s") or 0.0),
        ))
        base_metrics = baseline_points[point_id]["metrics"]
        cur_metrics = current_points[point_id]["metrics"]
        for metric in sorted(base_metrics):
            direction = metric_direction(metric)
            if direction is None:
                continue
            # A gated metric the baseline measured but the current run
            # no longer reports is lost coverage, not a pass.
            if metric not in cur_metrics:
                report.missing_metrics.append(f"{point_id}:{metric}")
                continue
            report.deltas.append(
                MetricDelta(
                    point_id=point_id,
                    metric=metric,
                    baseline=base_metrics[metric],
                    current=cur_metrics[metric],
                    direction=direction,
                )
            )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff a BENCH_*.json artifact against a committed baseline"
    )
    parser.add_argument("current", help="artifact from the run under test")
    parser.add_argument("baseline", help="committed baseline artifact")
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE_PCT,
        help="allowed worsening, percent (default %(default)s)",
    )
    args = parser.parse_args(argv)
    try:
        report = compare(
            load_artifact(args.current),
            load_artifact(args.baseline),
            tolerance_pct=args.tolerance,
        )
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
