"""The ``sockets`` backend: a fault-tolerant TCP task coordinator.

The do-all problem in miniature (Dwork/Halpern/Waarts, PAPERS.md): a
grid of independent deterministic tasks, a fleet of unreliable
workers, and the requirement that every task gets done exactly once
*from the caller's point of view* however many workers die along the
way.  Because tasks are pure, "exactly once" is cheap — re-running a
task lost with its worker cannot change its result, so worker loss is
a **scheduling event, not a sweep failure**.

Topology::

    coordinator (this process)            worker subprocess x N
    ------------------------------        ---------------------------
    listen on host:port      <----------  python -m repro worker \\
    stream tasks to idle workers              --connect host:port
    collect results, reschedule losses    run_task(task) per message

Wire protocol: length-prefixed pickles (a 4-byte big-endian size, then
the payload), tuples on both directions —

* coordinator -> worker: ``("task", index, attempt, SweepTask)`` or
  ``("stop",)``;
* worker -> coordinator: ``("hello", pid)`` once, then
  ``("result", index, True, PointResult)`` or
  ``("result", index, False, traceback_text)``.

Failure semantics:

* **worker dies or times out mid-task** — the in-flight task goes back
  to the *front* of the queue (another worker picks it up next), the
  dead worker is reaped and a replacement is spawned.  Retries are
  bounded (:data:`DEFAULT_MAX_ATTEMPTS` per task); exhausting them
  aborts the sweep with a :class:`~repro.errors.SweepError` naming the
  point.
* **task raises inside a worker** — deterministic, so never retried:
  the sweep aborts with a :class:`SweepError` carrying the point id
  and the worker-side traceback.

By default the coordinator binds the loopback interface and spawns
``jobs`` local workers — byte-identical to ``serial``/``pool``, just
over TCP.  For multi-host use, pass ``--executor sockets --bind
0.0.0.0:5555 --spawn 0`` to any sweep command (equivalently, construct
``SocketExecutor(bind="0.0.0.0", port=5555, spawn=0, jobs=N)``) and
start ``python -m repro worker --connect coord-host:5555`` on as many
machines as you like (the grid waits for connections); ``jobs`` then
only caps how many tasks are in flight at once per accepted worker
(one each).

.. warning:: The payload format is **pickle** — anyone who completes a
   connection can execute code in the coordinator (and a rogue
   coordinator can do the same to a worker).  The loopback default
   needs no protection; binding a non-loopback interface *requires* a
   pre-shared key (``auth_key=`` / ``--auth-key`` / the
   ``REPRO_AUTH_KEY`` environment variable), which the coordinator
   verifies with an HMAC challenge-response handshake à la
   :mod:`multiprocessing.connection` before any frame is unpickled
   (:mod:`repro.net.framing`).  The key authenticates peers; it does
   not encrypt traffic — still keep the port on a trusted network or
   an SSH tunnel.

Test hook: setting ``REPRO_EXEC_CRASH=<substring>:<times>`` in a
worker's environment makes it ``os._exit(17)`` when handed a task
whose ``point_id`` contains the substring while ``attempt <= times``
— the only way to exercise the reschedule and retries-exhausted paths
deterministically from the test suite.
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import subprocess
import sys
import threading
import traceback
from collections import deque
from typing import Sequence

from repro.errors import ConfigError, SweepError
from repro.harness.exec.base import Executor, ProgressCallback, register
from repro.harness.exec.schedule import dispatch_order
from repro.harness.runner import PointResult, SweepTask, run_task
from repro.net import framing
from repro.net.framing import recv_msg, send_msg

#: Attempts per task (1 first run + 2 retries) before the sweep fails.
DEFAULT_MAX_ATTEMPTS = 3
#: Exit status of the ``REPRO_EXEC_CRASH`` test hook.
_CRASH_EXIT = 17

# The framing lived here before it was shared with the live transport
# (:mod:`repro.net.framing`); these aliases keep the old import paths
# working.
_LEN = framing.LEN
_recv_exact = framing.recv_exact
WorkerLost = framing.PeerLost


# ----------------------------------------------------------------------
# Worker side (`python -m repro worker --connect host:port`)
# ----------------------------------------------------------------------
def _maybe_crash(task: SweepTask, attempt: int) -> None:
    """Honour the ``REPRO_EXEC_CRASH`` test hook (see module docs)."""
    spec = os.environ.get("REPRO_EXEC_CRASH")
    if not spec:
        return
    pattern, _, times = spec.rpartition(":")
    if pattern and pattern in task.point_id and attempt <= int(times):
        os._exit(_CRASH_EXIT)


def worker_loop(host: str, port: int, auth_key: bytes | None = None) -> int:
    """Connect to a coordinator and run tasks until told to stop.

    The initial dial retries on the shared jittered-backoff policy
    (:data:`repro.net.framing.STARTUP`): external joiners routinely
    race the coordinator's bind, and a fixed-cadence (or single-shot)
    dial loses that race spuriously.  A coordinator that never appears
    is a clean :class:`~repro.net.framing.PeerLost` once the retry
    budget is spent.
    """
    with framing.connect_with_retry(host, port, framing.STARTUP) as sock:
        if auth_key is not None:
            try:
                framing.answer_challenge(sock, auth_key)
            except framing.AuthenticationError as exc:
                print(f"worker: {exc}", file=sys.stderr)
                return 2
        send_msg(sock, ("hello", os.getpid()))
        while True:
            try:
                msg = recv_msg(sock)
            except WorkerLost:
                return 0  # coordinator went away: nothing left to do
            if msg[0] == "stop":
                return 0
            _, index, attempt, task = msg
            _maybe_crash(task, attempt)
            try:
                result = run_task(task)
                reply = ("result", index, True, result)
            except Exception:
                reply = ("result", index, False, traceback.format_exc())
            try:
                send_msg(sock, reply)
            except OSError:
                return 0  # coordinator aborted the sweep mid-reply


def main(argv: list[str] | None = None) -> int:
    """CLI entry for the worker subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro worker",
        description="sweep worker: executes tasks streamed from a "
                    "sockets-executor coordinator",
    )
    parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address (printed by the coordinator, or the "
             "host you started `SocketExecutor(bind=..., port=...)` on)",
    )
    parser.add_argument(
        "--auth-key", default=None,
        help=f"pre-shared handshake key (or ${framing.AUTH_KEY_ENV}); "
             "must match the coordinator's",
    )
    args = parser.parse_args(argv)
    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        parser.error(f"--connect wants HOST:PORT, got {args.connect!r}")
    return worker_loop(host, int(port), framing.resolve_auth_key(args.auth_key))


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------
@register
class SocketExecutor(Executor):
    """Stream tasks to worker subprocesses over TCP; survive their
    deaths."""

    name = "sockets"

    def __init__(
        self,
        jobs: int = 1,
        cost_hints: dict[str, float] | None = None,
        bind: str = "127.0.0.1",
        port: int = 0,
        spawn: int | None = None,
        task_timeout: float | None = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        worker_env: dict[str, str] | None = None,
        auth_key: str | bytes | None = None,
    ) -> None:
        super().__init__(jobs=jobs, cost_hints=cost_hints)
        self.bind = bind
        self.port = port
        #: Workers to spawn locally; ``None`` = one per job.  0 means
        #: "external workers will connect" (multi-host mode).
        self.spawn = self.jobs if spawn is None else spawn
        self.task_timeout = task_timeout
        if max_attempts < 1:
            raise ConfigError("sockets executor needs max_attempts >= 1")
        self.max_attempts = max_attempts
        self.worker_env = worker_env
        #: Pre-shared handshake key (``REPRO_AUTH_KEY`` when unset);
        #: mandatory for non-loopback binds, enforced at :meth:`run`.
        self.auth_key = framing.resolve_auth_key(auth_key)
        framing.require_auth_for_bind(self.bind, self.auth_key)

    # -- worker process management -------------------------------------
    def _spawn_worker(self, port: int) -> subprocess.Popen:
        env = dict(os.environ)
        # Propagate the coordinator's import path verbatim: workers
        # must resolve `repro` exactly as the parent does, installed
        # or straight from a source tree.
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        if self.auth_key is not None:
            env[framing.AUTH_KEY_ENV] = self.auth_key.decode("utf-8")
        if self.worker_env:
            env.update(self.worker_env)
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--connect", f"127.0.0.1:{port}"],
            env=env,
            stdout=subprocess.DEVNULL,
        )

    # -- scheduling core -----------------------------------------------
    def run(
        self,
        tasks: Sequence[SweepTask],
        progress: ProgressCallback | None = None,
    ) -> list[PointResult]:
        if not tasks:
            return []
        self._start_clock()
        self._tasks = tasks
        self._results: dict[int, PointResult] = {}
        self._fatal: SweepError | None = None
        self._cond = threading.Condition()
        self._serving = 0
        self._respawns = 0
        # Most-expensive-first; rescheduled losses jump the queue.
        self._queue: deque[tuple[int, int]] = deque(
            (i, 1) for i in dispatch_order(tasks, self.cost_hints)
        )
        self._procs: list[subprocess.Popen] = []
        threads: list[threading.Thread] = []

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.bind, self.port))
        listener.listen()
        listener.settimeout(0.2)
        self._bound_port = port = listener.getsockname()[1]
        # A SIGINT/SIGTERM turns into a clean abort: the wait loop
        # wakes, the finally block reaps every worker subprocess, and
        # the caller gets a SweepError instead of a traceback plus a
        # fleet of orphans.  Only the main thread may install handlers.
        old_handlers: dict[int, object] = {}
        if threading.current_thread() is threading.main_thread():
            def _interrupted(signo: int, frame: object) -> None:
                self._abort(SweepError(
                    f"sweep interrupted by {signal.Signals(signo).name}"
                ))

            for signo in (signal.SIGINT, signal.SIGTERM):
                old_handlers[signo] = signal.signal(signo, _interrupted)
        if self.spawn == 0:
            # External-worker mode (CLI --bind/--spawn 0): the grid
            # waits for joins, so tell the operator where to point
            # `python -m repro worker` on the other hosts.
            print(
                f"sockets executor listening on {self.bind}:{port} — "
                f"join workers with: python -m repro worker "
                f"--connect <this-host>:{port}",
                file=sys.stderr, flush=True,
            )
        try:
            for _ in range(min(self.spawn, len(tasks))):
                self._procs.append(self._spawn_worker(port))

            def accept_loop() -> None:
                while not self._finished():
                    try:
                        conn, _ = listener.accept()
                    except socket.timeout:
                        continue
                    except OSError:
                        return
                    thread = threading.Thread(
                        target=self._serve, args=(conn, progress), daemon=True
                    )
                    threads.append(thread)
                    thread.start()

            acceptor = threading.Thread(target=accept_loop, daemon=True)
            acceptor.start()
            self._wait(progress)
        finally:
            with self._cond:
                self._cond.notify_all()
            listener.close()
            for proc in self._procs:
                if proc.poll() is None:
                    proc.terminate()
            for thread in threads:
                thread.join(timeout=2.0)
            for proc in self._procs:
                try:
                    proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=2.0)
            for signo, handler in old_handlers.items():
                signal.signal(signo, handler)
        if self._fatal is not None:
            raise self._fatal
        return [self._results[i] for i in range(len(tasks))]

    def _finished(self) -> bool:
        return self._fatal is not None or len(self._results) == len(self._tasks)

    def _wait(self, progress: ProgressCallback | None) -> None:
        """Block until the sweep completes, fails, or orphans."""
        with self._cond:
            while not self._finished():
                self._cond.wait(timeout=0.2)
                if self._finished():
                    break
                if (
                    self._procs
                    and self._serving == 0
                    and all(p.poll() is not None for p in self._procs)
                ):
                    codes = sorted({p.poll() for p in self._procs})
                    self._fatal = SweepError(
                        f"all sockets-executor workers exited (codes "
                        f"{codes}) with {len(self._tasks) - len(self._results)}"
                        f" task(s) unfinished — workers start with `python -m"
                        f" repro worker`; check they can import repro"
                    )

    def _serve(self, conn: socket.socket, progress: ProgressCallback | None) -> None:
        """One thread per connected worker: feed it tasks until done.

        Only *socket* I/O maps to "worker lost"; coordinator-local
        failures (a progress callback or checkpoint journal raising —
        a full disk, say) abort the sweep with the real error instead
        of being misread as a dead worker.
        """
        with self._cond:
            self._serving += 1
        in_flight: tuple[int, int] | None = None
        try:
            try:
                conn.settimeout(self.task_timeout)
                if self.auth_key is not None:
                    framing.deliver_challenge(conn, self.auth_key)
                hello = recv_msg(conn)
            except framing.AuthenticationError:
                # A peer with the wrong key is not one of our workers:
                # drop it without touching the fleet accounting.
                return
            except (WorkerLost, OSError):
                # Vanished before the handshake: nothing in flight to
                # reschedule, but keep the fleet at strength.
                self._worker_lost(None)
                return
            if not (isinstance(hello, tuple) and hello[0] == "hello"):
                return
            while True:
                item = self._next_item()
                if item is None:
                    try:
                        send_msg(conn, ("stop",))
                    except OSError:
                        pass
                    return
                in_flight = item
                index, attempt = item
                try:
                    send_msg(conn, ("task", index, attempt, self._tasks[index]))
                    _, r_index, ok, payload = recv_msg(conn)
                except (WorkerLost, OSError):
                    self._worker_lost(in_flight)
                    return
                in_flight = None
                if ok:
                    try:
                        self._record(r_index, payload, progress)
                    except Exception as exc:
                        self._abort(SweepError(
                            f"progress/checkpoint callback failed after "
                            f"{self._tasks[r_index].point_id}: {exc!r}"
                        ))
                        return
                else:
                    self._abort(SweepError(
                        f"sweep task {self._tasks[r_index].point_id} failed "
                        f"in a worker:\n{payload}"
                    ))
                    return
        finally:
            with self._cond:
                self._serving -= 1
                self._cond.notify_all()
            conn.close()

    def _next_item(self) -> tuple[int, int] | None:
        """The next (index, attempt) to dispatch; ``None`` when the
        sweep is over.  Blocks while the queue is empty but tasks are
        still in flight elsewhere (their workers may die)."""
        with self._cond:
            while True:
                if self._finished():
                    return None
                if self._queue:
                    return self._queue.popleft()
                self._cond.wait(timeout=0.2)

    def _record(
        self, index: int, point: PointResult, progress: ProgressCallback | None
    ) -> None:
        with self._cond:
            if index in self._results:  # duplicate from a raced retry
                return
            self._results[index] = point
            self._report(progress, point, total=len(self._tasks))
            self._cond.notify_all()

    def _abort(self, error: SweepError) -> None:
        with self._cond:
            if self._fatal is None:
                self._fatal = error
            self._cond.notify_all()

    def _worker_lost(self, in_flight: tuple[int, int] | None) -> None:
        """Reschedule the lost worker's task and refill the fleet."""
        respawn = False
        with self._cond:
            if self._fatal is None and in_flight is not None:
                index, attempt = in_flight
                if index not in self._results:
                    if attempt >= self.max_attempts:
                        task_id = self._tasks[index].point_id
                        self._fatal = SweepError(
                            f"sweep task {task_id} lost its worker "
                            f"{attempt} time(s) (died or timed out); "
                            f"giving up after {self.max_attempts} attempts"
                        )
                    else:
                        self._queue.appendleft((index, attempt + 1))
            # Keep the fleet at strength while work remains: one
            # replacement per loss, bounded so a worker that can never
            # start cannot respawn forever.
            respawn = (
                not self._finished()
                and self.spawn > 0
                and self._respawns < self.spawn * (self.max_attempts + 1)
            )
            if respawn:
                self._respawns += 1
            self._cond.notify_all()
        if respawn:
            self._procs.append(self._spawn_worker(self._bound_port))
