"""The :class:`Executor` protocol and the backend registry.

An executor turns a list of pure :class:`~repro.harness.runner.
SweepTask` values into the matching list of
:class:`~repro.harness.runner.PointResult`, in **submission order** —
the contract every backend must honour so that ``serial``, ``pool``
and ``sockets`` are byte-identical for the same grid and the baseline
gate never sees a scheduling artefact.

Backends register by class (keyed on their ``name``), mirroring the
protocol plugin registry of :mod:`repro.protocols`: the three builtin
backends register on package import, and anything else —  an SSH
fan-out, a batch-queue submitter — becomes reachable from
:func:`repro.harness.runner.execute` and every CLI ``--executor`` flag
the moment it calls :func:`register`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Sequence

from repro.errors import ConfigError
from repro.harness.runner import PointResult, Progress, SweepTask
from repro.harness.telemetry import Stopwatch

#: Per-completion callback type (``None`` disables reporting).
ProgressCallback = Callable[[Progress], None]


class Executor(ABC):
    """One strategy for executing a sweep-task grid.

    Subclasses accept their options as keyword arguments — every
    backend takes ``jobs`` (its parallelism budget; serial ignores it)
    and ``cost_hints`` (optional ``{point_id: relative cost}`` used to
    dispatch expensive tasks first) so the :func:`~repro.harness.
    runner.execute` facade can construct any of them uniformly.
    """

    #: Registry key; subclasses must override.
    name: str = ""

    def __init__(
        self, jobs: int = 1, cost_hints: dict[str, float] | None = None
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.cost_hints = cost_hints

    @abstractmethod
    def run(
        self,
        tasks: Sequence[SweepTask],
        progress: ProgressCallback | None = None,
    ) -> list[PointResult]:
        """Execute every task; results in submission order."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _start_clock(self) -> None:
        self._watch = Stopwatch()
        self._done = 0

    def _report(
        self,
        progress: ProgressCallback | None,
        point: PointResult,
        total: int,
    ) -> None:
        """Emit one completion snapshot (call under the backend's lock
        when completions may race)."""
        self._done += 1
        if progress is not None:
            progress(Progress(
                done=self._done,
                total=total,
                elapsed=self._watch.elapsed,
                last=point,
            ))


# ----------------------------------------------------------------------
# Registry (mirrors repro.protocols.registry)
# ----------------------------------------------------------------------
_REGISTRY: dict[str, type[Executor]] = {}


def register(backend: type[Executor], *, replace: bool = False) -> type[Executor]:
    """Add an executor class under its ``name``; returns it, so it can
    be used as a decorator.  Duplicate names are an error unless
    ``replace=True`` (shadowing a builtin in tests)."""
    if not backend.name:
        raise ConfigError(f"executor backend {backend!r} has no name")
    if backend.name in _REGISTRY and not replace:
        raise ConfigError(
            f"executor {backend.name!r} is already registered; "
            f"pass replace=True to override"
        )
    _REGISTRY[backend.name] = backend
    return backend


def unregister(name: str) -> None:
    """Remove a backend (primarily for test teardown)."""
    _REGISTRY.pop(name, None)


def get(name: str) -> type[Executor]:
    """Look up a backend class by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown executor {name!r}; known: {names()}"
        ) from None


def names() -> tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(_REGISTRY)


def create(name: str, **options: object) -> Executor:
    """Instantiate a backend with the given options."""
    return get(name)(**options)
