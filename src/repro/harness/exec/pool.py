"""The ``ProcessPoolExecutor`` backend (the historical ``jobs=N`` path).

Tasks are submitted most-expensive-first (see
:mod:`repro.harness.exec.schedule`) so the straggler starts early, and
results are reassembled by submission index — parallelism never
reorders a sweep.

Failure semantics (tightened versus the pre-refactor runner, which
could silently return a ``None``-holed list):

* a task that raises inside a worker aborts the sweep with a
  :class:`~repro.errors.SweepError` naming the owning ``point_id``
  (tasks are deterministic, so retrying a task *exception* would just
  fail again);
* a future lost without a result — a worker killed by the OOM killer
  breaks the whole pool — also surfaces as a :class:`SweepError`
  naming the affected points, never as a hole in the result list.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Sequence

from repro.errors import SweepError
from repro.harness.exec.base import Executor, ProgressCallback, register
from repro.harness.exec.schedule import dispatch_order
from repro.harness.runner import PointResult, SweepTask, run_task


@register
class PoolExecutor(Executor):
    """Fan the grid out over a local worker-process pool."""

    name = "pool"

    def run(
        self,
        tasks: Sequence[SweepTask],
        progress: ProgressCallback | None = None,
    ) -> list[PointResult]:
        if not tasks:
            return []
        self._start_clock()
        ordered: list[PointResult | None] = [None] * len(tasks)
        workers = min(self.jobs, len(tasks))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(run_task, tasks[i]): i
                for i in dispatch_order(tasks, self.cost_hints)
            }
            for future in as_completed(futures):
                i = futures[future]
                try:
                    point = future.result()
                except Exception as exc:
                    # BrokenProcessPool, pickling failures and task
                    # exceptions alike: name the point, keep the cause.
                    raise SweepError(
                        f"sweep task {tasks[i].point_id} failed in a pool "
                        f"worker: {exc}"
                    ) from exc
                ordered[i] = point
                self._report(progress, point, total=len(tasks))
        lost = [tasks[i].point_id for i, p in enumerate(ordered) if p is None]
        if lost:
            raise SweepError(
                f"pool lost {len(lost)} task(s) without a result "
                f"(worker died?): {', '.join(lost[:3])}"
                + ("..." if len(lost) > 3 else "")
            )
        return ordered
