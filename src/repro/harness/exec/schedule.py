"""Cost-aware dispatch: predicted-expensive tasks first.

A sweep's wall time under a parallel backend is bounded by whichever
task finishes *last* — dispatch a grid in naive order and the one
saturated point that takes 10x the others can land on a worker at the
very end, leaving the rest of the fleet idle while it straggles
(longest-processing-time-first is the classic makespan heuristic, and
the do-all framing of the ROADMAP makes every task placement a
scheduling decision, not an accident).

Costs come from two sources, best first:

* **prior-artifact telemetry** — schema-v2 ``BENCH_*.json`` documents
  record deterministic per-point ``events`` counts; a previous run of
  the same grid is therefore a perfect cost oracle
  (:func:`load_cost_hints` harvests a directory of artifacts);
* **task shape** — absent hints, :func:`predicted_cost` estimates
  relative cost from the fields that drive simulated work.  Measured
  against real runs, an order point's event count is ~420 events per
  batch slot plus ~150 background events per simulated second; in
  slot units that is ``slots + 0.35 * simulated_seconds``, which
  reproduces the measured cost ratios across the paper's interval
  range to within a few percent and ranks the profiled 10 ms / 60
  batch reference point as the most expensive quick-suite task.

Only the *dispatch* order is affected; every backend still returns
results in submission order, so scheduling can never change a result.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.errors import ConfigError
from repro.harness.runner import FAILOVER, ORDER, SweepTask


def predicted_cost(task: SweepTask, hints: dict[str, float] | None = None) -> float:
    """A relative cost key for one task (bigger = dispatch earlier).

    With a hint available the deterministic prior ``events`` count is
    used verbatim; otherwise the estimate counts batching-interval
    slots the simulation must grind through (arbitrary units — only
    the ordering matters, and hint-backed and estimated costs are
    never meaningfully mixed because a prior artifact covers either
    the whole grid or none of it).
    """
    if hints:
        hinted = hints.get(task.point_id)
        if hinted is not None and hinted > 0:
            # Hints are raw event counts; scale into slot units so
            # hinted and estimated tasks sort on one axis (~420
            # events/slot, the measured order-point density).
            return float(hinted) / 420.0
    if task.kind == ORDER:
        interval = task.batching_interval
        slots = task.warmup_batches + task.n_batches + 4
        simulated = slots * interval + max(2.0, 60.0 * interval)  # + drain
        return slots + 0.35 * simulated
    if task.kind == FAILOVER:
        interval = (
            0.250 if task.batching_interval is None else task.batching_interval
        )
        # Warm-up + backlog build-up batches, then the ~8 s episode
        # (fail-over exchange plus the post-release commit drain).
        slots = 6.5 + task.backlog_batches
        return slots + 0.35 * (slots * interval + 8.0)
    spec = task.scenario  # SCENARIO (the only remaining kind)
    slots = spec.duration / spec.batching_interval
    return slots + 0.35 * (spec.duration + spec.drain)


def dispatch_order(
    tasks: Sequence[SweepTask], hints: dict[str, float] | None = None
) -> list[int]:
    """Submission indices reordered most-expensive-first.

    Ties keep submission order (the sort is stable), so grids with no
    cost signal dispatch exactly as submitted.
    """
    return sorted(
        range(len(tasks)),
        key=lambda i: -predicted_cost(tasks[i], hints),
    )


def load_cost_hints(json_dir: str | Path | None) -> dict[str, float]:
    """Harvest ``{point_id: events}`` from every readable
    ``BENCH_*.json`` under ``json_dir``.

    Schema-v1 documents carry no telemetry and contribute nothing;
    unreadable files are skipped (hints are an optimisation, never a
    requirement).  Returns ``{}`` for ``None`` / missing directories.
    """
    from repro.harness.artifact import events_by_point, load_artifact

    if json_dir is None:
        return {}
    hints: dict[str, float] = {}
    for path in sorted(Path(json_dir).glob("BENCH_*.json")):
        try:
            hints.update(events_by_point(load_artifact(path)))
        except (ConfigError, OSError):
            continue  # unreadable for any reason: run without hints
    return hints
