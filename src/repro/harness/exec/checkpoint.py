"""Checkpoint/resume: journal finished points, skip them on re-run.

A sweep interrupted at point 37 of 60 — a preempted CI runner, a
laptop lid, a killed coordinator — should resume at point 38, not
point 1.  Tasks are pure and ``point_id`` encodes every field that
influences a measurement, so a journal keyed on point ids is safe to
reuse across processes, backends and even *changed grids*: only
points whose full identity matches are skipped.

The journal is a file of back-to-back pickle records, one
``(point_id, git_sha, PointResult)`` per finished point, appended and
flushed as each completion arrives (any backend's ``progress`` stream
drives it, so checkpointing composes with ``serial``, ``pool`` and
``sockets`` alike).  A record torn by a crash mid-append is detected
and ignored on load — the interrupted point simply re-runs.  The git
SHA guards code identity: a ``point_id`` encodes every task
*parameter* but nothing about the simulator itself, so records
journaled by a different commit are skipped (with a warning) rather
than silently mixing two code versions' metrics into one artifact.
"""

from __future__ import annotations

import pickle
import warnings
from pathlib import Path
from typing import Sequence

from repro.harness.artifact import current_git_sha
from repro.harness.exec.base import Executor, ProgressCallback
from repro.harness.runner import PointResult, Progress, SweepTask


class Checkpoint:
    """An append-only journal of finished sweep points."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._git_sha = current_git_sha()

    def load(self) -> dict[str, PointResult]:
        """Every intact journal record from this code version, keyed
        by ``point_id``.

        Missing file means a fresh sweep; a truncated or torn final
        record (crash mid-append) ends the scan silently — everything
        before it is still trusted.  Records stamped by a *different*
        commit are skipped (those points re-run) with a warning;
        ``"unknown"`` on either side (running outside a checkout)
        disables the check rather than discarding work.
        """
        results: dict[str, PointResult] = {}
        stale = 0
        try:
            stream = self.path.open("rb")
        except FileNotFoundError:
            return results
        with stream:
            while True:
                try:
                    point_id, git_sha, point = pickle.load(stream)
                except EOFError:
                    break
                except (pickle.UnpicklingError, AttributeError, ValueError,
                        IndexError, TypeError):
                    break  # torn tail record: re-run that point
                if (git_sha != self._git_sha
                        and "unknown" not in (git_sha, self._git_sha)):
                    stale += 1
                    continue
                results[point_id] = point
        if stale:
            warnings.warn(
                f"checkpoint {self.path}: skipped {stale} record(s) "
                f"journaled by a different commit (those points re-run)",
                stacklevel=2,
            )
        return results

    def append(self, point: PointResult) -> None:
        """Journal one finished point durably enough to survive the
        *next* crash (flushed per record)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("ab") as stream:
            pickle.dump((point.task.point_id, self._git_sha, point), stream,
                        protocol=pickle.HIGHEST_PROTOCOL)
            stream.flush()


def run_with_checkpoint(
    backend: Executor,
    tasks: Sequence[SweepTask],
    path: str | Path,
    progress: ProgressCallback | None = None,
) -> list[PointResult]:
    """Execute ``tasks`` through ``backend``, journaling to ``path``
    and skipping points the journal already holds.

    Results come back in task order, journaled and fresh interleaved —
    indistinguishable from an uninterrupted run.  Progress totals
    count the whole grid; already-journaled points are reported
    up-front (with their recorded wall times) so a resumed sweep's
    progress stream starts at "done so far", not zero.
    """
    journal = Checkpoint(path)
    done = journal.load()
    remaining = [task for task in tasks if task.point_id not in done]
    completed = 0
    if progress is not None:
        for task in tasks:
            if task.point_id in done:
                completed += 1
                progress(Progress(done=completed, total=len(tasks),
                                  elapsed=0.0, last=done[task.point_id]))

    def journal_and_report(snapshot: Progress) -> None:
        nonlocal completed
        journal.append(snapshot.last)
        completed += 1
        if progress is not None:
            progress(Progress(done=completed, total=len(tasks),
                              elapsed=snapshot.elapsed, last=snapshot.last))

    fresh = backend.run(remaining, progress=journal_and_report) if remaining else []
    by_id = {point.task.point_id: point for point in fresh}
    return [
        done[task.point_id] if task.point_id in done else by_id[task.point_id]
        for task in tasks
    ]
