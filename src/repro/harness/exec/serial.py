"""The in-process backend: no pool, no pickling, no subprocesses.

The reference implementation of the executor contract — every other
backend is regression-tested byte-identical against this one — and
the right choice for single points, tiny grids and debugging (a task
failure surfaces with the full in-process traceback as its cause).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import SweepError
from repro.harness.exec.base import Executor, ProgressCallback, register
from repro.harness.runner import PointResult, SweepTask, run_task


@register
class SerialExecutor(Executor):
    """Run tasks one after another in the calling process."""

    name = "serial"

    def run(
        self,
        tasks: Sequence[SweepTask],
        progress: ProgressCallback | None = None,
    ) -> list[PointResult]:
        self._start_clock()
        results: list[PointResult] = []
        for task in tasks:
            try:
                point = run_task(task)
            except Exception as exc:
                # Same failure contract as every other backend: a
                # failing task is a SweepError naming its point (the
                # original traceback rides along as the cause).
                raise SweepError(
                    f"sweep task {task.point_id} failed: {exc}"
                ) from exc
            results.append(point)
            self._report(progress, point, total=len(tasks))
        return results
