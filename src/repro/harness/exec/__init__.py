"""Pluggable sweep-execution backends.

The execution half of the sweep runner, split out behind a small
registry (mirroring :mod:`repro.protocols`): an
:class:`~repro.harness.exec.base.Executor` maps a grid of pure
:class:`~repro.harness.runner.SweepTask` values to
:class:`~repro.harness.runner.PointResult` lists **in submission
order**, and three backends register on import —

* ``serial`` — in-process loop, the reference implementation;
* ``pool`` — the local ``ProcessPoolExecutor`` fan-out;
* ``sockets`` — a fault-tolerant TCP coordinator streaming tasks to
  ``python -m repro worker`` subprocesses, rescheduling the tasks of
  dead or timed-out workers.

All three are regression-tested byte-identical for the same grid.
Orthogonal layers that compose with any backend:

* :mod:`~repro.harness.exec.schedule` — cost-aware dispatch
  (expensive tasks first; prior-artifact ``events`` telemetry as the
  cost oracle when available);
* :mod:`~repro.harness.exec.checkpoint` — journal finished points and
  resume interrupted sweeps.

Most callers go through the stable facade
:func:`repro.harness.runner.execute`; this package is the extension
surface.
"""

from repro.harness.exec.base import (
    Executor,
    create,
    get,
    names,
    register,
    unregister,
)
from repro.harness.exec.checkpoint import Checkpoint, run_with_checkpoint
from repro.harness.exec.schedule import (
    dispatch_order,
    load_cost_hints,
    predicted_cost,
)

# Importing the backend modules registers them.
from repro.harness.exec.serial import SerialExecutor
from repro.harness.exec.pool import PoolExecutor
from repro.harness.exec.sockets import SocketExecutor

__all__ = [
    "Checkpoint",
    "Executor",
    "PoolExecutor",
    "SerialExecutor",
    "SocketExecutor",
    "create",
    "dispatch_order",
    "get",
    "load_cost_hints",
    "names",
    "predicted_cost",
    "register",
    "run_with_checkpoint",
    "unregister",
]
