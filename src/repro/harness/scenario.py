"""Declarative scenarios: one frozen spec from protocol to metrics.

A :class:`ScenarioSpec` composes everything one simulated study needs —
protocol (any plugin registered in :mod:`repro.protocols`), config
overrides, an open-loop workload with optional bursts, a fault
schedule, network conditions and duration/seed — as a frozen,
picklable value.  Specs run one-off (:func:`run_scenario`), as a
seed grid over the multiprocessing runner (:func:`scenario_grid` +
:func:`repro.harness.runner.execute`), or from the command line::

    python -m repro scenario --list
    python -m repro scenario bursty-load
    python -m repro scenario my_scenario.toml --seeds 1,2,3 --jobs 4
    python -m repro scenario delay-surge-recovery --dump > spec.json

Spec files are JSON or TOML mirroring the dataclasses, e.g.::

    name = "surge-then-recover"
    protocol = "scr"
    duration = 4.0
    # optional: extra measurement probes (metrics namespaced
    # "<probe>.<metric>" in the result)
    probes = ["order-latency"]

    [workload]
    rate = 150.0

    [[faults]]
    kind = "delay_surge"
    target = "pair:1"
    at = 1.0
    until = 1.8
    factor = 40000.0

The built-in scenarios (:data:`BUILTIN_SCENARIOS`) are deliberately
*non-paper* workloads — bursty load, cascading pair failures, false
suspicion with recovery, a closed SMR loop — proving the API reaches
studies the four figures never ran.
"""

from __future__ import annotations

import dataclasses
import json
import sys
from dataclasses import dataclass, field, fields, replace
from pathlib import Path

import repro.harness.probes as probe_registry
import repro.protocols as protocols
from repro.errors import ConfigError
from repro.harness.cluster import Cluster, build_cluster
from repro.harness.metrics import (
    collect_latencies,
    failover_latency,
    latency_stats,
    throughput_per_process,
)
from repro.harness.population import (
    ClassSpec,
    EnvelopeSpec,
    PopulationSpec,
    population_from_dict,
    population_to_dict,
)
from repro.harness.probes import Probe, ProbeContext
from repro.harness.runner import resolve_calibration
from repro.harness.workload import (
    AggregatedWorkload,
    OpenLoopWorkload,
    saturating_rate,
)
from repro.sim.trace import Tracer

# ----------------------------------------------------------------------
# Spec dataclasses (frozen, picklable, hashable)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BurstSpec:
    """One extra open-loop burst on top of the base workload."""

    at: float
    duration: float
    rate: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigError("burst 'at' must be >= 0")
        if self.duration <= 0 or self.rate <= 0:
            raise ConfigError("burst duration and rate must be positive")


@dataclass(frozen=True)
class WorkloadSpec:
    """Open-loop client load.

    ``rate`` is aggregate requests/second; ``None`` derives the
    saturating rate for the scenario's batching interval (the paper's
    keep-every-batch-full pressure).  ``duration`` defaults to the
    scenario duration.  ``bursts`` add further open-loop phases, each
    drawing from its own RNG stream so phases compose independently.
    """

    rate: float | None = None
    duration: float | None = None
    spacing: str = "poisson"
    headroom: float = 1.3
    bursts: tuple[BurstSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.spacing not in ("poisson", "uniform"):
            raise ConfigError(f"unknown spacing {self.spacing!r}")
        if self.rate is not None and self.rate <= 0:
            raise ConfigError("workload rate must be positive")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``kind`` names an entry of
    :data:`repro.failures.injector.FAULT_KINDS`; ``target`` is a
    process name, ``"coordinator"`` (resolved through the protocol
    plugin), or ``"pair:<rank>"`` for delay surges; ``until`` and
    ``factor`` apply to ``delay_surge`` only.
    """

    kind: str
    target: str = "coordinator"
    at: float = 0.0
    until: float | None = None
    factor: float | None = None

    def params(self) -> dict[str, float]:
        """The kind-specific constructor parameters that were set."""
        out: dict[str, float] = {}
        if self.until is not None:
            out["until"] = self.until
        if self.factor is not None:
            out["factor"] = self.factor
        return out


@dataclass(frozen=True)
class NetSpec:
    """Network/testbed conditions: a named calibration profile (see
    :data:`repro.harness.runner.CALIBRATION_PROFILES`)."""

    calibration: str = "paper"


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, runnable experiment description."""

    name: str
    protocol: str = "sc"
    f: int = 2
    scheme: str = "md5-rsa1024"
    batching_interval: float = 0.100
    duration: float = 3.0
    drain: float = 2.0
    seed: int = 1
    n_clients: int = 2
    workload: WorkloadSpec = WorkloadSpec()
    #: Aggregated population model (see :mod:`repro.harness.population`):
    #: when set, the per-client workload is replaced by one merged
    #: arrival stream with client ids sampled at delivery time, so
    #: scenario cost is O(events) regardless of ``population.clients``.
    population: PopulationSpec | None = None
    faults: tuple[FaultSpec, ...] = ()
    net: NetSpec = NetSpec()
    config: tuple[tuple[str, object], ...] = ()
    #: Extra measurement probes (registered names) attached to the run;
    #: their metrics join :meth:`ScenarioResult.metrics` namespaced as
    #: ``<probe>.<metric>``.  The built-in scenario measurement always
    #: runs.
    probes: tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("scenario needs a name")
        if self.duration <= 0:
            raise ConfigError("scenario duration must be positive")
        if self.drain < 0:
            raise ConfigError("scenario drain must be >= 0")
        # Normalise the override order so semantically identical specs
        # compare (and round-trip) equal however they were written.
        object.__setattr__(self, "config", tuple(sorted(self.config)))
        # Unknown probe names fail here, at spec construction — long
        # before a grid of them reaches a worker pool.
        object.__setattr__(
            self, "probes", probe_registry.validate_names(self.probes)
        )
        if self.population is not None:
            if self.workload.bursts:
                raise ConfigError(
                    "population workloads model load phases with rate "
                    "envelopes, not bursts"
                )
            if dict(self.config).get("send_replies"):
                raise ConfigError(
                    "population workloads sample client ids at delivery "
                    "time; send_replies needs addressable per-client "
                    "actors (drop send_replies or the population block)"
                )

    def with_(self, **changes) -> "ScenarioSpec":
        """A copy with the given fields replaced (grid helper)."""
        return replace(self, **changes)

    def config_overrides(self) -> dict[str, object]:
        """Extra :class:`ProtocolConfig` fields as a mapping."""
        return dict(self.config)


# ----------------------------------------------------------------------
# Dict / JSON / TOML conversion
# ----------------------------------------------------------------------


def _build(cls, data: dict, where: str):
    """Construct a spec dataclass from a mapping, rejecting unknown
    keys with a message naming the valid ones."""
    if not isinstance(data, dict):
        raise ConfigError(f"{where} must be a table/object, got {type(data).__name__}")
    allowed = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise ConfigError(
            f"unknown {where} field(s) {unknown}; allowed: {sorted(allowed)}"
        )
    return cls(**data)


def spec_from_dict(data: dict) -> ScenarioSpec:
    """Build a :class:`ScenarioSpec` from plain data (JSON/TOML shape)."""
    data = dict(data)
    workload = data.pop("workload", None)
    if workload is not None:
        workload = dict(workload)
        bursts = workload.pop("bursts", ())
        workload["bursts"] = tuple(
            _build(BurstSpec, burst, "workload burst") for burst in bursts
        )
        data["workload"] = _build(WorkloadSpec, workload, "workload")
    faults = data.pop("faults", None)
    if faults is not None:
        data["faults"] = tuple(_build(FaultSpec, fault, "fault") for fault in faults)
    net = data.pop("net", None)
    if net is not None:
        data["net"] = _build(NetSpec, net, "net")
    population = data.pop("population", None)
    if population is not None:
        data["population"] = population_from_dict(population)
    overrides = data.pop("config", None)
    if overrides is not None:
        if not isinstance(overrides, dict):
            raise ConfigError("scenario 'config' must be a table of overrides")
        data["config"] = tuple(sorted(overrides.items()))
    selected = data.pop("probes", None)
    if selected is not None:
        if isinstance(selected, str) or not isinstance(selected, (list, tuple)):
            raise ConfigError("scenario 'probes' must be an array of names")
        data["probes"] = tuple(selected)
    return _build(ScenarioSpec, data, "scenario")


def spec_to_dict(spec: ScenarioSpec) -> dict:
    """The plain-data form of a spec (inverse of :func:`spec_from_dict`)."""
    data = dataclasses.asdict(spec)
    data["workload"]["bursts"] = [dict(b) for b in _asdicts(spec.workload.bursts)]
    data["faults"] = [
        {k: v for k, v in fault.items() if v is not None}
        for fault in _asdicts(spec.faults)
    ]
    data["config"] = spec.config_overrides()
    data["probes"] = list(spec.probes)
    if spec.population is not None:
        data["population"] = population_to_dict(spec.population)
    # Drop defaults that only add noise to dumped specs.
    if spec.population is None:
        del data["population"]
    if not spec.probes:
        del data["probes"]
    if spec.workload.rate is None:
        del data["workload"]["rate"]
    if spec.workload.duration is None:
        del data["workload"]["duration"]
    return data


def _asdicts(items) -> list[dict]:
    return [dataclasses.asdict(item) for item in items]


def dump_spec(spec: ScenarioSpec) -> str:
    """The spec as pretty JSON (a ready-to-edit spec file)."""
    return json.dumps(spec_to_dict(spec), indent=2, sort_keys=False)


def load_spec(path: str | Path) -> ScenarioSpec:
    """Load a spec file; the suffix picks the format (.json/.toml)."""
    path = Path(path)
    if not path.exists():
        raise ConfigError(f"scenario file not found: {path}")
    if path.suffix == ".toml":
        import tomllib

        try:
            data = tomllib.loads(path.read_text())
        except tomllib.TOMLDecodeError as exc:
            raise ConfigError(f"bad TOML in {path}: {exc}") from None
    elif path.suffix == ".json":
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ConfigError(f"bad JSON in {path}: {exc}") from None
    else:
        raise ConfigError(
            f"unknown scenario file type {path.suffix!r} (use .json or .toml)"
        )
    return spec_from_dict(data)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------

#: Trace kinds scenario metrics read (keeps long runs memory-bounded).
_WANTED_KINDS = frozenset({
    "batch_formed",
    "order_committed",
    "fail_signal_emitted",
    "failover_complete",
    "backlog_sent",
    "view_change_sent",
    "install_committed",
    "coordinator_installed",
    "view_installed",
    "pair_recovered",
    "went_dumb",
    "value_domain_failure",
    "fault_injected",
    "surge_injected",
})


@dataclass(frozen=True)
class ScenarioResult:
    """Deterministic outcome of one scenario run."""

    name: str
    protocol: str
    scheme: str
    f: int
    seed: int
    duration: float
    requests_issued: int
    requests_committed: int
    batches_measured: int
    latency_mean: float
    latency_p50: float
    latency_p95: float
    throughput: float
    failovers: int
    failover_latency: float
    view_changes: int
    recoveries: int
    safety_ok: bool
    #: Simulator events processed — deterministic harness telemetry,
    #: deliberately excluded from :meth:`metrics` so artifacts' gated
    #: metric dictionaries stay byte-identical across harness changes.
    events_processed: int = 0
    #: Probes the spec attached, and their finalized metrics keyed as
    #: ``<probe>.<metric>`` (namespaced so a probe can never collide
    #: with — or silently shadow — a built-in scenario metric).
    probes: tuple[str, ...] = ()
    probe_metrics: tuple[tuple[str, float], ...] = ()
    #: Fingerprint of the seeded population arrival stream (empty for
    #: per-client workloads).  Like ``events_processed`` it stays out
    #: of :meth:`metrics`; the live driver reproduces the same digest
    #: from the same seed, proving sim/live stream identity.
    stream_digest: str = ""

    def metrics(self) -> dict[str, float]:
        """Flat numeric view (artifact/runner shape)."""
        out = {
            "requests_issued": float(self.requests_issued),
            "requests_committed": float(self.requests_committed),
            "batches_measured": float(self.batches_measured),
            "latency_mean": self.latency_mean,
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "throughput": self.throughput,
            "failovers": float(self.failovers),
            "failover_latency": self.failover_latency,
            "view_changes": float(self.view_changes),
            "recoveries": float(self.recoveries),
            "safety_ok": 1.0 if self.safety_ok else 0.0,
        }
        out.update(self.probe_metrics)
        return out


def build_scenario(spec: ScenarioSpec) -> tuple[Cluster, list]:
    """Materialise a spec: cluster built, workloads installed, faults
    armed — ready for ``cluster.start()``.

    With a ``population`` block the workload list holds a single
    :class:`~repro.harness.workload.AggregatedWorkload` (no per-client
    actors are built beyond the spec's ``n_clients``, which population
    runs keep at the 2-client floor purely for cluster wiring)."""
    plugin = protocols.get(spec.protocol)
    config = plugin.configure(
        scheme=spec.scheme,
        f=spec.f,
        batching_interval=spec.batching_interval,
        **spec.config_overrides(),
    )
    cluster = build_cluster(
        spec.protocol,
        config=config,
        calibration=resolve_calibration(spec.net.calibration),
        seed=spec.seed,
        n_clients=spec.n_clients,
    )
    # Replace the tracer before start() so the keep-filter covers
    # everything the run emits; any kinds the spec's probes declare
    # are retained on top of the scenario-measurement set.
    cluster.sim.trace = Tracer(
        keep_kinds=_WANTED_KINDS | probe_registry.kinds_union(spec.probes)
    )

    w = spec.workload
    rate = (
        w.rate
        if w.rate is not None
        else saturating_rate(
            config.batch_size_bytes,
            config.request_bytes,
            config.batching_interval,
            headroom=w.headroom,
        )
    )
    if spec.population is not None:
        workloads: list = [
            AggregatedWorkload(
                cluster,
                spec.population,
                rate=rate,
                duration=w.duration if w.duration is not None else spec.duration,
            )
        ]
    else:
        workloads = [
            OpenLoopWorkload(
                cluster,
                rate=rate,
                duration=w.duration if w.duration is not None else spec.duration,
                spacing=w.spacing,
            )
        ]
        workloads.extend(
            OpenLoopWorkload(
                cluster,
                rate=burst.rate,
                duration=burst.duration,
                start=burst.at,
                spacing=w.spacing,
                stream=f"workload:burst{i}",
            )
            for i, burst in enumerate(w.bursts, start=1)
        )
    for workload in workloads:
        workload.install()

    for fault in spec.faults:
        cluster.injector.inject_named(
            cluster, fault.kind, fault.target, at=fault.at, **fault.params()
        )
    return cluster, workloads


def _attach_probes(spec: ScenarioSpec, cluster: Cluster) -> tuple[Probe, ...]:
    """Instantiate the spec's probes against a lenient scenario context
    (no warm-up discard, no sample floor: a scenario without, say, a
    fail-over episode reports zeros rather than failing the run)."""
    context = ProbeContext(
        protocol=spec.protocol,
        scheme=spec.scheme,
        f=spec.f,
        seed=spec.seed,
        batching_interval=spec.batching_interval,
        window_start=0.0,
        window_end=spec.duration,
        label=f"scenario {spec.name!r}",
    )
    probes = probe_registry.create_all(spec.probes, context)
    for probe in probes:
        probe.attach(cluster.sim.trace)
    return probes


def run_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Run a spec end-to-end and extract its metrics."""
    cluster, workloads = build_scenario(spec)
    probes = _attach_probes(spec, cluster)
    cluster.start()
    cluster.run(until=spec.duration + spec.drain)
    digest = next(
        (w.stream_digest() for w in workloads if isinstance(w, AggregatedWorkload)),
        "",
    )
    return _measure(spec, cluster, issued=sum(w.issued for w in workloads),
                    probes=probes, stream_digest=digest)


def _measure(
    spec: ScenarioSpec, cluster: Cluster, issued: int,
    probes: tuple[Probe, ...] = (),
    stream_digest: str = "",
) -> ScenarioResult:
    trace = cluster.sim.trace
    samples = collect_latencies(trace)
    if samples:
        stats = latency_stats(samples)
        latency_mean, latency_p50, latency_p95 = stats.mean, stats.p50, stats.p95
        batches = stats.count
    else:
        latency_mean = latency_p50 = latency_p95 = 0.0
        batches = 0

    committed_per_actor: dict[str, int] = {}
    for record in trace.of_kind("order_committed"):
        actor = record.fields.get("actor", "?")
        committed_per_actor[actor] = (
            committed_per_actor.get(actor, 0) + record.fields["n_requests"]
        )
    committed = max(committed_per_actor.values(), default=0)

    signals = trace.of_kind("fail_signal_emitted")
    completes = trace.of_kind("failover_complete")
    fail_latency = failover_latency(trace) if signals and completes else 0.0

    return ScenarioResult(
        name=spec.name,
        protocol=spec.protocol,
        scheme=cluster.plugin.reported_scheme(spec.scheme),
        f=spec.f,
        seed=spec.seed,
        duration=spec.duration,
        requests_issued=issued,
        requests_committed=committed,
        batches_measured=batches,
        latency_mean=latency_mean,
        latency_p50=latency_p50,
        latency_p95=latency_p95,
        throughput=throughput_per_process(trace, 0.0, spec.duration),
        failovers=len(completes),
        failover_latency=fail_latency,
        view_changes=len(trace.of_kind("view_installed")),
        recoveries=len(trace.of_kind("pair_recovered")),
        safety_ok=_prefixes_agree(cluster),
        events_processed=cluster.sim.events_processed,
        probes=tuple(probe.name for probe in probes),
        probe_metrics=tuple(
            (f"{probe.name}.{metric}", float(value))
            for probe in probes
            for metric, value in probe.finalize().items()
        ),
        stream_digest=stream_digest,
    )


def _prefixes_agree(cluster: Cluster) -> bool:
    """Safety check: committed histories agree on their common prefix."""
    histories = list(cluster.committed_histories().values())
    if not histories:
        return True
    shortest = min(len(h) for h in histories)
    reference = histories[0][:shortest]
    return all(history[:shortest] == reference for history in histories)


# ----------------------------------------------------------------------
# Runner integration
# ----------------------------------------------------------------------


def scenario_grid(spec: ScenarioSpec, seeds=(1,)) -> list:
    """One :class:`~repro.harness.runner.SweepTask` per seed — the
    grid form the multiprocessing runner executes."""
    from repro.harness.runner import SCENARIO, SweepTask

    return [
        SweepTask(
            kind=SCENARIO,
            protocol=spec.protocol,
            scheme=spec.scheme,
            f=spec.f,
            seed=seed,
            calibration=spec.net.calibration,
            scenario=spec.with_(seed=seed),
        )
        for seed in seeds
    ]


# ----------------------------------------------------------------------
# Built-in scenarios (non-paper workloads)
# ----------------------------------------------------------------------

BUILTIN_SCENARIOS: dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec(
            name="bursty-load",
            protocol="sc",
            duration=4.0,
            drain=2.0,
            workload=WorkloadSpec(
                rate=120.0,
                bursts=(
                    BurstSpec(at=1.0, duration=0.6, rate=400.0),
                    BurstSpec(at=2.4, duration=0.6, rate=400.0),
                ),
            ),
            description="open-loop base load with two 400 req/s bursts "
                        "(latency under pressure spikes, not saturation)",
        ),
        ScenarioSpec(
            name="cascading-pair-failures",
            protocol="sc",
            duration=5.0,
            drain=3.0,
            workload=WorkloadSpec(rate=150.0),
            faults=(
                FaultSpec(kind="wrong_digest", target="p1", at=1.0),
                FaultSpec(kind="wrong_digest", target="p2", at=2.5),
            ),
            description="two successive value-domain faults: coordination "
                        "cascades pair 1 -> pair 2 -> unpaired p3",
        ),
        ScenarioSpec(
            name="delay-surge-recovery",
            protocol="scr",
            duration=4.0,
            drain=4.0,
            workload=WorkloadSpec(rate=150.0),
            faults=(
                FaultSpec(
                    kind="delay_surge", target="pair:1",
                    at=1.0, until=1.8, factor=40000.0,
                ),
            ),
            description="a delay surge falsely implicates pair 1; SCR view-"
                        "changes past it and the pair later recovers",
        ),
        ScenarioSpec(
            name="smr-closed-loop",
            protocol="sc",
            duration=3.0,
            drain=2.0,
            workload=WorkloadSpec(rate=150.0),
            config=(("checkpoint_interval", 8), ("send_replies", True)),
            description="full SMR loop: execution replies to clients plus "
                        "periodic checkpoint garbage collection",
        ),
        ScenarioSpec(
            name="diurnal-day",
            protocol="sc",
            duration=6.0,
            drain=2.0,
            workload=WorkloadSpec(rate=250.0),
            population=PopulationSpec(
                clients=1_000_000,
                id_distribution="zipf",
                zipf_s=1.1,
                envelope=EnvelopeSpec(points=(
                    (0.0, 0.35), (1.5, 1.0), (3.0, 0.55),
                    (4.5, 1.0), (6.0, 0.25),
                )),
            ),
            probes=("client-fairness", "queue-depth", "crypto-cost"),
            description="a compressed day over 10^6 Zipf clients: two "
                        "diurnal peaks via a thinned rate envelope",
        ),
        ScenarioSpec(
            name="flash-crowd",
            protocol="sc",
            duration=5.0,
            drain=3.0,
            workload=WorkloadSpec(rate=200.0),
            population=PopulationSpec(
                clients=100_000,
                id_distribution="zipf",
                zipf_s=1.2,
                classes=(
                    ClassSpec(name="steady", share=3.0, spacing="poisson"),
                    ClassSpec(name="crowd", share=1.0, spacing="pareto",
                              pareto_alpha=1.5, pareto_cap=50.0),
                ),
                envelope=EnvelopeSpec(points=(
                    (0.0, 0.3), (1.8, 0.3), (2.0, 3.0),
                    (2.8, 3.0), (3.2, 0.3),
                )),
            ),
            probes=("client-fairness", "queue-depth", "crypto-cost"),
            description="steady Poisson base plus a heavy-tailed class; a "
                        "10x flash-crowd spike between t=2.0 and t=2.8",
        ),
    )
}


def resolve_spec(target: str) -> ScenarioSpec:
    """A builtin scenario by name, or a spec loaded from a file path."""
    if target in BUILTIN_SCENARIOS:
        return BUILTIN_SCENARIOS[target]
    if target.endswith((".json", ".toml")):
        return load_spec(target)
    raise ConfigError(
        f"unknown scenario {target!r}; builtins: "
        f"{tuple(BUILTIN_SCENARIOS)} (or pass a .json/.toml spec file)"
    )


# ----------------------------------------------------------------------
# CLI (`python -m repro scenario ...`)
# ----------------------------------------------------------------------


def add_scenario_arguments(parser) -> None:
    """Attach the scenario subcommand's arguments."""
    parser.add_argument(
        "target", nargs="?", default=None,
        help="builtin scenario name or a .json/.toml spec file",
    )
    parser.add_argument(
        "--list", action="store_true", help="list built-in scenarios"
    )
    parser.add_argument(
        "--dump", action="store_true",
        help="print the resolved spec as JSON and exit (spec-file template)",
    )
    parser.add_argument("--seed", type=int, default=None,
                        help="override the spec's seed")
    parser.add_argument("--probes", default=None, metavar="P1,P2",
                        help="attach these measurement probes (overrides "
                             "the spec's own selection; see `repro probes`)")
    parser.add_argument("--seeds", default=None,
                        help="comma-separated seeds: run a grid via the runner")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for --seeds grids")
    from repro.harness import exec as exec_backends

    parser.add_argument("--executor", default=None,
                        choices=exec_backends.names(),
                        help="execution backend for --seeds grids "
                             "(default: serial for --jobs 1, pool otherwise)")
    parser.add_argument("--resume", default=None, metavar="JOURNAL",
                        help="checkpoint journal for --seeds grids: "
                             "completed seeds are skipped on re-run")
    parser.add_argument("--bind", default=None, metavar="HOST:PORT",
                        help="sockets executor: listen on this interface "
                             "so workers can join from other hosts")
    parser.add_argument("--spawn", type=int, default=None, metavar="N",
                        help="sockets executor: local workers to spawn "
                             "(0 = wait for external workers only)")


def cmd_scenario(args) -> int:
    """Entry point for ``python -m repro scenario``."""
    from repro.harness.report import render_table

    if args.list or args.target is None:
        rows = [
            (spec.name, spec.protocol, f"{spec.duration:g}", spec.description)
            for spec in BUILTIN_SCENARIOS.values()
        ]
        print(render_table(
            "Built-in scenarios (python -m repro scenario <name>)",
            ("name", "protocol", "duration (s)", "description"),
            rows,
        ))
        return 0

    spec = resolve_spec(args.target)
    if args.seed is not None:
        spec = spec.with_(seed=args.seed)
    if args.probes is not None:
        from repro.harness.experiments import _parse_probes

        spec = spec.with_(probes=_parse_probes(args.probes) or ())
    if args.dump:
        print(dump_spec(spec))
        return 0

    if args.seeds:
        from repro.harness.experiments import _executor_options
        from repro.harness.runner import (
            default_executor,
            execute,
            print_progress,
        )

        try:
            seeds = tuple(int(s) for s in args.seeds.split(",") if s.strip())
        except ValueError:
            raise ConfigError(
                f"--seeds wants comma-separated integers, got {args.seeds!r}"
            ) from None
        if not seeds:
            raise ConfigError("--seeds names no seeds")
        tasks = scenario_grid(spec, seeds=seeds)
        executor = args.executor or default_executor(args.jobs, len(tasks))
        results = [p.result for p in execute(
            tasks, jobs=args.jobs,
            progress=print_progress,
            executor=executor,
            checkpoint=args.resume,
            executor_options=_executor_options(args, executor),
        )]
    else:
        results = [run_scenario(spec)]

    print(f"scenario {spec.name!r}: protocol={spec.protocol} f={spec.f} "
          f"scheme={spec.scheme} duration={spec.duration:g}s", file=sys.stderr)
    rows = [
        (
            str(r.seed),
            str(r.requests_issued),
            str(r.requests_committed),
            f"{r.latency_mean * 1e3:.1f}",
            f"{r.throughput:.0f}",
            str(r.failovers),
            str(r.recoveries),
            "ok" if r.safety_ok else "VIOLATED",
        )
        for r in results
    ]
    print(render_table(
        f"Scenario {spec.name!r}",
        ("seed", "issued", "committed", "latency (ms)", "req/s/proc",
         "failovers", "recoveries", "safety"),
        rows,
    ))
    return 0 if all(r.safety_ok for r in results) else 1
