"""The paper's three measurements as streaming probes (Section 5).

Each probe re-implements one post-hoc extractor from
:mod:`repro.harness.metrics` over incremental state — a handful of
dicts of floats instead of a retained trace — and is regression-tested
byte-identical against it (``tests/harness/probes/test_equivalence``):
iteration orders, aggregation order and the shared
:class:`~repro.harness.metrics.LatencyStats` numerics are preserved
exactly, so a sweep measured by probes reproduces the committed
baselines bit for bit.
"""

from __future__ import annotations

from repro.harness.metrics import LatencySample, LatencyStats
from repro.harness.probes.base import MetricSeries, Probe, ProbeContext
from repro.harness.probes.registry import register
from repro.sim.trace import TraceRecord


@register
class OrderLatencyProbe(Probe):
    """Order latency per batch: ``batch_formed`` to the earliest
    ``order_committed`` with the same (rank, batch id), aggregated
    with the paper's warm-up discard and batch cap."""

    name = "order-latency"
    kinds = frozenset({"batch_formed", "order_committed"})
    description = (
        "per-batch order latency (batch formed -> first commit), "
        "mean/p50/p95 over the measured window"
    )
    provides = ("latency_mean", "latency_p50", "latency_p95",
                "batches_measured")
    directions = {
        "latency_mean": "lower",
        "latency_p50": "lower",
        "latency_p95": "lower",
    }

    def __init__(self, context: ProbeContext) -> None:
        super().__init__(context)
        self._formed: dict[tuple[int, int], float] = {}
        self._first_commit: dict[tuple[int, int], float] = {}

    def consume(self, record: TraceRecord) -> None:
        key = (record.fields["rank"], record.fields["batch_id"])
        if record.kind == "batch_formed":
            self._formed.setdefault(key, record.time)
        else:
            prior = self._first_commit.get(key)
            if prior is None or record.time < prior:
                self._first_commit[key] = record.time

    def samples(self) -> list[LatencySample]:
        """Matched samples in formation order (collect_latencies's
        shape, built from streamed state)."""
        first_commit = self._first_commit
        samples = [
            LatencySample(rank=key[0], batch_id=key[1], formed_at=t0,
                          first_commit_at=first_commit[key])
            for key, t0 in self._formed.items()
            if key in first_commit
        ]
        samples.sort(key=lambda s: s.formed_at)
        return samples

    def _window(self) -> list[LatencySample]:
        ctx = self.context
        samples = self.samples()
        if len(samples) < ctx.min_samples:
            raise self._fail(f"too few batches measured ({len(samples)})")
        # Deeply saturated points commit only a fraction of their
        # batches within the run; keep at least ``min_samples``.
        skip = min(ctx.warmup_batches, max(0, len(samples) - ctx.min_samples))
        window = samples[skip:]
        if ctx.cap is not None:
            window = window[:ctx.cap]
        return window

    def finalize(self) -> dict[str, float]:
        window = self._window()
        if not window:  # min_samples == 0: report zeros, don't raise
            return {"latency_mean": 0.0, "latency_p50": 0.0,
                    "latency_p95": 0.0, "batches_measured": 0.0}
        stats = LatencyStats.from_values([s.latency for s in window])
        return {
            "latency_mean": stats.mean,
            "latency_p50": stats.p50,
            "latency_p95": stats.p95,
            "batches_measured": float(stats.count),
        }

    def series(self) -> tuple[MetricSeries, ...]:
        return (MetricSeries(
            "order_latency",
            tuple((s.formed_at, s.latency) for s in self._window()),
        ),)


@register
class ThroughputProbe(Probe):
    """Committed requests per second per process, averaged across
    processes, inside the context's measurement window."""

    name = "throughput"
    kinds = frozenset({"order_committed"})
    description = (
        "committed requests/s per process (averaged) over the "
        "measurement window"
    )
    provides = ("throughput",)
    directions = {"throughput": "higher"}

    def __init__(self, context: ProbeContext) -> None:
        super().__init__(context)
        self._per_actor: dict[str, int] = {}

    def consume(self, record: TraceRecord) -> None:
        if not self.context.window_start <= record.time < self.context.window_end:
            return
        actor = record.fields.get("actor", "?")
        self._per_actor[actor] = (
            self._per_actor.get(actor, 0) + record.fields["n_requests"]
        )

    def finalize(self) -> dict[str, float]:
        ctx = self.context
        if ctx.window_end <= ctx.window_start:
            raise self._fail("empty throughput window")
        if not self._per_actor:
            return {"throughput": 0.0}
        duration = ctx.window_end - ctx.window_start
        rates = [count / duration for count in self._per_actor.values()]
        return {"throughput": sum(rates) / len(rates)}


@register
class FailoverProbe(Probe):
    """Fail-over latency (first fail-signal to the first completion at
    or after it) and the mean BackLog/ViewChange wire size inside the
    measured episode."""

    name = "failover"
    kinds = frozenset({
        "fail_signal_emitted", "failover_complete",
        "backlog_sent", "view_change_sent",
    })
    description = (
        "fail-over latency (fail-signal -> new-coordinator Start) and "
        "observed BackLog bytes"
    )
    provides = ("failover_latency", "observed_backlog_bytes")
    directions = {"failover_latency": "lower"}

    def __init__(self, context: ProbeContext) -> None:
        super().__init__(context)
        self._signals: list[float] = []
        self._completes: list[float] = []
        # Sizes kept per kind so the finalize-time mean sums in the
        # post-hoc order (backlog records first, then view changes).
        self._backlog: list[tuple[float, float]] = []
        self._view_change: list[tuple[float, float]] = []

    def consume(self, record: TraceRecord) -> None:
        if record.kind == "fail_signal_emitted":
            self._signals.append(record.time)
        elif record.kind == "failover_complete":
            self._completes.append(record.time)
        elif "size" in record.fields:
            pairs = (
                self._backlog if record.kind == "backlog_sent"
                else self._view_change
            )
            pairs.append((record.time, record.fields["size"]))

    def finalize(self) -> dict[str, float]:
        strict = self.context.min_samples >= 1
        if not self._signals or not self._completes:
            if strict:
                raise self._fail("trace contains no complete fail-over episode")
            return {"failover_latency": 0.0, "observed_backlog_bytes": 0.0}
        t0 = min(self._signals)
        after = [t for t in self._completes if t >= t0]
        if not after:
            if strict:
                raise self._fail("no fail-over completion after the first signal")
            return {"failover_latency": 0.0, "observed_backlog_bytes": 0.0}
        # The size average is restricted to the measured episode:
        # recovery messages sent after the first completion (later view
        # changes) would dilute the size axis of Figure 6.
        episode_end = self._completes[0]
        sizes = [
            size
            for pairs in (self._backlog, self._view_change)
            for time, size in pairs
            if time <= episode_end
        ]
        observed = sum(sizes) / len(sizes) if sizes else 0.0
        return {
            "failover_latency": min(after) - t0,
            "observed_backlog_bytes": observed,
        }
