"""The measurement-probe registry.

Maps probe names to :class:`~repro.harness.probes.base.Probe`
*classes* (instances are per-run), mirroring the protocol and executor
registries.  The paper's three probes register on package import; a
new probe registers with :func:`register` and is immediately
selectable from ``SweepTask(probes=...)``, scenario specs, every CLI
``--probes`` flag and ``python -m repro probes``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ConfigError
from repro.harness.probes.base import Probe, ProbeContext

_REGISTRY: dict[str, type[Probe]] = {}


def register(probe: type[Probe], *, replace: bool = False) -> type[Probe]:
    """Add a probe class under its ``name``; returns it, so it can be
    used as a decorator.  Duplicate names are an error unless
    ``replace=True`` (shadowing a builtin in tests)."""
    if not probe.name:
        raise ConfigError(f"probe class {probe!r} has no name")
    if probe.name in _REGISTRY and not replace:
        raise ConfigError(
            f"probe {probe.name!r} is already registered; "
            f"pass replace=True to override"
        )
    _REGISTRY[probe.name] = probe
    return probe


def unregister(name: str) -> None:
    """Remove a probe (primarily for test teardown)."""
    _REGISTRY.pop(name, None)


def get(name: str) -> type[Probe]:
    """Look up a probe class by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown probe {name!r}; known: {names()}"
        ) from None


def names() -> tuple[str, ...]:
    """Registered probe names, in registration order."""
    return tuple(_REGISTRY)


def all_probes() -> tuple[type[Probe], ...]:
    """Every registered probe class, in registration order."""
    return tuple(_REGISTRY.values())


def validate_names(selected: Iterable[str]) -> tuple[str, ...]:
    """Check every name resolves and none repeats; returns the tuple.

    Duplicates would only surface after a full simulation, as a
    self-collision in the merged metric map — reject them here, at
    selection time.
    """
    selected = tuple(selected)
    duplicates = sorted({name for name in selected if selected.count(name) > 1})
    if duplicates:
        raise ConfigError(f"probe selection repeats {duplicates}")
    for name in selected:
        get(name)
    return selected


def create_all(
    selected: Sequence[str], context: ProbeContext
) -> tuple[Probe, ...]:
    """Instantiate the named probes against one run's context."""
    return tuple(get(name)(context) for name in selected)


def kinds_union(selected: Iterable[str]) -> frozenset[str]:
    """Union of the named probes' declared trace kinds — the derived
    keep-filter for a run measured by exactly those probes."""
    kinds: set[str] = set()
    for name in selected:
        kinds |= get(name).kinds
    return frozenset(kinds)


def any_needs_digests(selected: Iterable[str]) -> bool:
    """Whether any named probe declares it reads digest/signature bytes
    (``Probe.needs_digests``) — the fast-crypto fallback condition."""
    return any(get(name).needs_digests for name in selected)


def metric_direction(metric: str) -> str | None:
    """Gate direction for a metric name, consulting probe declarations.

    Accepts both bare names (``latency_mean`` — scanned across every
    registered probe) and probe-qualified names (``order-latency.
    latency_mean`` — the namespaced form scenario probe metrics use).
    Returns ``None`` when no registered probe claims the metric.
    """
    probe_part, _, bare = metric.rpartition(".")
    if probe_part and probe_part in _REGISTRY:
        return dict(_REGISTRY[probe_part].directions).get(bare)
    for probe in _REGISTRY.values():
        direction = dict(probe.directions).get(metric)
        if direction is not None:
            return direction
    return None
