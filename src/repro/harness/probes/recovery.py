"""The ``recovery-timeline`` probe: failure detection and rejoin costs.

A live run with chaos or restarts leaves a trail of recovery records —
``peer_suspected`` / ``peer_restored`` from every node's
:class:`~repro.live.heartbeat.HeartbeatMonitor`, ``rejoin_started`` /
``rejoin_complete`` / ``catchup_applied`` from the restarted replica's
:class:`~repro.live.recovery.PrefixFetcher`, and ``quorum_lost`` /
``quorum_restored`` when the cluster parked.  This probe folds that
trail into the recovery timeline of the run: how fast failures were
detected, how long a rejoin took and how much state it moved, and how
long the cluster spent parked without a commit quorum.

All metrics are informational (no gate directions): recovery cost in a
live run is dominated by real wall-clock timers, not protocol quality,
so regressions there say nothing a baseline gate should act on.
"""

from __future__ import annotations

from repro.harness.probes.base import Probe, ProbeContext
from repro.harness.probes.registry import register
from repro.sim.trace import TraceRecord


@register
class RecoveryTimelineProbe(Probe):
    """Detection latency, rejoin duration/volume, quorum outage time."""

    name = "recovery-timeline"
    kinds = frozenset({
        "peer_suspected", "peer_restored",
        "rejoin_started", "rejoin_complete", "catchup_applied",
        "quorum_lost", "quorum_restored",
    })
    description = (
        "failure-detection latency, rejoin duration and transferred "
        "state, quorum-outage time (live recovery runs)"
    )
    provides = (
        "suspicions", "suspicions_cleared", "detection_latency_mean",
        "rejoins", "rejoin_duration_mean",
        "catchup_entries", "catchup_bytes",
        "quorum_losses", "quorum_outage_s",
    )
    directions: dict[str, str] = {}

    def __init__(self, context: ProbeContext) -> None:
        super().__init__(context)
        self._silences: list[float] = []
        self._restores = 0
        self._rejoin_durations: list[float] = []
        self._catchup_entries = 0
        self._catchup_bytes = 0
        self._quorum_losses = 0
        self._outages: list[float] = []

    def consume(self, record: TraceRecord) -> None:
        kind = record.kind
        fields = record.fields
        if kind == "peer_suspected":
            # The observed silence *is* the detection latency: the gap
            # between the peer's last frame and the suspicion sweep
            # that noticed it.
            self._silences.append(float(fields.get("silence", 0.0)))
        elif kind == "peer_restored":
            self._restores += 1
        elif kind == "rejoin_complete":
            self._rejoin_durations.append(float(fields.get("duration", 0.0)))
            self._catchup_entries += int(fields.get("entries", 0))
            self._catchup_bytes += int(fields.get("bytes", 0))
        elif kind == "catchup_applied":
            self._catchup_entries += int(fields.get("rows", 0))
        elif kind == "quorum_lost":
            self._quorum_losses += 1
        elif kind == "quorum_restored":
            self._outages.append(float(fields.get("outage", 0.0)))

    def finalize(self) -> dict[str, float]:
        def mean(values: list[float]) -> float:
            return sum(values) / len(values) if values else 0.0

        return {
            "suspicions": float(len(self._silences)),
            "suspicions_cleared": float(self._restores),
            "detection_latency_mean": mean(self._silences),
            "rejoins": float(len(self._rejoin_durations)),
            "rejoin_duration_mean": mean(self._rejoin_durations),
            "catchup_entries": float(self._catchup_entries),
            "catchup_bytes": float(self._catchup_bytes),
            "quorum_losses": float(self._quorum_losses),
            "quorum_outage_s": float(sum(self._outages)),
        }
