"""Feed recorded trace events through probes after the fact.

The simulation drivers attach probes *live*, streaming records as the
kernel emits them.  A real cluster cannot: each ``repro serve`` node
retains its own records (as plain ``(time, kind, fields)`` tuples in
its report frame) and the controller only sees them after the run.
:func:`replay_records` closes the gap — it rebuilds
:class:`~repro.sim.trace.TraceRecord` objects, streams them through a
freshly instantiated probe selection in time order, and finalizes to
the same :class:`~repro.harness.probes.base.ProbeReport` the simulated
drivers produce.  Live artifacts are therefore measured by *exactly*
the code that measures simulated ones, which is what makes
``repro compare --live`` a like-for-like comparison.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.harness.probes.base import ProbeContext, ProbeReport, merged_values
from repro.harness.probes.registry import create_all, validate_names
from repro.sim.trace import TraceRecord

#: One recorded event as reports carry it: ``(time, kind, fields)``.
RecordTuple = tuple[float, str, dict]


def as_records(rows: Iterable[RecordTuple]) -> list[TraceRecord]:
    """Rebuild :class:`TraceRecord` objects from report tuples."""
    return [
        TraceRecord(time=float(time), kind=str(kind), fields=dict(fields))
        for time, kind, fields in rows
    ]


def merge_node_records(
    per_node: dict[str, Iterable[RecordTuple]]
) -> list[TraceRecord]:
    """Merge several nodes' recordings into one time-ordered stream.

    Live nodes trace against a shared epoch, so a straight sort by
    timestamp reconstructs the cluster-wide event order (up to clock
    skew, which on one host is scheduler noise).  Ties break by node
    name for determinism.
    """
    merged: list[tuple[float, str, TraceRecord]] = []
    for node in sorted(per_node):
        for record in as_records(per_node[node]):
            merged.append((record.time, node, record))
    merged.sort(key=lambda item: (item[0], item[1]))
    return [record for _, _, record in merged]


def replay_records(
    records: Sequence[TraceRecord],
    probes: Sequence[str],
    context: ProbeContext,
) -> ProbeReport:
    """Stream ``records`` through the named probes; finalize a report.

    Records whose kind no selected probe declared are skipped, matching
    the keep-filter discipline of a live tracer.
    """
    selected = validate_names(probes)
    instances = create_all(selected, context)
    consumers: dict[str, list] = {}
    for probe in instances:
        for kind in probe.kinds:
            consumers.setdefault(kind, []).append(probe.consume)
    processed = 0
    for record in records:
        callbacks = consumers.get(record.kind)
        if not callbacks:
            continue
        processed += 1
        for callback in callbacks:
            callback(record)
    return ProbeReport(
        protocol=context.protocol,
        scheme=context.scheme,
        f=context.f,
        probes=selected,
        values=merged_values(instances),
        series=tuple(s for probe in instances for s in probe.series()),
        events_processed=processed,
    )
