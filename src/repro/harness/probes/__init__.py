"""Pluggable measurement probes.

The observation half of the harness, split out behind a registry
(mirroring :mod:`repro.protocols` and :mod:`repro.harness.exec`): a
:class:`~repro.harness.probes.base.Probe` declares the trace kinds it
needs, consumes records incrementally as the simulator emits them, and
finalizes to named scalar metrics (the per-point metric map of
artifact schema v3) plus optional
:class:`~repro.harness.probes.base.MetricSeries`.

The paper's three measurements register on import:

* ``order-latency`` — per-batch order latency (Figure 4);
* ``throughput`` — committed requests/s per process (Figure 5);
* ``failover`` — fail-over latency and BackLog bytes (Figure 6).

Experiments derive their tracer keep-filter from the union of the
selected probes' kinds, so a run retains nothing no probe wants.
Select probes per sweep point (``SweepTask(probes=...)``), per
scenario (``probes = [...]`` in a spec file), or from the CLI
(``--probes``); ``python -m repro probes`` lists what is registered.
"""

from repro.harness.probes.base import (
    MetricSeries,
    Probe,
    ProbeContext,
    ProbeReport,
    merged_values,
)
from repro.harness.probes.feed import (
    as_records,
    merge_node_records,
    replay_records,
)
from repro.harness.probes.registry import (
    any_needs_digests,
    all_probes,
    create_all,
    get,
    kinds_union,
    metric_direction,
    names,
    register,
    unregister,
    validate_names,
)

# Importing the modules registers the paper's probes, the live
# recovery-timeline probe, and the population-scale probes.
from repro.harness.probes.paper import (
    FailoverProbe,
    OrderLatencyProbe,
    ThroughputProbe,
)
from repro.harness.probes.recovery import RecoveryTimelineProbe
from repro.harness.probes.scale import (
    ClientFairnessProbe,
    CryptoCostProbe,
    QueueDepthProbe,
)

__all__ = [
    "any_needs_digests",
    "ClientFairnessProbe",
    "CryptoCostProbe",
    "FailoverProbe",
    "MetricSeries",
    "OrderLatencyProbe",
    "Probe",
    "ProbeContext",
    "ProbeReport",
    "QueueDepthProbe",
    "RecoveryTimelineProbe",
    "ThroughputProbe",
    "all_probes",
    "as_records",
    "create_all",
    "merge_node_records",
    "replay_records",
    "get",
    "kinds_union",
    "merged_values",
    "metric_direction",
    "names",
    "register",
    "unregister",
    "validate_names",
]
