"""The :class:`Probe` protocol and the measurement value types.

A probe is one *measurement strategy* over a simulation run.  It
declares the trace kinds it needs (:attr:`Probe.kinds`), consumes
matching :class:`~repro.sim.trace.TraceRecord` objects **incrementally**
as the simulator emits them (attached through
:meth:`repro.sim.trace.Tracer.subscribe` with its kind set, so records
it never asked for cost it nothing), and finalizes to a named map of
scalar metrics plus optional :class:`MetricSeries`.

Because probes stream, the tracer no longer has to retain the records
a measurement reads: the experiment drivers derive the tracer's
keep-filter from the union of the selected probes' declared kinds, so
a long run's memory is bounded by probe *state* (a few dicts of
floats), not by its trace.

Probes are classes registered by name (:mod:`~repro.harness.probes.
registry`), mirroring the protocol and executor registries; instances
are per-run, constructed against a :class:`ProbeContext` carrying the
experiment parameters the paper's definitions need (measurement
window, warm-up discard, sample caps).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Mapping

from repro.errors import MetricsError
from repro.sim.trace import TraceRecord, Tracer


@dataclass(frozen=True)
class MetricSeries:
    """A named per-run series of ``(x, value)`` points (e.g. one
    latency sample per measured batch), for probes whose finalized
    scalars summarise something worth keeping in full."""

    name: str
    points: tuple[tuple[float, float], ...]


@dataclass(frozen=True)
class ProbeContext:
    """Run parameters a probe may finalize against.

    The drivers fill in what their experiment defines: the order
    experiment sets the throughput window to the arrival phase and the
    warm-up/cap discipline of the paper's 100-batch averages; the
    fail-over experiment needs none of that.  ``min_samples`` is the
    driver's validity floor — a probe that cannot reach it raises
    :class:`~repro.errors.MetricsError` naming ``label``.
    """

    protocol: str = ""
    scheme: str = ""
    f: int = 2
    seed: int = 1
    batching_interval: float = 0.0
    #: Measurement window for rate metrics, ``[window_start, window_end)``.
    window_start: float = 0.0
    window_end: float = 0.0
    #: Leading samples to discard (paper warm-up) and cap after discard.
    warmup_batches: int = 0
    cap: int | None = None
    #: Fewest samples for a valid measurement (0 = report zeros instead).
    min_samples: int = 0
    #: Human-readable point name for error messages.
    label: str = ""


class Probe(ABC):
    """One streaming measurement over a simulation run.

    Subclasses set :attr:`name` (registry key), :attr:`kinds` (trace
    kinds consumed — also what the driver's keep-filter retains),
    :attr:`description`, and :attr:`directions` mapping each emitted
    metric to ``"lower"``/``"higher"`` when the baseline gate should
    regress it (metrics absent from the map are informational).
    """

    #: Registry key; subclasses must override.
    name: str = ""
    #: Trace kinds this probe consumes.
    kinds: frozenset[str] = frozenset()
    #: One-line description for ``python -m repro probes``.
    description: str = ""
    #: Metric names :meth:`finalize` emits (listings and docs).
    provides: tuple[str, ...] = ()
    #: Gate direction per emitted metric: ``"lower"``/``"higher"``
    #: (metrics absent here are informational, never gated).
    directions: Mapping[str, str] = {}
    #: True when the probe reads actual digest or signature *bytes*
    #: (from trace records or message bodies) rather than just costs
    #: and timings.  Selecting such a probe makes the harness fall back
    #: from fast-crypto mode to real byte-level encoding for the run;
    #: the paper's probes all measure timings, so the default is False.
    needs_digests: bool = False
    #: True when the probe is a scale-only measurement whose kinds are
    #: emitted on per-event hot paths (per request, per batch tick, per
    #: crypto op).  Emitters of such kinds must guard with
    #: :meth:`~repro.sim.trace.Tracer.wants` before building field
    #: values, so unmeasured runs pay one method call per event, not a
    #: record construction — the static pass (``repro lint``, RPR003)
    #: reads this marker and enforces the guard tree-wide.
    scale_only: bool = False

    def __init__(self, context: ProbeContext) -> None:
        self.context = context

    def attach(self, tracer: Tracer) -> None:
        """Subscribe to the kinds this probe declared."""
        tracer.subscribe(self.consume, kinds=self.kinds)

    @abstractmethod
    def consume(self, record: TraceRecord) -> None:
        """Ingest one record (called only for declared kinds)."""

    @abstractmethod
    def finalize(self) -> dict[str, float]:
        """The named scalar metrics, once the run is over."""

    def series(self) -> tuple[MetricSeries, ...]:
        """Optional named series alongside the scalars (default none)."""
        return ()

    def _fail(self, reason: str) -> MetricsError:
        label = self.context.label or "this run"
        return MetricsError(f"probe {self.name!r}: {reason} for {label}")


@dataclass(frozen=True)
class ProbeReport:
    """The generic result of one probe-measured experiment run.

    ``values`` is the merged ``(metric, value)`` map the selected
    probes emitted, in probe order — the per-point metric map of
    artifact schema v3.  Metric names are also readable as attributes
    (``report.latency_mean``), so series assembly and existing callers
    keep working against any probe selection.  Frozen and built from
    tuples: reports hash, compare and pickle like every other result
    value in the harness.
    """

    protocol: str
    scheme: str
    f: int
    probes: tuple[str, ...]
    values: tuple[tuple[str, float], ...]
    series: tuple[MetricSeries, ...] = ()
    events_processed: int = 0

    def metrics(self) -> dict[str, float]:
        """The measured quantities, flattened for artifacts."""
        return dict(self.values)

    def value(self, name: str) -> float:
        """One metric by name; :class:`MetricsError` if absent."""
        for key, value in self.values:
            if key == name:
                return value
        raise MetricsError(
            f"no metric {name!r} in this report (probes {self.probes}; "
            f"metrics {tuple(key for key, _ in self.values)})"
        )

    def __getattr__(self, name: str):
        # Attribute sugar for metric names (report.latency_mean).  Only
        # reached for names that are not real attributes; anything
        # underscored is left to the normal protocol so pickling and
        # dataclass internals never detour through the metric map.
        if name.startswith("_"):
            raise AttributeError(name)
        try:
            values = object.__getattribute__(self, "values")
        except AttributeError:
            raise AttributeError(name) from None
        for key, value in values:
            if key == name:
                return value
        raise AttributeError(
            f"{type(self).__name__} has no attribute or metric {name!r}"
        )


def merged_values(
    probes: tuple[Probe, ...]
) -> tuple[tuple[str, float], ...]:
    """Finalize every probe and merge the named metrics, rejecting
    collisions (two probes must not claim the same metric name)."""
    values: list[tuple[str, float]] = []
    seen: dict[str, str] = {}
    for probe in probes:
        for key, value in probe.finalize().items():
            if key in seen:
                raise MetricsError(
                    f"probes {seen[key]!r} and {probe.name!r} both emit "
                    f"metric {key!r}"
                )
            seen[key] = probe.name
            values.append((key, float(value)))
    return tuple(values)
