"""Probes that only make sense at population scale.

Companions to the aggregated workload engine
(:mod:`repro.harness.population`): once a scenario offers load from
10^5–10^6 sampled client ids, three questions open up that the paper's
per-batch measurements cannot answer —

* ``client-fairness`` — is commit latency *shared fairly* across the
  population, or do Zipf-head clients crowd out the tail?  Jain's
  fairness index plus dispersion of per-client mean latencies.
* ``queue-depth`` — how deep does the coordinator's unordered queue
  run under diurnal/flash-crowd envelopes?  Mean/p95/max occupancy
  and a full time series.
* ``crypto-cost`` — where do the signature cycles go?  Sign/verify
  counts and CPU seconds attributed per protocol phase (ordering,
  failover, checkpointing, replies).

All three stream: memory is bounded by live per-client aggregates and
batch bookkeeping, never by the trace.
"""

from __future__ import annotations

from repro.harness.probes.base import MetricSeries, Probe, ProbeContext
from repro.harness.probes.registry import register
from repro.sim.trace import TraceRecord


def _percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile over pre-sorted values."""
    if not ordered:
        return 0.0
    index = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
    return ordered[index]


@register
class ClientFairnessProbe(Probe):
    """Per-client commit-latency dispersion over sampled ids.

    Joins three streams: ``request_issued`` (issue instant per
    ``(client, req_id)``), ``batch_requests`` (which keys each formed
    batch carries), and the earliest ``order_committed`` per batch.
    Matched state is deleted on commit, so memory tracks *in-flight*
    requests plus one ``(count, sum, max)`` aggregate per client id
    actually sampled — not the population size.
    """

    name = "client-fairness"
    kinds = frozenset({"request_issued", "batch_requests", "order_committed"})
    description = (
        "per-client commit-latency dispersion: Jain fairness index and "
        "p95/p50 spread of per-client mean latencies"
    )
    provides = (
        "clients_observed",
        "fairness_jain",
        "client_latency_mean",
        "client_p95_over_p50",
    )
    directions = {"fairness_jain": "higher"}
    scale_only = True

    def __init__(self, context: ProbeContext) -> None:
        super().__init__(context)
        self._issued: dict[tuple[str, int], float] = {}
        self._batch_keys: dict[tuple[int, int], tuple] = {}
        # client -> [count, sum, max] of commit latencies
        self._per_client: dict[str, list[float]] = {}

    def consume(self, record: TraceRecord) -> None:
        if record.kind == "request_issued":
            self._issued.setdefault(tuple(record.fields["req"]), record.time)
        elif record.kind == "batch_requests":
            key = (record.fields["rank"], record.fields["batch_id"])
            self._batch_keys.setdefault(key, record.fields["keys"])
        else:  # order_committed — records arrive in time order, so the
            # first one per batch is the earliest commit anywhere.
            key = (record.fields["rank"], record.fields["batch_id"])
            keys = self._batch_keys.pop(key, None)
            if keys is None:
                return
            for req_key in keys:
                issued_at = self._issued.pop(tuple(req_key), None)
                if issued_at is None:
                    continue
                latency = record.time - issued_at
                client = req_key[0]
                stats = self._per_client.get(client)
                if stats is None:
                    self._per_client[client] = [1.0, latency, latency]
                else:
                    stats[0] += 1.0
                    stats[1] += latency
                    if latency > stats[2]:
                        stats[2] = latency

    def finalize(self) -> dict[str, float]:
        means = sorted(
            total / count for count, total, _ in self._per_client.values()
        )
        n = len(means)
        if n == 0:
            return {
                "clients_observed": 0.0,
                "fairness_jain": 0.0,
                "client_latency_mean": 0.0,
                "client_p95_over_p50": 0.0,
            }
        total = sum(means)
        squares = sum(m * m for m in means)
        jain = (total * total) / (n * squares) if squares > 0 else 1.0
        p50 = _percentile(means, 0.50)
        p95 = _percentile(means, 0.95)
        return {
            "clients_observed": float(n),
            "fairness_jain": jain,
            "client_latency_mean": total / n,
            "client_p95_over_p50": (p95 / p50) if p50 > 0 else 0.0,
        }


@register
class QueueDepthProbe(Probe):
    """Unordered-queue occupancy, sampled at every batch tick.

    The emitting processes sample their own queue right before batch
    formation (including empty ticks), so the series tracks offered
    load against drain capacity through envelope peaks.
    """

    name = "queue-depth"
    kinds = frozenset({"queue_depth"})
    description = (
        "unordered-queue occupancy at each batch tick: mean/p95/max "
        "plus the full time series"
    )
    provides = ("queue_depth_mean", "queue_depth_p95", "queue_depth_max")
    directions = {}
    scale_only = True

    def __init__(self, context: ProbeContext) -> None:
        super().__init__(context)
        self._points: list[tuple[float, float]] = []

    def consume(self, record: TraceRecord) -> None:
        self._points.append((record.time, float(record.fields["depth"])))

    def finalize(self) -> dict[str, float]:
        depths = sorted(depth for _, depth in self._points)
        if not depths:
            return {
                "queue_depth_mean": 0.0,
                "queue_depth_p95": 0.0,
                "queue_depth_max": 0.0,
            }
        return {
            "queue_depth_mean": sum(depths) / len(depths),
            "queue_depth_p95": _percentile(depths, 0.95),
            "queue_depth_max": depths[-1],
        }

    def series(self) -> tuple[MetricSeries, ...]:
        return (MetricSeries(name="queue_depth", points=tuple(self._points)),)


#: Message type -> protocol phase, for cost attribution.  Types absent
#: here land in "other" (new message types degrade gracefully).
_PHASES = {
    "OrderBatch": "order",
    "PairProposal": "order",
    "PrePrepare": "order",
    "Prepare": "order",
    "Commit": "order",
    "Ack": "order",
    "FailSignal": "failover",
    "Suspect": "failover",
    "ViewChange": "failover",
    "NewView": "failover",
    "Start": "failover",
    "BackLog": "failover",
    "Checkpoint": "checkpoint",
    "Reply": "reply",
}
_PHASE_NAMES = ("order", "failover", "checkpoint", "reply", "other")


@register
class CryptoCostProbe(Probe):
    """Signature cost attribution per protocol phase.

    Consumes ``crypto_op`` records (emitted by ``make_signed`` /
    ``make_countersigned`` and the verification half of
    ``receive_service``) and buckets modelled CPU seconds by the
    message type's phase — at saturation this answers *which* part of
    the protocol the crypto budget actually feeds.
    """

    name = "crypto-cost"
    kinds = frozenset({"crypto_op"})
    description = (
        "sign/verify counts and modelled CPU seconds, attributed to "
        "protocol phases (order/failover/checkpoint/reply)"
    )
    provides = (
        "sign_ops",
        "verify_ops",
        "sign_cost_s",
        "verify_cost_s",
    ) + tuple(f"cost_{phase}_s" for phase in _PHASE_NAMES)
    directions = {}
    scale_only = True

    def __init__(self, context: ProbeContext) -> None:
        super().__init__(context)
        self._ops = {"sign": 0, "verify": 0}
        self._op_cost = {"sign": 0.0, "verify": 0.0}
        self._phase_cost = dict.fromkeys(_PHASE_NAMES, 0.0)

    def consume(self, record: TraceRecord) -> None:
        op = record.fields["op"]
        cost = record.fields["cost"]
        self._ops[op] += 1
        self._op_cost[op] += cost
        phase = _PHASES.get(record.fields["msg"], "other")
        self._phase_cost[phase] += cost

    def finalize(self) -> dict[str, float]:
        out = {
            "sign_ops": float(self._ops["sign"]),
            "verify_ops": float(self._ops["verify"]),
            "sign_cost_s": self._op_cost["sign"],
            "verify_cost_s": self._op_cost["verify"],
        }
        for phase in _PHASE_NAMES:
            out[f"cost_{phase}_s"] = self._phase_cost[phase]
        return out
