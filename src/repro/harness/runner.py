"""Sweep tasks, the ``execute()`` facade and series assembly.

The figure sweeps of :mod:`repro.harness.experiments` are grids of
independent simulation runs: each (protocol, scheme, interval) point
builds a fresh cluster from an explicit seed and returns plain data.
This module turns every such point into a :class:`SweepTask` value;
*executing* a grid is the job of the pluggable backends registered in
:mod:`repro.harness.exec` (``serial``, ``pool``, ``sockets``), reached
through the stable :func:`execute` facade below.

Determinism: a task carries everything that influences its outcome
(protocol, scheme, interval, ``f``, seed, batch counts, calibration
profile name), and :func:`run_task` is a pure function of the task —
the same grid therefore produces byte-identical results whichever
backend runs it, across any number of workers, in any completion
order.

Calibration profiles are referenced *by name* so tasks stay small and
picklable; each worker process resolves a name to a profile once and
reuses it for every task it runs (:func:`resolve_calibration` is
memoised per process).

Typical use::

    tasks = order_grid(protocols=("ct", "sc", "bft"),
                       schemes=("md5-rsa1024",),
                       intervals=(0.040, 0.100, 0.500))
    results = execute(tasks, jobs=4, progress=print_progress)
    series = order_series(results, value="latency_mean")

Scaling out, resuming::

    execute(tasks, jobs=8, executor="sockets")       # worker subprocesses over TCP
    execute(tasks, jobs=4, checkpoint="sweep.ckpt")  # journal + resume
"""

from __future__ import annotations

import hashlib
import json
import sys
from dataclasses import dataclass
from functools import cached_property, lru_cache
from typing import Callable, Iterable, Sequence

from repro.calibration import CalibrationProfile, ideal_testbed, paper_testbed
from repro.errors import ConfigError
from repro.harness.telemetry import Stopwatch

#: Task kinds understood by :func:`run_task`.
ORDER = "order"
FAILOVER = "failover"
SCENARIO = "scenario"

#: Named calibration profiles tasks may reference.
CALIBRATION_PROFILES: dict[str, Callable[[], CalibrationProfile]] = {
    "paper": paper_testbed,
    "ideal": ideal_testbed,
}


@lru_cache(maxsize=None)
def resolve_calibration(name: str) -> CalibrationProfile:
    """Resolve a profile name, once per process (workers share the
    cached instance across all their tasks)."""
    try:
        factory = CALIBRATION_PROFILES[name]
    except KeyError:
        raise ConfigError(
            f"unknown calibration profile {name!r}; "
            f"known: {tuple(CALIBRATION_PROFILES)}"
        ) from None
    return factory()


@dataclass(frozen=True)
class SweepTask:
    """One sweep point: a pure, picklable description of a single
    experiment run.

    ``kind`` selects the experiment: :data:`ORDER` measures order
    latency/throughput at ``batching_interval``; :data:`FAILOVER`
    measures fail-over latency with ``backlog_batches`` of held orders;
    :data:`SCENARIO` runs a declarative
    :class:`~repro.harness.scenario.ScenarioSpec` (carried in
    ``scenario``, itself frozen and picklable).
    """

    kind: str
    protocol: str
    scheme: str
    f: int = 2
    seed: int = 1
    batching_interval: float | None = None
    backlog_batches: int | None = None
    n_batches: int = 100
    warmup_batches: int = 15
    calibration: str = "paper"
    scenario: object | None = None
    #: Probe selection for the experiment (``None`` = the experiment's
    #: paper defaults).  Scenario tasks select probes on their spec.
    probes: tuple[str, ...] | None = None
    #: Cost-model-only crypto (:func:`repro.crypto.costs.fast_crypto`).
    #: Opt-in; the experiment still falls back to real byte-level
    #: crypto when a selected probe declares ``needs_digests``.
    fast_crypto: bool = False

    def __post_init__(self) -> None:
        if self.kind not in (ORDER, FAILOVER, SCENARIO):
            raise ConfigError(f"unknown task kind {self.kind!r}")
        if self.kind == ORDER and self.batching_interval is None:
            raise ConfigError("order tasks need a batching_interval")
        if self.kind == FAILOVER and self.backlog_batches is None:
            raise ConfigError("failover tasks need backlog_batches")
        if self.kind == SCENARIO and self.scenario is None:
            raise ConfigError("scenario tasks need a ScenarioSpec")
        if self.fast_crypto and self.kind == SCENARIO:
            raise ConfigError(
                "scenario tasks do not support fast_crypto (scenarios "
                "may read digest bytes through arbitrary fault hooks)"
            )
        if self.calibration not in CALIBRATION_PROFILES:
            raise ConfigError(f"unknown calibration profile {self.calibration!r}")
        if self.probes is not None:
            if self.kind == SCENARIO:
                raise ConfigError(
                    "scenario tasks select probes on the ScenarioSpec "
                    "(spec field 'probes'), not on the task"
                )
            from repro.harness import probes as probe_registry

            object.__setattr__(
                self, "probes", probe_registry.validate_names(self.probes)
            )

    @property
    def x(self) -> float:
        """The task's sweep-axis value (interval, backlog, or seed —
        population scenarios sweep the client count)."""
        if self.kind == ORDER:
            return self.batching_interval
        if self.kind == SCENARIO:
            population = getattr(self.scenario, "population", None)
            if population is not None:
                return float(population.clients)
            return float(self.seed)
        return float(self.backlog_batches)

    @cached_property
    def point_id(self) -> str:
        """Stable identifier used to match points across artifacts.

        Every field that influences the measurement participates, so
        sweeps of different shapes (batch counts, calibration, a
        failover run's batching interval) can never silently compare
        as the same point in the baseline gate.

        Memoised per instance (tasks are frozen values): the scenario
        branch digests the whole spec, and progress reporting reads the
        id once per completed point — recomputing it each time would
        make the cheapest grids pay a sha256 per progress line.
        """
        if self.kind == SCENARIO:
            # The spec digest covers every field (faults, workload,
            # duration, config overrides), so two different scenarios
            # sharing a name can never compare as the same point.
            from repro.harness.scenario import spec_to_dict

            payload = json.dumps(
                spec_to_dict(self.scenario), sort_keys=True, default=str
            )
            digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:10]
            return "/".join((
                self.kind, self.scenario.name, self.protocol, self.scheme,
                f"f{self.f}", f"s{self.seed}", self.calibration, digest,
            ))
        if self.kind == ORDER:
            axis = f"i{self.batching_interval:g}"
            shape = f"n{self.n_batches}w{self.warmup_batches}"
        else:
            interval = 0.250 if self.batching_interval is None else self.batching_interval
            axis = f"b{self.backlog_batches}i{interval:g}"
            shape = None
        parts = [
            self.kind, self.protocol, self.scheme, f"f{self.f}", axis,
            f"s{self.seed}",
        ]
        if shape is not None:
            parts.append(shape)
        parts.append(self.calibration)
        # A non-default probe selection measures different quantities,
        # so it is a different point; the default (None) adds nothing,
        # keeping every historical id — and the committed baselines —
        # stable.
        if self.probes is not None:
            parts.append("p:" + "+".join(self.probes))
        # Fast-crypto points carry a marker for the same reason: the
        # measured metrics are designed to be identical, but the run
        # mode is an experimental condition worth distinguishing in
        # artifacts, and the default (False) keeps historical ids.
        if self.fast_crypto:
            parts.append("fastcrypto")
        return "/".join(parts)


@dataclass(frozen=True)
class PointResult:
    """The outcome of one executed task.

    ``result`` is the experiment's value object — a
    :class:`~repro.harness.probes.ProbeReport` for order/failover
    points, a :class:`~repro.harness.scenario.ScenarioResult` for
    scenarios — fully deterministic for a given task.  ``wall_time``
    is the worker-side execution time and is the only
    non-deterministic field.
    """

    task: SweepTask
    result: object
    wall_time: float

    @property
    def events_processed(self) -> int:
        """Simulator events the point processed (0 when the experiment
        predates the telemetry).  Deterministic — only the pairing with
        ``wall_time`` (events/second) varies between machines."""
        return int(getattr(self.result, "events_processed", 0))

    @property
    def probes(self) -> tuple[str, ...]:
        """Names of the probes that emitted this point's metrics
        (empty for results measured without probes)."""
        return tuple(getattr(self.result, "probes", ()) or ())

    def metrics(self) -> dict[str, float]:
        """The measured quantities, flattened for artifacts — the
        result object owns its metric map, whatever probes built it."""
        return dict(self.result.metrics())


def run_task(task: SweepTask) -> PointResult:
    """Execute one sweep point; pure in everything but wall time."""
    from repro.harness import experiments

    watch = Stopwatch()
    if task.kind == SCENARIO:
        from repro.harness.scenario import run_scenario

        return PointResult(task=task, result=run_scenario(task.scenario),
                           wall_time=watch.elapsed)
    calibration = resolve_calibration(task.calibration)
    if task.kind == ORDER:
        result = experiments.run_order_experiment(
            task.protocol,
            task.scheme,
            task.batching_interval,
            f=task.f,
            seed=task.seed,
            n_batches=task.n_batches,
            warmup_batches=task.warmup_batches,
            calibration=calibration,
            probes=task.probes,
            fast_crypto=task.fast_crypto,
        )
    else:
        result = experiments.run_failover_experiment(
            task.protocol,
            task.scheme,
            task.backlog_batches,
            f=task.f,
            seed=task.seed,
            batching_interval=(
                0.250 if task.batching_interval is None else task.batching_interval
            ),
            calibration=calibration,
            probes=task.probes,
            fast_crypto=task.fast_crypto,
        )
    return PointResult(task=task, result=result,
                       wall_time=watch.elapsed)


# ----------------------------------------------------------------------
# Progress reporting (shared by every execution backend)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Progress:
    """A progress snapshot delivered after each completed task."""

    done: int
    total: int
    elapsed: float
    last: PointResult

    @property
    def eta(self) -> float:
        """Estimated seconds remaining, from the mean rate so far."""
        if self.done == 0:
            return float("inf")
        return self.elapsed / self.done * (self.total - self.done)


def print_progress(progress: Progress, stream=None) -> None:
    """Default progress reporter: one stderr line per finished point."""
    stream = stream if stream is not None else sys.stderr
    print(
        f"  [{progress.done}/{progress.total}] {progress.last.task.point_id} "
        f"({progress.last.wall_time:.1f}s) "
        f"elapsed {progress.elapsed:.1f}s eta {progress.eta:.1f}s",
        file=stream,
        flush=True,
    )


def default_executor(jobs: int, n_tasks: int) -> str:
    """The backend :func:`execute` picks when none is named — the
    single source of truth, shared with callers (the CLI) that record
    which backend ran."""
    return "pool" if jobs > 1 and n_tasks > 1 else "serial"


def execute(
    tasks: Iterable[SweepTask],
    jobs: int = 1,
    progress: Callable[[Progress], None] | bool | None = None,
    executor: str | None = None,
    checkpoint: str | None = None,
    cost_hints: dict[str, float] | None = None,
    executor_options: dict | None = None,
) -> list[PointResult]:
    """Run every task and return results in task order.

    The stable facade over the execution backends registered in
    :mod:`repro.harness.exec`:

    * ``executor`` names a backend (``"serial"``, ``"pool"``,
      ``"sockets"``, or anything registered).  ``None`` keeps the
      historical behaviour — ``jobs <= 1`` runs serially in-process
      (no pool, no pickling), larger values fan the grid out over a
      worker-process pool.  Every backend produces identical results
      for the same tasks.
    * ``checkpoint`` names a journal file: each finished point is
      appended as it completes, and a re-run against the same path
      skips points the journal already holds — an interrupted sweep
      resumes instead of starting over.
    * ``cost_hints`` maps ``point_id`` to a relative cost (typically
      ``events`` telemetry from a prior artifact); parallel backends
      dispatch predicted-expensive tasks first so the slowest point
      never straggles at the tail.  Result order is unaffected.
    * ``executor_options`` are extra constructor keywords for the
      chosen backend (e.g. ``bind``/``port``/``spawn`` on
      ``sockets`` — what the CLI's ``--bind``/``--spawn`` pass); they
      must be options that backend accepts.

    ``progress`` is a per-completion callback; any falsy value
    (``None``, ``False``) disables reporting, so callers can write
    ``progress=False`` without tripping over the callable protocol.
    ``True`` selects the default stderr reporter.
    """
    from repro.harness import exec as exec_backends

    if not progress:
        progress = None
    elif progress is True:  # symmetric shorthand for the default reporter
        progress = print_progress
    tasks = list(tasks)
    if executor is None:
        executor = default_executor(jobs, len(tasks))
    backend = exec_backends.create(
        executor, jobs=jobs, cost_hints=cost_hints, **(executor_options or {})
    )
    if checkpoint is not None:
        return exec_backends.run_with_checkpoint(
            backend, tasks, checkpoint, progress=progress
        )
    return backend.run(tasks, progress=progress)


# ----------------------------------------------------------------------
# Grid builders
# ----------------------------------------------------------------------
def order_grid(
    protocols: Sequence[str],
    schemes: Sequence[str],
    intervals: Sequence[float],
    f: int = 2,
    seed: int = 1,
    n_batches: int = 100,
    warmup_batches: int = 15,
    calibration: str = "paper",
    probes: tuple[str, ...] | None = None,
    fast_crypto: bool = False,
) -> list[SweepTask]:
    """The (scheme × protocol × interval) grid of Figures 4/5."""
    return [
        SweepTask(
            kind=ORDER,
            protocol=protocol,
            scheme=scheme,
            f=f,
            seed=seed,
            batching_interval=interval,
            n_batches=n_batches,
            warmup_batches=warmup_batches,
            calibration=calibration,
            probes=probes,
            fast_crypto=fast_crypto,
        )
        for scheme in schemes
        for protocol in protocols
        for interval in intervals
    ]


def f3_grid(
    protocols: Sequence[str],
    schemes: Sequence[str],
    intervals: Sequence[float],
    fs: Sequence[int] = (2, 3),
    seed: int = 1,
    n_batches: int = 60,
    warmup_batches: int = 15,
    calibration: str = "paper",
    probes: tuple[str, ...] | None = None,
    fast_crypto: bool = False,
) -> list[SweepTask]:
    """The (f × scheme × protocol × interval) grid of the Section 5
    f = 3 comparison: :func:`order_grid` repeated per ``f``."""
    return [
        task
        for f in fs
        for task in order_grid(
            protocols, schemes, intervals,
            f=f, seed=seed, n_batches=n_batches,
            warmup_batches=warmup_batches, calibration=calibration,
            probes=probes, fast_crypto=fast_crypto,
        )
    ]


def failover_grid(
    protocols: Sequence[str],
    schemes: Sequence[str],
    backlogs: Sequence[int],
    f: int = 2,
    seed: int = 1,
    batching_interval: float = 0.250,
    calibration: str = "paper",
    probes: tuple[str, ...] | None = None,
    fast_crypto: bool = False,
) -> list[SweepTask]:
    """The (scheme × protocol × backlog) grid of Figure 6."""
    return [
        SweepTask(
            kind=FAILOVER,
            protocol=protocol,
            scheme=scheme,
            f=f,
            seed=seed,
            batching_interval=batching_interval,
            backlog_batches=backlog,
            calibration=calibration,
            probes=probes,
            fast_crypto=fast_crypto,
        )
        for scheme in schemes
        for protocol in protocols
        for backlog in backlogs
    ]


# ----------------------------------------------------------------------
# Series assembly
# ----------------------------------------------------------------------
def group_series(
    results: Iterable[PointResult],
    key: Callable[[PointResult], object],
    point: Callable[[PointResult], tuple[float, float]],
) -> dict[object, list[tuple[float, float]]]:
    """Group results into ``{key: [(x, y), ...]}``, sorted by x."""
    out: dict[object, list[tuple[float, float]]] = {}
    for result in results:
        out.setdefault(key(result), []).append(point(result))
    for series in out.values():
        series.sort(key=lambda xy: xy[0])
    return out


def order_series(
    results: Iterable[PointResult], value: str = "latency_mean"
) -> dict[str, dict[str, list[tuple[float, float]]]]:
    """``{scheme: {protocol: [(interval, value), ...]}}`` — the shape
    the figure-level sweeps return.  ``value`` names a metric from the
    point's :class:`~repro.harness.probes.ProbeReport` (metric names
    read as attributes).

    Schemes group by the *requested* name (CT reports ``"plain"``
    because it runs without crypto, but belongs to the panel it was
    swept for).
    """
    out: dict[str, dict[str, list[tuple[float, float]]]] = {}
    grouped = group_series(
        results,
        key=lambda p: (p.task.scheme, p.task.protocol),
        point=lambda p: (p.task.batching_interval, getattr(p.result, value)),
    )
    for (scheme, protocol), series in grouped.items():
        out.setdefault(scheme, {})[protocol] = series
    return out


def failover_series(
    results: Iterable[PointResult],
) -> dict[str, dict[str, list[tuple[float, float]]]]:
    """``{scheme: {protocol: [(backlog_kb, latency_s), ...]}}``."""
    out: dict[str, dict[str, list[tuple[float, float]]]] = {}
    grouped = group_series(
        results,
        key=lambda p: (p.task.scheme, p.task.protocol),
        point=lambda p: (
            p.result.observed_backlog_bytes / 1024.0,
            p.result.failover_latency,
        ),
    )
    for (scheme, protocol), series in grouped.items():
        out.setdefault(scheme, {})[protocol] = series
    return out
