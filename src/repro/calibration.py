"""Calibration of the simulated testbed.

The paper's measurements come from 15 Linux machines (Pentium IV
2.8 GHz, 2 GB RAM) on a switched LAN, running Java 1.5 — we replace
that testbed with a discrete-event simulation whose cost constants are
gathered here.  Everything is plain data: re-calibrating for a
different era of hardware means constructing a different profile.

The constants fall into four groups:

* **marshalling** — Java object serialisation was expensive (hundreds
  of microseconds per message plus a per-KB term);
* **per-message handling** — dispatch, bookkeeping, socket syscalls;
* **network** — LAN propagation/bandwidth/jitter, plus the faster
  dedicated replica–shadow link;
* **crypto** — delegated to :class:`~repro.crypto.costs.CryptoCostModel`.

Because every cryptographic *cost* is charged from this profile, the
code that actually computes digest/signature values is free to be
fast: :func:`repro.crypto.digests.digest` defaults to the ``hashlib``
backend (bit-identical to the from-scratch reference, ~50x quicker)
and the simulated provider mints MAC tokens — neither choice can move
a simulated metric, only harness wall time.

``overload_gamma`` inflates service times for work that starts late
(queued), modelling the runtime's degradation under overload (GC,
scheduler churn); it is what turns the post-saturation throughput
*plateau* of an ideal queue into the *decline* the paper measured.
Setting it to zero recovers the ideal queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.costs import CryptoCostModel
from repro.net.delay import LanDelay


@dataclass(frozen=True)
class CalibrationProfile:
    """Cost constants of the simulated testbed (all times in seconds)."""

    marshal_base: float = 700e-6
    marshal_per_kb: float = 140e-6
    unmarshal_base: float = 700e-6
    unmarshal_per_kb: float = 140e-6
    handle_base: float = 200e-6
    send_per_dest: float = 200e-6
    duplicate_base: float = 150e-6
    compare_base: float = 40e-6
    backlog_compute_per_kb: float = 300e-6
    overload_gamma: float = 0.08
    lan_propagation: float = 120e-6
    lan_bandwidth: float = 12.5e6
    lan_jitter: float = 60e-6
    pair_propagation: float = 50e-6
    pair_bandwidth: float = 12.5e6
    pair_jitter: float = 15e-6
    # RMI adds per-call overhead on top of plain serialisation.
    pair_call_overhead: float = 150e-6
    crypto: CryptoCostModel = field(default_factory=CryptoCostModel.p4_2006)

    def lan_link(self) -> LanDelay:
        """Delay model of the shared asynchronous network."""
        return LanDelay(
            propagation=self.lan_propagation,
            bandwidth_bytes_per_s=self.lan_bandwidth,
            jitter=self.lan_jitter,
        )

    def pair_link(self) -> LanDelay:
        """Delay model of the dedicated replica-shadow connection."""
        return LanDelay(
            propagation=self.pair_propagation,
            bandwidth_bytes_per_s=self.pair_bandwidth,
            jitter=self.pair_jitter,
        )

    def marshal_cost(self, size_bytes: int) -> float:
        """Sender-side CPU to serialise one message."""
        return self.marshal_base + self.marshal_per_kb * (size_bytes / 1024.0)

    def unmarshal_cost(self, size_bytes: int) -> float:
        """Receiver-side CPU to deserialise one message."""
        return self.unmarshal_base + self.unmarshal_per_kb * (size_bytes / 1024.0)


def paper_testbed() -> CalibrationProfile:
    """The default profile approximating the paper's cluster."""
    return CalibrationProfile()


def ideal_testbed() -> CalibrationProfile:
    """Free CPU and crypto — for functional tests where only message
    *order* matters, not timing."""
    return CalibrationProfile(
        marshal_base=0.0,
        marshal_per_kb=0.0,
        unmarshal_base=0.0,
        unmarshal_per_kb=0.0,
        handle_base=0.0,
        send_per_dest=0.0,
        duplicate_base=0.0,
        compare_base=0.0,
        backlog_compute_per_kb=0.0,
        overload_gamma=0.0,
        pair_call_overhead=0.0,
        crypto=CryptoCostModel.free(),
    )
