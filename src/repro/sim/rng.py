"""Named, independently seeded random streams.

Every source of randomness in a simulation (network jitter, workload
arrivals, fault timing, ...) pulls from its own named stream.  Streams
are derived from the master seed with SHA-256 so that adding a new
stream never perturbs the values drawn by existing ones — experiments
stay comparable across library versions.
"""

from __future__ import annotations

import hashlib
import random


class RngRegistry:
    """Factory of deterministic :class:`random.Random` streams.

    >>> reg = RngRegistry(42)
    >>> a1 = reg.stream("net").random()
    >>> a2 = RngRegistry(42).stream("net").random()
    >>> a1 == a2
    True
    >>> reg.stream("net") is reg.stream("net")
    True
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(f"{self.seed}/{name}".encode("utf-8")).digest()
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RngRegistry":
        """Derive a child registry whose streams are independent of ours."""
        digest = hashlib.sha256(f"{self.seed}//{name}".encode("utf-8")).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))
