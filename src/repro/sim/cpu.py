"""Serial CPU model with service-time accounting.

Each simulated node owns one :class:`Cpu`.  Work (unmarshalling a
message, verifying a signature, signing, marshalling) is *submitted* as a
service time; the CPU executes submissions in order, so a burst of
arrivals queues up exactly like a single-threaded Java server of the
paper's era.  This queueing is what produces the saturation knees of
Figures 4 and 5.

Overload inflation
------------------
Real runtimes degrade under overload (garbage collection, context
switches, socket buffer churn).  The paper's measured throughput *drops*
past saturation rather than plateauing, so the model supports a mild
load-dependent inflation: a task that starts ``lag`` seconds after it was
submitted costs ``service * (1 + overload_gamma * lag)``.  With the
default ``overload_gamma = 0`` the CPU is an ideal FIFO server; the
calibration profile sets a small positive value and documents why.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.kernel import Simulator


class Cpu:
    """A single serial processor attached to a simulator clock.

    >>> sim = Simulator()
    >>> cpu = Cpu(sim)
    >>> cpu.submit(0.010)
    0.01
    >>> cpu.submit(0.005)   # queues behind the first task
    0.015
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "cpu",
        overload_gamma: float = 0.0,
    ) -> None:
        if overload_gamma < 0:
            raise SimulationError("overload_gamma must be >= 0")
        self.sim = sim
        self.name = name
        self.overload_gamma = overload_gamma
        self.busy_until = 0.0
        self.total_busy = 0.0
        self.tasks_run = 0

    @property
    def backlog(self) -> float:
        """Seconds of queued work ahead of a task submitted right now."""
        return max(0.0, self.busy_until - self.sim.now)

    def submit(self, service: float) -> float:
        """Queue ``service`` seconds of work; return its completion time.

        The task starts when all previously submitted work finishes (or
        immediately if the CPU is idle) and runs for the — possibly
        inflated — service time.
        """
        if service < 0:
            raise SimulationError(f"negative service time {service}")
        start = max(self.sim.now, self.busy_until)
        lag = start - self.sim.now
        effective = service * (1.0 + self.overload_gamma * lag)
        completion = start + effective
        self.busy_until = completion
        self.total_busy += effective
        self.tasks_run += 1
        return completion

    def utilization(self, since: float = 0.0) -> float:
        """Fraction of ``[since, now]`` spent busy (approximate).

        Uses accumulated busy time, so it is exact when ``since`` is 0
        and the CPU has drained; good enough for steady-state reporting.
        """
        elapsed = self.sim.now - since
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.total_busy / elapsed)
