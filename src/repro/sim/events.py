"""Event objects and the pending-event queue.

Events are ordered by ``(time, sequence)`` where ``sequence`` is a
monotonically increasing insertion counter.  Two events scheduled for the
same instant therefore fire in the order they were scheduled, which makes
whole simulations deterministic functions of their seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import SimulationError


class Event:
    """A callback scheduled to run at a virtual time.

    Instances are created by the simulator; user code only holds them to
    :meth:`cancel` timers.  A cancelled event stays in the heap but is
    skipped when popped (lazy deletion), which keeps cancellation O(1).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Cancelling twice is an error."""
        if self.cancelled:
            raise SimulationError(f"event at t={self.time} cancelled twice")
        self.cancelled = True

    @property
    def active(self) -> bool:
        """True while the event is still going to fire."""
        return not self.cancelled

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "active"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"Event(t={self.time:.6f}, seq={self.seq}, {name}, {state})"


class EventQueue:
    """Min-heap of :class:`Event` with deterministic ordering."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, callback: Callable[..., None], args: tuple[Any, ...]) -> Event:
        """Insert a callback to run at ``time`` and return its handle."""
        event = Event(time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Remove and return the earliest non-cancelled event, or None."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Return the firing time of the earliest live event, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time
