"""Event objects and the pending-event queue.

Events are ordered by ``(time, sequence)`` where ``sequence`` is a
monotonically increasing insertion counter.  Two events scheduled for the
same instant therefore fire in the order they were scheduled, which makes
whole simulations deterministic functions of their seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import SimulationError


class Event:
    """A callback scheduled to run at a virtual time.

    Instances are created by the simulator; user code only holds them to
    :meth:`cancel` timers.  A cancelled event stays in the heap but is
    skipped when popped (lazy deletion), which keeps cancellation O(1).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Cancelling twice is an error."""
        if self.cancelled:
            raise SimulationError(f"event at t={self.time} cancelled twice")
        self.cancelled = True

    @property
    def active(self) -> bool:
        """True while the event is still going to fire."""
        return not self.cancelled

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "active"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"Event(t={self.time:.6f}, seq={self.seq}, {name}, {state})"


class EventQueue:
    """Min-heap of :class:`Event` with deterministic ordering.

    The heap stores ``(time, seq, event)`` triples so that every
    comparison during sift-up/down is a C-level tuple comparison —
    ``Event.__lt__`` was one of the hottest functions in a profiled
    sweep — while the public API still trades in :class:`Event`
    handles.  ``(time, seq)`` is unique per event, so the ``event``
    slot is never compared.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, callback: Callable[..., None], args: tuple[Any, ...]) -> Event:
        """Insert a callback to run at ``time`` and return its handle."""
        seq = self._seq
        event = Event(time, seq, callback, args)
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def pop(self) -> Event | None:
        """Remove and return the earliest non-cancelled event, or None."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            if not event.cancelled:
                return event
        return None

    def pop_due(self, until: float | None = None) -> Event | None:
        """Pop the earliest live event firing at or before ``until``.

        Fuses :meth:`peek_time` + :meth:`pop` into one heap traversal
        (the kernel's inner loop did both per event).  An event beyond
        ``until`` stays queued; cancelled events ahead of it are
        discarded either way.  Returns ``None`` when nothing is due.
        """
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            first = heap[0]
            if first[2].cancelled:
                heappop(heap)
                continue
            if until is not None and first[0] > until:
                return None
            heappop(heap)
            return first[2]
        return None

    def peek_time(self) -> float | None:
        """Return the firing time of the earliest live event, or None."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0][0]
