"""Event objects and the pending-event queue.

Events are ordered by ``(time, sequence)`` where ``sequence`` is a
monotonically increasing insertion counter.  Two events scheduled for the
same instant therefore fire in the order they were scheduled, which makes
whole simulations deterministic functions of their seed.

The queue supports two consumption styles: the classic one-event
:meth:`EventQueue.pop_due`, and the kernel's batched
:meth:`EventQueue.pop_due_batch`, which drains every live event sharing
the earliest due timestamp in a single heap traversal so the run loop
pays the method-call and bookkeeping overhead once per *slot* rather
than once per event.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import SimulationError

# Compaction policy (same shape as asyncio's timer handling and the
# stdlib ``sched`` rebuild): rebuild the heap once cancelled residents
# outnumber live ones, but never bother below this size — tiny heaps
# drain fast enough that lazy deletion alone is fine.
_MIN_COMPACT_SIZE = 64


class Event:
    """A callback scheduled to run at a virtual time.

    Instances are created by the simulator; user code only holds them to
    :meth:`cancel` timers.  A cancelled event stays in the heap but is
    skipped when popped (lazy deletion), which keeps cancellation O(1).
    The owning queue counts cancellations and compacts itself when
    cancelled entries dominate, so mass-cancellation cannot pin
    arbitrary memory until the timestamps are reached.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
        queue: "EventQueue | None" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._queue = queue

    def cancel(self) -> None:
        """Prevent the event from firing.  Cancelling twice is an error."""
        if self.cancelled:
            raise SimulationError(f"event at t={self.time} cancelled twice")
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            queue._note_cancelled()

    @property
    def active(self) -> bool:
        """True while the event is still going to fire."""
        return not self.cancelled

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "active"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"Event(t={self.time:.6f}, seq={self.seq}, {name}, {state})"


class EventQueue:
    """Min-heap of :class:`Event` with deterministic ordering.

    The heap stores ``(time, seq, event)`` triples so that every
    comparison during sift-up/down is a C-level tuple comparison —
    ``Event.__lt__`` was one of the hottest functions in a profiled
    sweep — while the public API still trades in :class:`Event`
    handles.  ``(time, seq)`` is unique per event, so the ``event``
    slot is never compared.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._cancelled = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(
        self, time: float, callback: Callable[..., None], args: tuple[Any, ...]
    ) -> Event:
        """Insert a callback to run at ``time`` and return its handle."""
        seq = self._seq
        event = Event(time, seq, callback, args, self)
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def requeue(self, event: Event) -> None:
        """Put a popped-but-unfired event back.

        The event keeps its original ``(time, seq)`` key, so ordering
        relative to everything else is exactly as if it had never been
        popped.  The kernel uses this when ``stop()`` or the
        ``max_events`` guard interrupts a half-consumed batch.
        """
        heapq.heappush(self._heap, (event.time, event.seq, event))

    def _note_cancelled(self) -> None:
        """Record a cancellation; compact once cancelled entries dominate."""
        self._cancelled += 1
        heap = self._heap
        if self._cancelled * 2 > len(heap) and len(heap) >= _MIN_COMPACT_SIZE:
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries (O(n)).

        Rebuilds *in place*: the kernel's run loop holds a direct
        reference to the heap list, so the list object's identity must
        survive compaction.
        """
        live = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(live)
        self._heap[:] = live
        self._cancelled = 0

    def pop(self) -> Event | None:
        """Remove and return the earliest non-cancelled event, or None."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            if not event.cancelled:
                return event
            self._cancelled -= 1
        return None

    def pop_due(self, until: float | None = None) -> Event | None:
        """Pop the earliest live event firing at or before ``until``.

        Fuses :meth:`peek_time` + :meth:`pop` into one heap traversal
        (the kernel's inner loop did both per event).  An event beyond
        ``until`` stays queued; cancelled events ahead of it are
        discarded either way.  Returns ``None`` when nothing is due.
        """
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            first = heap[0]
            if first[2].cancelled:
                heappop(heap)
                self._cancelled -= 1
                continue
            if until is not None and first[0] > until:
                return None
            heappop(heap)
            return first[2]
        return None

    def pop_due_batch(self, until: float | None, out: list[Event]) -> float | None:
        """Drain the earliest due *slot* — all live events sharing one time.

        Appends every live event whose firing time equals the earliest
        due timestamp to ``out`` (in seq order, since equal-time heap
        entries pop in seq order) and returns that timestamp.  Returns
        ``None`` — appending nothing — when the queue is empty or the
        earliest live event lies beyond ``until``.

        Events scheduled *during* the batch's execution for the same
        instant land in the next slot with higher sequence numbers, so
        firing order is identical to the one-event loop.  Cancelled
        entries encountered along the way are discarded.
        """
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            first = heap[0]
            event = first[2]
            if event.cancelled:
                heappop(heap)
                self._cancelled -= 1
                continue
            slot = first[0]
            if until is not None and slot > until:
                return None
            heappop(heap)
            out.append(event)
            while heap and heap[0][0] == slot:
                event = heappop(heap)[2]
                if event.cancelled:
                    self._cancelled -= 1
                else:
                    out.append(event)
            return slot
        return None

    def peek_time(self) -> float | None:
        """Return the firing time of the earliest live event, or None."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1
        if not heap:
            return None
        return heap[0][0]
