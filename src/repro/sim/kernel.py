"""The simulator: a virtual clock driving an event queue.

All times are floats in **seconds** of virtual time.  The kernel knows
nothing about networks, CPUs or protocols; those layers schedule plain
callbacks.  Determinism rests on two properties:

* ties in firing time break by insertion order (see ``repro.sim.events``);
* all randomness flows through :class:`~repro.sim.rng.RngRegistry`
  streams derived from the simulation seed.

The run loop consumes the queue one *slot* at a time via
:meth:`~repro.sim.events.EventQueue.pop_due_batch`: all events sharing
the earliest due timestamp are drained in a single heap traversal and
fired back-to-back, so the clock is written once per slot and the heap
maintenance cost is amortized across same-time bursts.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer


class Simulator:
    """Discrete-event simulator with a virtual clock.

    Parameters
    ----------
    seed:
        Master seed for every random stream used in the simulation.
    trace:
        Optional :class:`Tracer`; a fresh one is created when omitted.

    Example
    -------
    >>> sim = Simulator(seed=1)
    >>> fired = []
    >>> _ = sim.schedule(2.5, fired.append, "later")
    >>> _ = sim.schedule(1.0, fired.append, "sooner")
    >>> sim.run()
    >>> fired
    ['sooner', 'later']
    >>> sim.now
    2.5
    """

    def __init__(self, seed: int = 0, trace: Tracer | None = None) -> None:
        # ``now`` is a plain attribute, not a property: it is read on
        # every schedule/send/submit in the hot path and a property
        # descriptor costs a Python call per read.  Layers treat it as
        # read-only; only run() writes it.
        self.now = 0.0
        self._queue = EventQueue()
        self._running = False
        self._stopped = False
        self.rng = RngRegistry(seed)
        self.trace = trace if trace is not None else Tracer()
        self.events_processed = 0

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Run ``callback(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        return self._queue.push(self.now + delay, callback, args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Run ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time}: clock already at t={self.now}"
            )
        # Inlined EventQueue.push: every network delivery and CPU
        # completion passes through here, and the extra frame was
        # measurable.  Keep in lockstep with push().
        queue = self._queue
        seq = queue._seq
        event = Event(time, seq, callback, args, queue)
        queue._seq = seq + 1
        heappush(queue._heap, (time, seq, event))
        return event

    def stop(self) -> None:
        """Halt the run loop after the current event completes."""
        self._stopped = True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Process events until the queue drains or a limit is hit.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time.  The clock is left
            at ``until`` (if given) so repeated ``run(until=...)`` calls
            advance monotonically.
        max_events:
            Safety valve for tests; raise if more events than this fire.
        """
        if self._running:
            raise SimulationError("simulator run() re-entered")
        self._running = True
        self._stopped = False
        fired = 0
        # Hot loop.  This inlines EventQueue.pop_due_batch — the same
        # slot-draining discipline, minus a method call per slot; keep
        # the two in lockstep.  The ``heap`` alias stays valid across
        # callbacks because pushes mutate the list and _compact rebuilds
        # it in place.  ``self._stopped`` must be re-read after every
        # callback — callbacks flip it via stop().
        queue = self._queue
        heap = queue._heap
        pop = heappop
        batch: list[Event] = []
        try:
            while not self._stopped:
                event = None
                while heap:
                    first = heap[0]
                    candidate = first[2]
                    if candidate.cancelled:
                        pop(heap)
                        queue._cancelled -= 1
                        continue
                    if until is not None and first[0] > until:
                        break
                    event = candidate
                    slot = first[0]
                    break
                if event is None:
                    break
                pop(heap)
                self.now = slot
                if not (heap and heap[0][0] == slot):
                    # Dominant case — a slot of one (jitter makes most
                    # firing times unique): fire without batch staging.
                    event.callback(*event.args)
                    fired += 1
                    if max_events is not None and fired >= max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; runaway simulation?"
                        )
                    continue
                batch.append(event)
                while heap and heap[0][0] == slot:
                    event = pop(heap)[2]
                    if event.cancelled:
                        queue._cancelled -= 1
                    else:
                        batch.append(event)
                i = 0
                n = len(batch)
                try:
                    while i < n:
                        event = batch[i]
                        i += 1
                        # A callback earlier in the slot may cancel a
                        # later event of the same slot.
                        if event.cancelled:
                            continue
                        event.callback(*event.args)
                        fired += 1
                        if max_events is not None and fired >= max_events:
                            raise SimulationError(
                                f"exceeded max_events={max_events}; runaway simulation?"
                            )
                        if self._stopped:
                            break
                finally:
                    # stop(), the max_events guard or a raising callback
                    # can interrupt a half-consumed slot; unfired events
                    # go back with their original keys so a later run()
                    # resumes exactly where this one left off.
                    if i < n:
                        for event in batch[i:]:
                            queue.requeue(event)
                    batch.clear()
            if until is not None and not self._stopped and self.now < until:
                self.now = until
        finally:
            self.events_processed += fired
            self._running = False

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Drain every pending event (bounded by ``max_events``)."""
        self.run(until=None, max_events=max_events)
