"""The simulator: a virtual clock driving an event queue.

All times are floats in **seconds** of virtual time.  The kernel knows
nothing about networks, CPUs or protocols; those layers schedule plain
callbacks.  Determinism rests on two properties:

* ties in firing time break by insertion order (see ``repro.sim.events``);
* all randomness flows through :class:`~repro.sim.rng.RngRegistry`
  streams derived from the simulation seed.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer


class Simulator:
    """Discrete-event simulator with a virtual clock.

    Parameters
    ----------
    seed:
        Master seed for every random stream used in the simulation.
    trace:
        Optional :class:`Tracer`; a fresh one is created when omitted.

    Example
    -------
    >>> sim = Simulator(seed=1)
    >>> fired = []
    >>> _ = sim.schedule(2.5, fired.append, "later")
    >>> _ = sim.schedule(1.0, fired.append, "sooner")
    >>> sim.run()
    >>> fired
    ['sooner', 'later']
    >>> sim.now
    2.5
    """

    def __init__(self, seed: int = 0, trace: Tracer | None = None) -> None:
        self._now = 0.0
        self._queue = EventQueue()
        self._running = False
        self._stopped = False
        self.rng = RngRegistry(seed)
        self.trace = trace if trace is not None else Tracer()
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Run ``callback(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        return self._queue.push(self._now + delay, callback, args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Run ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time}: clock already at t={self._now}"
            )
        return self._queue.push(time, callback, args)

    def stop(self) -> None:
        """Halt the run loop after the current event completes."""
        self._stopped = True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Process events until the queue drains or a limit is hit.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time.  The clock is left
            at ``until`` (if given) so repeated ``run(until=...)`` calls
            advance monotonically.
        max_events:
            Safety valve for tests; raise if more events than this fire.
        """
        if self._running:
            raise SimulationError("simulator run() re-entered")
        self._running = True
        self._stopped = False
        fired = 0
        # Hot loop: one fused heap traversal per event (pop_due), hot
        # lookups hoisted into locals.  ``self._stopped`` must be
        # re-read every iteration — callbacks flip it via stop().
        pop_due = self._queue.pop_due
        try:
            while not self._stopped:
                event = pop_due(until)
                if event is None:
                    break
                self._now = event.time
                event.callback(*event.args)
                fired += 1
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self.events_processed += fired
            self._running = False

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Drain every pending event (bounded by ``max_events``)."""
        self.run(until=None, max_events=max_events)
