"""Structured trace capture.

Protocol code emits trace records (message sends, commits, fail-signals,
view changes...).  Tests assert on them; the measurement probes of
:mod:`repro.harness.probes` consume them incrementally via
:meth:`Tracer.subscribe`; and two runs with equal seeds must produce
byte-identical traces, which is itself a tested invariant.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator


@dataclass(frozen=True)
class TraceRecord:
    """One trace event: a timestamp, a kind tag and free-form fields."""

    time: float
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        """Serialise for golden-file comparisons (sorted keys)."""
        payload = {"time": round(self.time, 9), "kind": self.kind, **self.fields}
        return json.dumps(payload, sort_keys=True, default=str)


class Tracer:
    """Collects :class:`TraceRecord` objects, optionally filtered.

    Parameters
    ----------
    keep:
        Predicate deciding whether a record is retained.  Defaults to
        keeping everything.
    keep_kinds:
        Retain only records whose ``kind`` is in this set — the fast
        form of ``keep`` the experiment drivers derive from their
        selected probes.  Unlike a predicate, it lets :meth:`emit`
        skip building the record entirely when nothing (retention or
        subscription) wants its kind, so unmeasured kinds cost one
        dict lookup on the hot path.  Mutually exclusive with ``keep``.
    """

    def __init__(
        self,
        keep: Callable[[TraceRecord], bool] | None = None,
        keep_kinds: Iterable[str] | None = None,
    ) -> None:
        if keep is not None and keep_kinds is not None:
            raise ValueError("pass keep or keep_kinds, not both")
        self.records: list[TraceRecord] = []
        self._keep = keep
        self._keep_kinds = frozenset(keep_kinds) if keep_kinds is not None else None
        self._subscribers: list[Callable[[TraceRecord], None]] = []
        self._kind_subscribers: dict[str, list[Callable[[TraceRecord], None]]] = {}

    def emit(self, time: float, kind: str, **fields: Any) -> None:
        """Record an event (subject to the ``keep`` filter)."""
        if self._keep_kinds is not None:
            retain = kind in self._keep_kinds
            kind_subs = self._kind_subscribers.get(kind)
            if not (retain or kind_subs or self._subscribers):
                return  # nothing wants this kind: skip the record
            record = TraceRecord(time, kind, fields)
        else:
            record = TraceRecord(time, kind, fields)
            kind_subs = self._kind_subscribers.get(kind)
            retain = self._keep is None or self._keep(record)
        for subscriber in self._subscribers:
            subscriber(record)
        if kind_subs:
            for subscriber in kind_subs:
                subscriber(record)
        if retain:
            self.records.append(record)

    def wants(self, kind: str) -> bool:
        """Whether an :meth:`emit` of ``kind`` would reach anything.

        Emitters on hot paths guard with this before *building* their
        field values (``emit`` skips the record, but the call site's
        kwargs are evaluated regardless), so per-event instrumentation
        like ``crypto_op`` costs one method call when unmeasured.
        """
        if self._keep_kinds is not None and kind not in self._keep_kinds:
            return bool(self._subscribers) or kind in self._kind_subscribers
        return True

    def subscribe(
        self,
        callback: Callable[[TraceRecord], None],
        kinds: Iterable[str] | None = None,
    ) -> None:
        """Invoke ``callback`` for every record, even filtered ones.

        With ``kinds``, the callback only sees records of those kinds —
        dispatched through a per-kind table, so a subscription costs
        nothing on records it never asked for.  Probes declare their
        kinds and attach this way.
        """
        if kinds is None:
            self._subscribers.append(callback)
            return
        for kind in kinds:
            self._kind_subscribers.setdefault(kind, []).append(callback)

    def of_kind(self, kind: str) -> list[TraceRecord]:
        """All retained records with the given kind tag."""
        return [r for r in self.records if r.kind == kind]

    def kinds(self) -> set[str]:
        """Set of kind tags seen among retained records."""
        return {r.kind for r in self.records}

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def to_jsonl(self) -> str:
        """Whole trace as JSON lines (used for determinism checks)."""
        return "\n".join(record.to_json() for record in self.records)
