"""Structured trace capture.

Protocol code emits trace records (message sends, commits, fail-signals,
view changes...).  Tests assert on them; the experiment harness derives
latency and throughput metrics from them; and two runs with equal seeds
must produce byte-identical traces, which is itself a tested invariant.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


@dataclass(frozen=True)
class TraceRecord:
    """One trace event: a timestamp, a kind tag and free-form fields."""

    time: float
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        """Serialise for golden-file comparisons (sorted keys)."""
        payload = {"time": round(self.time, 9), "kind": self.kind, **self.fields}
        return json.dumps(payload, sort_keys=True, default=str)


class Tracer:
    """Collects :class:`TraceRecord` objects, optionally filtered.

    Parameters
    ----------
    keep:
        Predicate deciding whether a record is retained.  Defaults to
        keeping everything; experiments narrow this to the kinds they
        measure so long runs stay memory-bounded.
    """

    def __init__(self, keep: Callable[[TraceRecord], bool] | None = None) -> None:
        self.records: list[TraceRecord] = []
        self._keep = keep
        self._subscribers: list[Callable[[TraceRecord], None]] = []

    def emit(self, time: float, kind: str, **fields: Any) -> None:
        """Record an event (subject to the ``keep`` filter)."""
        record = TraceRecord(time, kind, fields)
        for subscriber in self._subscribers:
            subscriber(record)
        if self._keep is None or self._keep(record):
            self.records.append(record)

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Invoke ``callback`` for every record, even filtered ones."""
        self._subscribers.append(callback)

    def of_kind(self, kind: str) -> list[TraceRecord]:
        """All retained records with the given kind tag."""
        return [r for r in self.records if r.kind == kind]

    def kinds(self) -> set[str]:
        """Set of kind tags seen among retained records."""
        return {r.kind for r in self.records}

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def to_jsonl(self) -> str:
        """Whole trace as JSON lines (used for determinism checks)."""
        return "\n".join(record.to_json() for record in self.records)
