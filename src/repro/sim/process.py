"""Actor base class for simulated processes.

An :class:`Actor` is anything that lives on a simulated node: an order
process, a client, a fault injector.  It owns (or shares) a
:class:`~repro.sim.cpu.Cpu`, can charge CPU work, set timers and receive
messages.  The network layer (``repro.net``) calls :meth:`on_message`
after queueing the message's processing cost on the actor's CPU.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.cpu import Cpu
from repro.sim.events import Event
from repro.sim.kernel import Simulator


class Actor:
    """Base class for simulated processes.

    Subclasses override :meth:`on_message` (required for anything
    reachable over the network) and optionally :meth:`receive_service`
    to declare how much CPU time processing a given message costs —
    typically unmarshalling plus the signature verifications the
    protocol performs on that message type.
    """

    def __init__(self, sim: Simulator, name: str, cpu: Cpu | None = None) -> None:
        self.sim = sim
        self.name = name
        self.cpu = cpu if cpu is not None else Cpu(sim, name=f"{name}.cpu")

    # ------------------------------------------------------------------
    # CPU and timer helpers
    # ------------------------------------------------------------------
    def charge(self, seconds: float) -> float:
        """Charge CPU work; return the virtual time at which it completes."""
        return self.cpu.submit(seconds)

    def set_timer(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds; returns a handle.

        Timers fire on the simulator clock regardless of CPU backlog —
        they model alarm interrupts, not queued work.  A handler that
        needs CPU time charges it explicitly when it runs.
        """
        return self.sim.schedule(delay, callback, *args)

    def trace(self, kind: str, **fields: Any) -> None:
        """Emit a trace record stamped with this actor's name."""
        self.sim.trace.emit(self.sim.now, kind, actor=self.name, **fields)

    # ------------------------------------------------------------------
    # Message reception interface (driven by repro.net)
    # ------------------------------------------------------------------
    def receive_service(self, payload: Any, size_bytes: int) -> float:
        """CPU seconds needed before :meth:`on_message` may run.

        The default is free; protocol actors return unmarshalling plus
        verification costs from the calibrated cost model.
        """
        return 0.0

    def on_message(self, sender: str, payload: Any) -> None:
        """Handle a delivered message.  Runs after its service completes."""
        raise NotImplementedError(f"{type(self).__name__} does not receive messages")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"
