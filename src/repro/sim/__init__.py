"""Deterministic discrete-event simulation kernel.

This package is the substrate that replaces the paper's 15-machine LAN
testbed.  It provides:

* :class:`~repro.sim.kernel.Simulator` — a virtual clock and event loop
  with deterministic tie-breaking;
* :class:`~repro.sim.cpu.Cpu` — a per-node serial processor model that
  charges service time for marshalling and cryptographic work, producing
  the queueing (saturation) behaviour Figures 4 and 5 of the paper
  depend on;
* :class:`~repro.sim.process.Actor` — the base class for simulated
  processes;
* :class:`~repro.sim.rng.RngRegistry` — named, independently seeded
  random streams so experiments are reproducible;
* :class:`~repro.sim.trace.Tracer` — structured trace capture used by
  tests and the experiment harness.
"""

from repro.sim.events import Event, EventQueue
from repro.sim.kernel import Simulator
from repro.sim.cpu import Cpu
from repro.sim.process import Actor
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "Actor",
    "Cpu",
    "Event",
    "EventQueue",
    "RngRegistry",
    "Simulator",
    "TraceRecord",
    "Tracer",
]
