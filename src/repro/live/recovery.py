"""Replica rejoin: committed-prefix state transfer over the live wire.

A replica restarted after a crash has lost everything (the runtime
keeps no disk state by design — the paper's processes are memoryless
across crashes).  To rejoin it must first *become* a replica again:
adopt the committed prefix its peers executed while it was dead, then
resume ordering from there.  This module implements both halves of
that transfer over the existing framed transport:

Serving (every live node, :func:`serve_state_transfer`)
    A ``("st_req", requester, from_seq, max_rows)`` control frame is
    answered on the connection it arrived on with one ``("st_chunk",
    provider, from_seq, rows, applied_seq, digest)`` frame: up to
    ``max_rows`` history rows starting at ``from_seq``, plus the
    provider's applied sequence and state digest *at serve time* (the
    event loop makes the triple atomic).  Serving is pure reads —
    a provider never blocks its ordering work to feed a joiner.

Fetching (the rejoining node, :class:`PrefixFetcher`)
    Chunked and resumable: rows accumulate into a candidate state
    machine replayed through the kernel-free
    :func:`~repro.protocols.runtime.replay_history`; a connection loss
    mid-transfer reconnects (jittered backoff, bounded budget) — to the
    same peer or the next one — and resumes from the first row the
    candidate machine still needs, re-sent rows being idempotent.  The
    snapshot **installs atomically**: nothing touches the hosted
    process until the candidate machine has caught up with the
    provider and its recomputed digest chain matches the provider's
    claimed state digest; a fetch abandoned mid-way (signal, peer
    loss, digest mismatch) therefore discards the partial prefix by
    construction.

After install the fetcher keeps running as an **anti-entropy poller**:
batches committed in the gap between the snapshot and the node's first
live commit are pulled the same way (``base=`` the live machine) and
executed via the process's own ``_execute_ready`` cascade, so the
rejoined replica's history keeps extending even across the handoff
window.
"""

from __future__ import annotations

import asyncio
import os

from repro.errors import ProtocolError
from repro.net import framing
from repro.protocols.runtime import install_prefix, replay_history

#: Rows per state-transfer chunk (frames stay far under the codec cap).
ST_CHUNK_ROWS = int(os.environ.get("REPRO_ST_CHUNK_ROWS", "512"))
#: Per-chunk response deadline before the fetcher rotates peers.
ST_CHUNK_TIMEOUT = 5.0
#: Requester-side pause between chunks (test hook: widens the
#: mid-transfer window so signals can land inside it).
ST_CHUNK_DELAY_ENV = "REPRO_ST_CHUNK_DELAY"
#: Dial policy for snapshot peers: bounded, so a rejoin against a dead
#: cluster fails crisply instead of spinning.
ST_DIAL = framing.BackoffPolicy(first=0.1, cap=1.0, budget=10.0)
#: Anti-entropy poll cadence after the snapshot is installed.
CATCHUP_PERIOD = 0.5


def serve_state_transfer(transport, process) -> None:
    """Register the provider half on a live node's transport."""

    def handle(frame: tuple, writer) -> None:
        if writer is None or not (isinstance(frame, tuple) and len(frame) == 4):
            return
        _, requester, from_seq, max_rows = frame
        if not isinstance(from_seq, int) or not isinstance(max_rows, int):
            return
        machine = process.machine
        history = machine.history
        # History rows are consecutive from seq 1: index = seq - 1.
        start = max(0, from_seq - 1)
        rows = [
            (seq, bytes(digest))
            for seq, digest in history[start:start + max(1, min(max_rows, 4096))]
        ]
        reply = (
            "st_chunk",
            transport.name,
            from_seq,
            rows,
            machine.applied_seq,
            machine.state_digest(),
        )
        try:
            framing.write_frame(writer, reply)
        except OSError:
            return
        if hasattr(process, "trace"):
            process.trace(
                "state_served",
                peer=str(requester),
                from_seq=from_seq,
                rows=len(rows),
            )

    transport.register_control("st_req", handle)


class PrefixFetcher:
    """The requester half: fetch, verify, install, then keep catching up.

    One instance per rejoining node.  :meth:`fetch_and_install` runs
    the initial snapshot; :meth:`catchup_forever` is the post-install
    anti-entropy loop.  Both survive peer loss by rotating through
    ``peers`` with jittered backoff.
    """

    def __init__(
        self,
        name: str,
        peers: list[str],
        addresses: dict[str, tuple[str, int]],
        auth_key: bytes | None,
        runtime,
        chunk_rows: int = 0,
    ) -> None:
        self.name = name
        self.peers = [p for p in peers if p != name]
        self.addresses = addresses
        self.auth_key = auth_key
        self.runtime = runtime
        self.chunk_rows = chunk_rows or ST_CHUNK_ROWS
        self.chunk_delay = float(os.environ.get(ST_CHUNK_DELAY_ENV, "0") or 0)
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._peer_index = 0
        self.peer_used: str | None = None
        self.chunks = 0
        self.bytes_transferred = 0

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    async def _connect(self) -> None:
        """Dial the next peer in rotation; :class:`~repro.net.framing.
        PeerLost` once every peer exhausted its budget."""
        last: Exception | None = None
        for _ in range(len(self.peers)):
            peer = self.peers[self._peer_index % len(self.peers)]
            self._peer_index += 1
            host, port = self.addresses[peer]
            try:
                reader, writer = await framing.open_connection_with_retry(
                    host, port, ST_DIAL
                )
                if self.auth_key is not None:
                    await framing.answer_challenge_async(
                        reader, writer, self.auth_key
                    )
                framing.write_frame(writer, ("hello", f"{self.name}!st"))
                await writer.drain()
            except (OSError, framing.PeerLost, framing.AuthenticationError) as exc:
                last = exc
                continue
            self._reader, self._writer = reader, writer
            self.peer_used = peer
            return
        raise framing.PeerLost(
            f"{self.name}: no peer would serve a state transfer "
            f"(tried {self.peers})"
        ) from last

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._reader = self._writer = None

    async def _request_chunk(self, from_seq: int) -> tuple:
        """One st_req/st_chunk round trip, reconnecting on any failure.

        Returns ``(rows, applied_seq, digest)``.
        """
        while True:
            if self._writer is None or self._writer.is_closing():
                await self._connect()
            try:
                framing.write_frame(
                    self._writer,
                    ("st_req", f"{self.name}!st", from_seq, self.chunk_rows),
                )
                await self._writer.drain()
                frame = await asyncio.wait_for(
                    framing.read_frame(self._reader), ST_CHUNK_TIMEOUT
                )
            except (OSError, framing.PeerLost, asyncio.TimeoutError):
                self.close()
                continue  # resume against the next peer in rotation
            if not (
                isinstance(frame, tuple)
                and len(frame) == 6
                and frame[0] == "st_chunk"
            ):
                self.close()
                continue
            _, _provider, _from, rows, applied_seq, digest = frame
            self.chunks += 1
            self.bytes_transferred += sum(
                8 + len(d) for _, d in rows
            )
            return rows, int(applied_seq), bytes(digest)

    # ------------------------------------------------------------------
    # Snapshot + deltas
    # ------------------------------------------------------------------
    async def fetch_and_install(self, process) -> dict:
        """Fetch the committed prefix, verify, and adopt it atomically.

        Loops until the candidate machine has caught up with the
        provider's applied sequence; only then (digest verified) does
        the hosted ``process`` learn anything.  Returns the rejoin
        stats for the node's report and trace.
        """
        trace = self.runtime.trace
        started = self.runtime.now
        trace.emit(started, "rejoin_started", node=self.name)
        candidate = replay_history(self.name, [])
        while True:
            rows, applied_seq, digest = await self._request_chunk(
                candidate.applied_seq + 1
            )
            if rows:
                candidate = replay_history(self.name, rows, base=candidate)
            if candidate.applied_seq >= applied_seq:
                # Caught up with the provider: the digest claim is for
                # exactly this prefix — the verification point.
                if candidate.applied_seq == applied_seq and (
                    candidate.state_digest() != digest
                ):
                    self.close()
                    raise ProtocolError(
                        f"{self.name}: snapshot digest mismatch at seq "
                        f"{applied_seq} from {self.peer_used}; "
                        f"partial prefix discarded"
                    )
                break
            if self.chunk_delay:
                await asyncio.sleep(self.chunk_delay)
        snapshot_seq = install_prefix(process, candidate)
        duration = self.runtime.now - started
        stats = {
            "peer": self.peer_used,
            "snapshot_seq": snapshot_seq,
            "entries": snapshot_seq,
            "bytes": self.bytes_transferred,
            "chunks": self.chunks,
            "duration": round(duration, 6),
        }
        trace.emit(self.runtime.now, "rejoin_complete", node=self.name, **stats)
        return stats

    async def catchup_forever(self, process) -> None:
        """Anti-entropy: pull rows the live protocol hasn't executed.

        Runs until cancelled.  Each round asks a peer for rows past
        the process's applied prefix; anything returned is replayed
        into the live machine (idempotent, consecutive-checked), the
        execution cursor advanced, and the process poked so committed
        slots stacked behind the gap execute and reply as usual.
        """
        while True:
            try:
                await asyncio.sleep(CATCHUP_PERIOD)
                machine = process.machine
                rows, applied_seq, _digest = await self._request_chunk(
                    machine.applied_seq + 1
                )
                fresh = [r for r in rows if r[0] > machine.applied_seq]
                if not fresh:
                    continue
                replay_history(self.name, fresh, base=machine)
                install_prefix(process, machine)
                if hasattr(process, "_execute_ready"):
                    process._execute_ready()
                self.runtime.trace.emit(
                    self.runtime.now,
                    "catchup_applied",
                    node=self.name,
                    rows=len(fresh),
                    applied_seq=machine.applied_seq,
                )
            except asyncio.CancelledError:
                raise
            except (framing.PeerLost, OSError, ProtocolError):
                # Peer churn mid-poll: next round rotates and retries.
                self.close()
