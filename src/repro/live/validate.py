"""Cross-validate live runs against the simulator.

Two halves:

* :func:`write_live_artifact` — called by the ``repro serve``
  controller after a run: merges every node's trace records (shared
  epoch, so a timestamp sort reconstructs cluster order), streams them
  through the *same* registered probes the simulated drivers use
  (:func:`repro.harness.probes.replay_records`), and writes the result
  as a schema-v3 ``BENCH_live_<protocol>.json`` whose points sit next
  to simulated ones in any comparator.

* :func:`compare_live` — the ``repro compare --live`` body: pair each
  live point with its simulated counterpart (matched on protocol, f
  and x = batching interval; taken from a baseline artifact, or
  simulated on the fly when no baseline is given) and render the
  side-by-side latency/throughput curves with live/sim ratios.

The comparison is deliberately **informational**, not gated: live
numbers carry real-kernel scheduling noise and real crypto timings;
what the cross-check establishes is that the protocol logic driven by
a wall clock and TCP produces the same *shape* — curves that track the
simulated ones — not bit-identical scalars.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.errors import ConfigError
from repro.harness import artifact as artifact_mod
from repro.harness.probes import ProbeContext, merge_node_records, replay_records

#: Probes every live artifact point is measured by.  The recovery
#: timeline is always included: a clean run reports zeros, a chaos or
#: restart run reports detection/rejoin/outage figures, and either way
#: the artifact schema stays identical across run styles.
LIVE_POINT_PROBES = ("order-latency", "throughput", "recovery-timeline")
#: Probes added when the run injected faults.
LIVE_FAILOVER_PROBES = ("failover",)
#: On-the-fly sim counterparts keep the batch budget small: the point
#: is curve shape, not publication-grade averages.
ONTHEFLY_BATCHES = 40
ONTHEFLY_WARMUP = 5

#: Metrics rendered side by side, with their units.
_COMPARED_METRICS = (
    ("latency_mean", "s"),
    ("latency_p95", "s"),
    ("throughput", "req/s"),
)


def live_point_id(protocol: str, scheme: str, f: int,
                  batching_interval: float, seed: int) -> str:
    return f"live-order/{protocol}/{scheme}/f{f}/i{batching_interval:g}/s{seed}"


def build_live_point(
    reports: dict[str, dict],
    protocol: str,
    scheme: str,
    f: int,
    seed: int,
    batching_interval: float,
    duration: float | None,
    warmup: float,
    with_failover: bool = False,
) -> dict:
    """One schema-v3 point from a cluster's node reports."""
    records = merge_node_records(
        {name: report.get("records", ()) for name, report in reports.items()}
    )
    end = duration if duration is not None else (
        max((r.time for r in records), default=warmup)
    )
    probes = LIVE_POINT_PROBES + (LIVE_FAILOVER_PROBES if with_failover else ())
    context = ProbeContext(
        protocol=protocol,
        scheme=scheme,
        f=f,
        seed=seed,
        batching_interval=batching_interval,
        window_start=warmup,
        window_end=end,
        warmup_batches=0,
        min_samples=0,
        label=f"live {protocol} f={f}",
    )
    report = replay_records(records, probes, context)
    return {
        "id": live_point_id(protocol, scheme, f, batching_interval, seed),
        "kind": "live-order",
        "protocol": protocol,
        "scheme": scheme,
        "f": f,
        "x": batching_interval,
        "probes": list(report.probes),
        "metrics": report.metrics(),
        "wall_time_s": float(end),
        "events": report.events_processed,
        "events_per_second": (
            report.events_processed / end if end > 0 else 0.0
        ),
    }


def write_live_artifact(
    reports: dict[str, dict],
    protocol: str,
    scheme: str,
    f: int,
    seed: int,
    batching_interval: float,
    duration: float | None,
    warmup: float,
    json_dir: str | Path,
    with_failover: bool | None = None,
) -> Path:
    """Measure one live run and write ``BENCH_live_<protocol>.json``."""
    if with_failover is None:
        # A killed node never reports (it hard-exits), so also accept
        # the survivors' word that someone crashed.
        with_failover = any(report.get("crashed") for report in reports.values())
    point = build_live_point(
        reports, protocol, scheme, f, seed, batching_interval,
        duration, warmup, with_failover=with_failover,
    )
    doc = artifact_mod.from_points(
        figure=f"live_{protocol}",
        points=[point],
        params={
            "runtime": "live",
            "protocol": protocol,
            "scheme": scheme,
            "f": f,
            "seed": seed,
            "batching_interval": batching_interval,
            "duration": duration,
            "replicas": sorted(reports),
        },
        wall_time_s=float(duration or point["wall_time_s"]),
    )
    return artifact_mod.write_artifact(doc, json_dir)


def _sim_counterpart(point: dict, baseline) -> dict | None:
    """The simulated point matching a live one, from a baseline
    artifact: same protocol, f, and x (the batching interval)."""
    for candidate in baseline.points:
        if (
            candidate.get("kind") in ("order", "live-order")
            and candidate.get("protocol") == point["protocol"]
            and candidate.get("f") == point["f"]
            and abs(float(candidate.get("x", -1)) - float(point["x"])) < 1e-9
        ):
            return candidate
    return None


def _simulate_counterpart(point: dict) -> dict:
    """No baseline given: run the simulated point on the fly."""
    from repro.harness.experiments import run_order_experiment

    report = run_order_experiment(
        point["protocol"],
        point["scheme"],
        batching_interval=float(point["x"]),
        f=int(point["f"]),
        n_batches=ONTHEFLY_BATCHES,
        warmup_batches=ONTHEFLY_WARMUP,
    )
    return {
        "id": f"sim-onthefly/{point['protocol']}/f{point['f']}/i{point['x']:g}",
        "kind": "order",
        "protocol": report.protocol,
        "scheme": report.scheme,
        "f": report.f,
        "x": point["x"],
        "probes": list(report.probes),
        "metrics": report.metrics(),
    }


def compare_live(
    live_path: str | Path,
    baseline_path: str | Path | None = None,
    out=None,
) -> int:
    """Render live-vs-simulated curves for every live point.

    Returns 0 when every live point found (or produced) a simulated
    counterpart, 1 otherwise.
    """
    if out is None:
        out = sys.stdout
    live = artifact_mod.load_artifact(live_path)
    baseline = (
        artifact_mod.load_artifact(baseline_path)
        if baseline_path is not None else None
    )
    missing = 0
    print(f"live artifact:     {live_path} (figure {live.figure})", file=out)
    print(
        f"sim counterpart:   "
        f"{baseline_path if baseline_path is not None else 'simulated on the fly'}",
        file=out,
    )
    for point in live.points:
        if baseline is not None:
            sim = _sim_counterpart(point, baseline)
        else:
            sim = _simulate_counterpart(point)
        header = (
            f"\n{point['protocol']} f={point['f']} "
            f"x={point['x']:g} ({point['id']})"
        )
        print(header, file=out)
        if sim is None:
            missing += 1
            print("  no simulated counterpart in the baseline", file=out)
            continue
        print(f"  {'metric':<16} {'live':>12} {'sim':>12} {'live/sim':>9}", file=out)
        for metric, unit in _COMPARED_METRICS:
            live_value = point["metrics"].get(metric)
            sim_value = sim["metrics"].get(metric)
            if live_value is None or sim_value is None:
                continue
            ratio = (live_value / sim_value) if sim_value else float("inf")
            print(
                f"  {metric:<16} {live_value:>10.5f} {unit:<2}"
                f" {sim_value:>9.5f} {unit:<2} {ratio:>8.2f}x",
                file=out,
            )
    if missing:
        print(f"\n{missing} live point(s) had no simulated counterpart", file=out)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro compare --live",
        description="live-vs-simulated order latency / throughput",
    )
    parser.add_argument("live", help="BENCH_live_*.json from repro serve")
    parser.add_argument("baseline", nargs="?", default=None,
                        help="simulated artifact (omit to simulate on the fly)")
    args = parser.parse_args(argv)
    try:
        return compare_live(args.live, args.baseline)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
