"""Declarative network-fault injection for the live transport.

The simulator injects faults by name (:data:`repro.failures.injector.
FAULT_KINDS` — ``crash``, ``delay_surge``...); this module is the live
counterpart for the *network* half of that vocabulary: named, windowed
rules that a ``repro serve`` controller parses once, ships to every
node inside the start spec, and each node's :class:`~repro.live.
transport.LiveTransport` consults on its send path.  Sim and live
scenarios therefore share one fault-description style — a kind, a
target, an activation time and a duration — even though the mechanisms
differ (the simulator mutates delay models and fault plans; the live
layer drops or delays real frames).

Three kinds, one flag each on ``repro serve``:

``partition`` (``--partition a,b|c,d:T:D``)
    Split the replica set into groups for the window ``[T, T+D)``;
    frames crossing a group boundary are dropped.  Names absent from
    every group (clients, unlisted replicas) stay connected to all
    groups — the paper's network stays fair-lossy for them.

``drop`` (``--drop p:RATE:T:D``)
    Drop each frame to or from replica ``p`` with probability RATE
    during the window (``*`` targets every link).

``delay`` (``--delay-jitter p:JITTER:T:D``)
    Hold each frame to or from ``p`` for ``uniform(0, JITTER)``
    seconds during the window — reordering across links, the classic
    asynchrony stressor.

Rules travel in the spec as plain tuples (:meth:`ChaosRule.to_row` /
:func:`rules_from_rows`) so the frame codec never learns new types,
and every node rebuilds an identical schedule.  Randomised decisions
(drop, jitter) draw from a per-node seeded RNG, so a run's chaos is
reproducible given the spec's seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ConfigError

#: The live network-fault vocabulary (the ``kind`` values rules use).
NET_FAULT_KINDS = ("partition", "drop", "delay")

#: ``action()`` verdicts.
PASS = ("pass", 0.0)
DROP = ("drop", 0.0)


@dataclass(frozen=True)
class ChaosRule:
    """One windowed network fault.

    ``groups`` is only meaningful for ``partition``; ``target`` /
    ``rate`` / ``jitter`` only for ``drop`` and ``delay``.  The window
    is ``[start, start + duration)`` in cluster time (seconds since
    the agreed epoch).
    """

    kind: str
    start: float
    duration: float
    groups: tuple[tuple[str, ...], ...] = ()
    target: str = ""
    rate: float = 0.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in NET_FAULT_KINDS:
            raise ConfigError(
                f"unknown network fault kind {self.kind!r}; known: "
                f"{NET_FAULT_KINDS}"
            )

    def active(self, now: float) -> bool:
        return self.start <= now < self.start + self.duration

    def to_row(self) -> tuple:
        """Spec-serializable form (plain tuples only)."""
        return (
            self.kind, self.start, self.duration,
            tuple(tuple(g) for g in self.groups),
            self.target, self.rate, self.jitter,
        )


def rule_from_row(row: tuple) -> ChaosRule:
    kind, start, duration, groups, target, rate, jitter = row
    return ChaosRule(
        kind=kind, start=float(start), duration=float(duration),
        groups=tuple(tuple(g) for g in groups),
        target=str(target), rate=float(rate), jitter=float(jitter),
    )


def rules_from_rows(rows) -> tuple[ChaosRule, ...]:
    return tuple(rule_from_row(row) for row in rows or ())


# ----------------------------------------------------------------------
# Flag parsing (the serve controller's surface)
# ----------------------------------------------------------------------
def _window(parts: list[str], flag: str, spec: str) -> tuple[float, float]:
    try:
        start = float(parts[0])
        duration = float(parts[1]) if len(parts) > 1 else float("inf")
    except (ValueError, IndexError):
        raise ConfigError(f"{flag} wants :T[:D] at the end, got {spec!r}") from None
    if start < 0 or duration <= 0:
        raise ConfigError(f"{flag}: window must have T >= 0 and D > 0 ({spec!r})")
    return start, duration


def parse_partition(spec: str) -> ChaosRule:
    """``a,b|c,d:T[:D]`` — groups separated by ``|``, comma members."""
    head, *window = spec.split(":")
    groups = tuple(
        tuple(name for name in group.split(",") if name)
        for group in head.split("|")
    )
    if len(groups) < 2 or any(not g for g in groups):
        raise ConfigError(
            f"--partition wants at least two non-empty groups "
            f"(a,b|c,d:T:D), got {spec!r}"
        )
    flat = [name for group in groups for name in group]
    if len(flat) != len(set(flat)):
        raise ConfigError(f"--partition groups overlap in {spec!r}")
    start, duration = _window(window, "--partition", spec)
    return ChaosRule(
        kind="partition", start=start, duration=duration, groups=groups
    )


def parse_drop(spec: str) -> ChaosRule:
    """``p:RATE:T[:D]`` — drop frames to/from ``p`` at RATE."""
    parts = spec.split(":")
    if len(parts) < 3:
        raise ConfigError(f"--drop wants NAME:RATE:T[:D], got {spec!r}")
    try:
        rate = float(parts[1])
    except ValueError:
        raise ConfigError(f"--drop rate must be a float in {spec!r}") from None
    if not 0.0 < rate <= 1.0:
        raise ConfigError(f"--drop rate must be in (0, 1], got {rate}")
    start, duration = _window(parts[2:], "--drop", spec)
    return ChaosRule(
        kind="drop", start=start, duration=duration,
        target=parts[0], rate=rate,
    )


def parse_delay_jitter(spec: str) -> ChaosRule:
    """``p:JITTER:T[:D]`` — hold frames to/from ``p`` up to JITTER s."""
    parts = spec.split(":")
    if len(parts) < 3:
        raise ConfigError(f"--delay-jitter wants NAME:JITTER:T[:D], got {spec!r}")
    try:
        jitter = float(parts[1])
    except ValueError:
        raise ConfigError(
            f"--delay-jitter jitter must be a float in {spec!r}"
        ) from None
    if jitter <= 0:
        raise ConfigError(f"--delay-jitter jitter must be > 0, got {jitter}")
    start, duration = _window(parts[2:], "--delay-jitter", spec)
    return ChaosRule(
        kind="delay", start=start, duration=duration,
        target=parts[0], jitter=jitter,
    )


def parse_chaos_args(
    partitions: list[str], drops: list[str], jitters: list[str]
) -> tuple[ChaosRule, ...]:
    """All three repeatable serve flags into one rule tuple."""
    rules = [parse_partition(s) for s in partitions or ()]
    rules += [parse_drop(s) for s in drops or ()]
    rules += [parse_delay_jitter(s) for s in jitters or ()]
    return tuple(rules)


def validate_targets(rules: tuple[ChaosRule, ...], names) -> None:
    """Reject rules naming processes the deployment does not have."""
    known = set(names)
    for rule in rules:
        targets = (
            [n for g in rule.groups for n in g]
            if rule.kind == "partition"
            else ([] if rule.target == "*" else [rule.target])
        )
        for target in targets:
            if target not in known:
                raise ConfigError(
                    f"chaos target {target!r} is not deployed; processes: "
                    f"{sorted(known)}"
                )


# ----------------------------------------------------------------------
# The per-node schedule the transport consults
# ----------------------------------------------------------------------
@dataclass
class ChaosSchedule:
    """One node's view of the cluster's chaos rules.

    ``action(now, src, dst)`` folds every active rule into a single
    verdict: ``("drop", 0)``, ``("delay", seconds)`` or ``("pass",
    0)``.  Drops win over delays; delays accumulate across rules (two
    jitter windows on the same link add up).
    """

    rules: tuple[ChaosRule, ...]
    rng: random.Random = field(default_factory=random.Random)
    frames_dropped: int = 0
    frames_delayed: int = 0

    def action(self, now: float, src: str, dst: str) -> tuple[str, float]:
        delay = 0.0
        for rule in self.rules:
            if not rule.active(now):
                continue
            if rule.kind == "partition":
                if self._crosses(rule, src, dst):
                    self.frames_dropped += 1
                    return DROP
            elif rule.kind == "drop":
                if self._targets(rule, src, dst) and self.rng.random() < rule.rate:
                    self.frames_dropped += 1
                    return DROP
            elif rule.kind == "delay":
                if self._targets(rule, src, dst):
                    delay += self.rng.uniform(0.0, rule.jitter)
        if delay > 0.0:
            self.frames_delayed += 1
            return ("delay", delay)
        return PASS

    @staticmethod
    def _crosses(rule: ChaosRule, src: str, dst: str) -> bool:
        src_group = dst_group = None
        for index, group in enumerate(rule.groups):
            if src in group:
                src_group = index
            if dst in group:
                dst_group = index
        # Names outside every group (clients) see all groups.
        if src_group is None or dst_group is None:
            return False
        return src_group != dst_group

    @staticmethod
    def _targets(rule: ChaosRule, src: str, dst: str) -> bool:
        return rule.target == "*" or rule.target in (src, dst)


def schedule_for_node(
    rows, node_name: str, seed: int
) -> ChaosSchedule | None:
    """Build one node's schedule from spec rows (``None`` when empty).

    The RNG is seeded from ``(seed, node_name)`` so each node draws an
    independent but reproducible decision stream.
    """
    rules = rules_from_rows(rows)
    if not rules:
        return None
    return ChaosSchedule(rules=rules, rng=random.Random(f"{seed}:{node_name}:chaos"))
