"""Heartbeat-based failure detection and quorum parking for live nodes.

Every live replica runs one :class:`HeartbeatMonitor`: it beacons
``("hb", name)`` frames to every peer on a configurable interval and
tracks when it last heard *anything* from each peer (the transport
reports all inbound frames, so a busy link never needs its beacons to
prove liveness).  A peer silent past the timeout is **suspected** —
a ``peer_suspected`` record with the observed silence goes into the
node's trace, which is where the ``recovery-timeline`` probe reads
detection latency from.  A suspected peer that speaks again (a paused
replica resuming, a partition healing, a restarted replica rejoining)
is **restored** with a ``peer_restored`` record carrying the outage
length.

The monitor also embodies the cluster's graceful degradation: when
fewer than ``quorum`` members (self plus unsuspected peers) remain
alive, no order batch can commit, so the node **parks** — it emits a
structured ``quorum_lost`` record (reason, who is suspected, how many
are needed) and reports the park to its ``on_park`` hook instead of
letting the operator diagnose a silent hang.  When enough peers return
it emits ``quorum_restored`` with the outage duration and resumes.
Parking is advisory by design: the order protocols are already safe
under quorum loss (they simply cannot commit), so the monitor's job is
to *name* the condition, not to add a second safety mechanism.

This is the live counterpart of the simulator's suspicion machinery
(:mod:`repro.core.suspicion`): same vocabulary — silence, suspicion,
confirmation — but over wall-clock TCP instead of modelled delays.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Iterable

from repro.live.transport import LiveTransport

#: Default beacon interval and suspicion timeout (seconds).
DEFAULT_INTERVAL = 0.25
DEFAULT_TIMEOUT = 1.0


class HeartbeatMonitor:
    """Failure detector for one live node.

    Parameters
    ----------
    name:
        This node's name (stamped into every emitted trace record so
        cluster-merged traces keep their provenance).
    peers:
        Replica names to monitor (not clients).
    transport:
        The node's :class:`LiveTransport`; the monitor installs itself
        as its ``peer_activity`` hook and beacons through ``send_raw``.
    runtime:
        The node's clock/trace driver (``now`` + ``trace``).
    quorum:
        Members (self included) needed for commit progress; fewer
        alive parks the node.
    """

    def __init__(
        self,
        name: str,
        peers: Iterable[str],
        transport: LiveTransport,
        runtime,
        interval: float = DEFAULT_INTERVAL,
        timeout: float = DEFAULT_TIMEOUT,
        quorum: int = 1,
        on_park: Callable[[bool, dict], None] | None = None,
    ) -> None:
        self.name = name
        self.peers = tuple(peers)
        self.transport = transport
        self.runtime = runtime
        self.interval = interval
        self.timeout = timeout
        self.quorum = quorum
        self.on_park = on_park
        self.last_seen: dict[str, float] = {}
        self.suspected: set[str] = set()
        self.suspicions = 0
        self.restores = 0
        self.parked = False
        self.parked_since: float | None = None
        self.parked_total = 0.0
        self._tasks: list[asyncio.Task] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Install the activity hook and launch the beacon/check loops.

        Every peer starts with a fresh grace period: a cluster member
        that never speaks at all is suspected ``timeout`` seconds after
        start, not instantly.
        """
        now = self.runtime.now
        for peer in self.peers:
            self.last_seen.setdefault(peer, now)
        self.transport.peer_activity = self.note_alive
        loop = asyncio.get_running_loop()
        self._tasks = [
            loop.create_task(self._beat_loop()),
            loop.create_task(self._check_loop()),
        ]

    def stop(self) -> None:
        for task in self._tasks:
            task.cancel()
        self._tasks = []
        if self.parked and self.parked_since is not None:
            self.parked_total += max(0.0, self.runtime.now - self.parked_since)
            self.parked = False

    # ------------------------------------------------------------------
    # Liveness evidence
    # ------------------------------------------------------------------
    def note_alive(self, peer: str) -> None:
        """Any inbound frame from ``peer`` is proof of life."""
        if peer not in self.last_seen:
            return  # clients and state-transfer handles are not members
        now = self.runtime.now
        self.last_seen[peer] = now
        if peer in self.suspected:
            self.suspected.discard(peer)
            self.restores += 1
            self.runtime.trace.emit(
                now, "peer_restored", node=self.name, peer=peer
            )
            self._reconsider_quorum(now)

    def check_once(self) -> None:
        """One suspicion sweep (the check loop's body, callable
        directly from tests without running the loops)."""
        now = self.runtime.now
        for peer, seen in self.last_seen.items():
            if peer in self.suspected:
                continue
            silence = now - seen
            if silence > self.timeout:
                self.suspected.add(peer)
                self.suspicions += 1
                self.runtime.trace.emit(
                    now, "peer_suspected",
                    node=self.name, peer=peer, silence=silence,
                )
        self._reconsider_quorum(now)

    @property
    def alive(self) -> int:
        """Members currently believed up, self included."""
        return 1 + len(self.last_seen) - len(self.suspected)

    def _reconsider_quorum(self, now: float) -> None:
        if self.alive < self.quorum and not self.parked:
            self.parked = True
            self.parked_since = now
            detail = {
                "node": self.name,
                "alive": self.alive,
                "needed": self.quorum,
                "suspected": sorted(self.suspected),
                "reason": "quorum lost: commit progress impossible until "
                          "suspected members return",
            }
            self.runtime.trace.emit(now, "quorum_lost", **detail)
            if self.on_park is not None:
                self.on_park(True, detail)
        elif self.alive >= self.quorum and self.parked:
            self.parked = False
            outage = max(0.0, now - (self.parked_since or now))
            self.parked_total += outage
            detail = {"node": self.name, "alive": self.alive, "outage": outage}
            self.runtime.trace.emit(now, "quorum_restored", **detail)
            if self.on_park is not None:
                self.on_park(False, detail)

    # ------------------------------------------------------------------
    # Loops
    # ------------------------------------------------------------------
    async def _beat_loop(self) -> None:
        frame = ("hb", self.name)
        try:
            while True:
                for peer in self.peers:
                    self.transport.send_raw(peer, frame)
                await asyncio.sleep(self.interval)
        except asyncio.CancelledError:
            return

    async def _check_loop(self) -> None:
        # Sweep at half the beacon interval so detection latency is
        # bounded by timeout + interval/2, not timeout + interval.
        period = max(self.interval / 2.0, 0.01)
        try:
            while True:
                await asyncio.sleep(period)
                self.check_once()
        except asyncio.CancelledError:
            return

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Counters for the node's report frame."""
        return {
            "suspicions": self.suspicions,
            "suspicions_cleared": self.restores,
            "suspected_now": sorted(self.suspected),
            "parked_s": round(self.parked_total, 6),
        }
