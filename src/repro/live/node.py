"""One live replica: a protocol process on a wall clock.

:class:`LiveRuntime` is the wall-clock implementation of the protocol
driver surface (see :mod:`repro.protocols.runtime`): ``now`` is
seconds since the cluster's agreed start epoch, timers are
``loop.call_later`` handles wrapped to the simulator's
``.cancel()``/``.active`` contract, and ``trace`` is an ordinary
:class:`~repro.sim.trace.Tracer` so live runs produce the same records
probes consume.

:func:`run_node` is the ``python -m repro serve --join`` body: join
the controller, build the node's deployment, run the hosted process
until told to stop, report trace + committed history back.

The node builds the protocol plugin's **full** deployment (every
process object) but hosts only one: the others are inert *mirrors*
never started, kept because SC/SCR wiring points suspicion oracles at
the counterpart process object.  Arming a mirror's fault plan from the
cluster-wide declarative fault schedule makes
``other.fault.active(now)`` the live embodiment of the paper's
assumption 3(a)(i): the schedule is known cluster-wide, so a correct
member's time-domain suspicion of a scheduled crash is confirmed and
never false.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time
from dataclasses import dataclass
from typing import Any, Callable

import repro.harness.probes as probe_registry
import repro.protocols as protocols
from repro.calibration import paper_testbed
from repro.crypto.dealer import TrustedDealer
from repro.errors import ConfigError, SimulationError
from repro.failures.faults import CrashFault
from repro.live import chaos as chaos_mod
from repro.live import heartbeat as heartbeat_mod
from repro.live import recovery as recovery_mod
from repro.live.transport import LiveTransport
from repro.net import framing
from repro.protocols.base import Deployment
from repro.sim.trace import Tracer

#: Trace kinds a live node retains: the union of the paper probes'
#: needs, so live artifacts are built from the same records.
LIVE_PROBES = ("order-latency", "throughput", "failover", "recovery-timeline")

#: Seconds after its scheduled crash activation that a killed node
#: hard-exits, turning protocol-level silence into real TCP death so
#: peers' reconnect machinery is exercised too.
KILL_EXIT_GRACE = 0.5


@dataclass
class PauseFault(CrashFault):
    """A windowed crash: silent between ``active_from`` and ``until``,
    correct again afterwards (the ``--pause-after`` fault)."""

    until: float = float("inf")

    def active(self, now: float) -> bool:
        return self.active_from <= now < self.until

    def is_crashed(self, now: float) -> bool:
        return self.active(now)


class LiveTimer:
    """A pending wall-clock timer with the simulator handle contract."""

    __slots__ = ("_handle", "_state")

    def __init__(self) -> None:
        self._handle = None
        self._state = "pending"

    @property
    def active(self) -> bool:
        return self._state == "pending"

    @property
    def cancelled(self) -> bool:
        return self._state == "cancelled"

    def cancel(self) -> None:
        if self._state != "pending":
            raise SimulationError(f"cannot cancel a {self._state} timer")
        self._state = "cancelled"
        if self._handle is not None:
            self._handle.cancel()


class LiveRuntime:
    """Wall-clock driver: the :class:`~repro.sim.kernel.Simulator`
    surface protocol code reads, minus the virtual time."""

    def __init__(
        self, loop: asyncio.AbstractEventLoop, trace: Tracer | None = None
    ) -> None:
        self.loop = loop
        self.trace = trace if trace is not None else Tracer()
        # Until the cluster start epoch is known, t=0 is "now".
        self._loop_epoch = loop.time()

    def set_epoch(self, epoch_unix: float) -> None:
        """Anchor t=0 at a unix timestamp all nodes agreed on."""
        self._loop_epoch = self.loop.time() + (epoch_unix - time.time())

    @property
    def now(self) -> float:
        return self.loop.time() - self._loop_epoch

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> LiveTimer:
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        timer = LiveTimer()
        timer._handle = self.loop.call_later(delay, self._fire, timer, callback, args)
        return timer

    def schedule_at(
        self, at: float, callback: Callable[..., None], *args: Any
    ) -> LiveTimer:
        timer = LiveTimer()
        timer._handle = self.loop.call_at(
            self._loop_epoch + at, self._fire, timer, callback, args
        )
        return timer

    @staticmethod
    def _fire(timer: LiveTimer, callback: Callable[..., None], args: tuple) -> None:
        if timer._state != "pending":
            return
        timer._state = "fired"
        callback(*args)


def live_tracer() -> Tracer:
    """A tracer keeping exactly what the live probes consume."""
    return Tracer(keep_kinds=probe_registry.kinds_union(LIVE_PROBES))


def config_from_spec(spec: dict):
    """Rebuild the protocol config every node derives from the start
    spec — built independently but identically on each node."""
    plugin = protocols.get(spec["protocol"])
    return plugin.configure(
        scheme=spec["scheme"],
        f=spec["f"],
        batching_interval=spec["batching_interval"],
        heartbeat_interval=spec["heartbeat_interval"],
        view_timeout=spec["view_timeout"],
        send_replies=True,
    )


def build_node(
    spec: dict,
    replica_id: str,
    runtime: LiveRuntime,
    transport: LiveTransport,
):
    """Build this node's deployment and arm the fault schedule.

    Returns this node's process.  The caller hosts it on the transport
    — immediately for a fresh start, only after snapshot install for a
    rejoin: frames to an unhosted name are dropped, which is exactly
    the quarantine a replica mid state-transfer needs.  The trusted
    dealer is seeded from the spec, so every node independently
    provisions identical simulated keys and fail-signal blanks — no
    key distribution step.
    """
    plugin = protocols.get(spec["protocol"])
    config = config_from_spec(spec)
    names = plugin.process_names(config)
    if replica_id not in names:
        raise ConfigError(
            f"unknown replica id {replica_id!r}; this deployment has {names}"
        )
    dealer = TrustedDealer(config.scheme, mode="simulated", seed=spec["seed"])
    provider = dealer.provision(list(names))
    deployment = Deployment(
        sim=runtime,
        network=transport,
        config=config,
        calibration=paper_testbed(),
        provider=provider,
        dealer=dealer,
    )
    plugin.build(deployment)
    for target, kind, after, duration in spec.get("faults", ()):
        process = deployment.processes.get(target)
        if process is None:
            continue
        if kind == "kill":
            process.fault = CrashFault(active_from=after)
        elif kind == "pause":
            process.fault = PauseFault(active_from=after, until=after + duration)
    return deployment.processes[replica_id]


async def run_node(argv_ns) -> int:
    """Join a controller and run one replica until stopped.

    ``argv_ns`` carries ``join`` (controller HOST:PORT), ``replica_id``,
    ``bind`` (data interface) and ``auth_key``.  Whether this is a
    fresh start or a post-crash rejoin is the *controller's* call: a
    restarted replica runs the exact same command line, and the spec it
    receives carries ``rejoin: True`` plus the live peers' current
    addresses, so the node fetches the committed prefix before hosting
    its process.
    """
    loop = asyncio.get_running_loop()
    auth_key = framing.resolve_auth_key(argv_ns.auth_key)
    host, _, port = argv_ns.join.rpartition(":")

    transport = LiveTransport(argv_ns.replica_id, auth_key=auth_key)
    data_host, data_port = await transport.start_listener(argv_ns.bind, 0)

    reader, writer = await framing.open_connection_with_retry(
        host, int(port), framing.STARTUP
    )
    if auth_key is not None:
        await framing.answer_challenge_async(reader, writer, auth_key)
    framing.write_frame(
        writer, ("join", argv_ns.replica_id, data_host, data_port, os.getpid())
    )
    await writer.drain()

    start = await framing.read_frame(reader)
    if not (isinstance(start, tuple) and start[0] == "start"):
        raise ConfigError(f"controller sent {start!r} instead of a start frame")
    spec = start[1]
    rejoining = bool(spec.get("rejoin"))

    runtime = LiveRuntime(loop, trace=live_tracer())
    transport.addresses.update(
        {name: tuple(addr) for name, addr in spec["addresses"].items()
         if name != argv_ns.replica_id}
    )
    transport.clock = lambda: runtime.now
    transport.chaos = chaos_mod.schedule_for_node(
        spec.get("chaos"), argv_ns.replica_id, spec["seed"]
    )
    process = build_node(spec, argv_ns.replica_id, runtime, transport)
    runtime.set_epoch(spec["epoch"])

    # Every node serves committed-prefix snapshots to rejoining peers.
    recovery_mod.serve_state_transfer(transport, process)

    # Stop can arrive during any long-running work — a state transfer
    # included — as an operator signal or a controller frame, so both
    # feed one event the whole node body races against, and the control
    # loop runs from the first moment (it also repoints peer addresses
    # while a transfer is still in flight).
    stopping = asyncio.Event()
    for signo in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(signo, stopping.set)

    async def control_loop() -> None:
        try:
            while True:
                frame = await framing.read_frame(reader)
                if not (isinstance(frame, tuple) and frame):
                    continue
                if frame[0] == "stop":
                    stopping.set()
                    return
                if frame[0] == "addr" and len(frame) == 4:
                    # A peer restarted on a new ephemeral port.
                    _, peer, peer_host, peer_port = frame
                    if peer != argv_ns.replica_id:
                        transport.update_address(peer, peer_host, int(peer_port))
        except framing.PeerLost:
            stopping.set()  # controller died: nothing left to run for
            return

    control = loop.create_task(control_loop())

    rejoin_stats: dict | None = None
    fetcher: recovery_mod.PrefixFetcher | None = None
    catchup: asyncio.Task | None = None
    aborted = False
    if rejoining:
        fetcher = recovery_mod.PrefixFetcher(
            argv_ns.replica_id,
            list(spec["addresses"]),
            transport.addresses,
            auth_key,
            runtime,
        )
        fetch = loop.create_task(fetcher.fetch_and_install(process))
        stop_wait = loop.create_task(stopping.wait())
        await asyncio.wait(
            {fetch, stop_wait}, return_when=asyncio.FIRST_COMPLETED
        )
        stop_wait.cancel()
        if fetch.done() and not fetch.cancelled() and fetch.exception() is None:
            rejoin_stats = fetch.result()
        else:
            # Stopped or failed mid-transfer: the candidate machine
            # dies with the fetch task — the partial snapshot is
            # discarded, never installed — and the node still reports.
            aborted = True
            exc = (
                fetch.exception()
                if fetch.done() and not fetch.cancelled() else None
            )
            fetch.cancel()
            fetcher.close()
            rejoin_stats = {
                "aborted": True,
                "error": repr(exc) if exc is not None else "stopped",
            }

    peers = [n for n in spec["addresses"] if n != argv_ns.replica_id]
    monitor = heartbeat_mod.HeartbeatMonitor(
        argv_ns.replica_id,
        peers,
        transport,
        runtime,
        interval=spec.get("hb_interval", heartbeat_mod.DEFAULT_INTERVAL),
        timeout=spec.get("hb_timeout", heartbeat_mod.DEFAULT_TIMEOUT),
        quorum=len(spec["addresses"]) - spec["f"],
    )

    if not aborted:
        # Hosting is the commit point: from here frames dispatch into
        # the process — for a rejoin, on top of the installed prefix.
        transport.host(argv_ns.replica_id)
        if rejoining:
            process.start()
            catchup = loop.create_task(fetcher.catchup_forever(process))
        else:
            runtime.schedule_at(max(0.0, runtime.now), process.start)
        monitor.start()

        # A scheduled kill of *this* node eventually becomes a real
        # process death, not just protocol silence.  (A rejoin spec has
        # its own kills stripped by the controller.)
        for target, kind, after, _duration in spec.get("faults", ()):
            if kind == "kill" and target == argv_ns.replica_id:
                runtime.schedule_at(after + KILL_EXIT_GRACE, os._exit, 0)

        await stopping.wait()

    control.cancel()
    monitor.stop()
    if catchup is not None:
        catchup.cancel()
    if fetcher is not None:
        fetcher.close()

    chaos_stats = None
    if transport.chaos is not None:
        chaos_stats = {
            "frames_dropped": transport.chaos.frames_dropped,
            "frames_delayed": transport.chaos.frames_delayed,
        }
    report = {
        "replica": argv_ns.replica_id,
        "records": [
            (r.time, r.kind, dict(r.fields)) for r in runtime.trace.records
        ],
        "history": [
            (seq, digest.hex()) for seq, digest in process.machine.history
        ],
        "state_digest": process.machine.state_digest().hex(),
        "crashed": bool(process.fault.is_crashed(runtime.now)),
        "frames_delivered": transport.frames_delivered,
        "messages_sent": transport.messages_sent,
        "heartbeat": monitor.summary(),
        "rejoin": rejoin_stats,
        "chaos": chaos_stats,
    }
    try:
        framing.write_frame(writer, ("report", report))
        await writer.drain()
    except (OSError, ConnectionError):
        pass
    writer.close()
    await transport.close()
    return 0
