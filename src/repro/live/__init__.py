"""The live execution plane: real replicas over TCP/asyncio.

A second backend for the protocol plugins, next to the discrete-event
kernel: :mod:`repro.live.node` hosts one order process per OS process
on an asyncio loop with a wall clock, :mod:`repro.live.transport`
replaces the simulated network with length-prefixed pickle frames over
TCP (shared codec: :mod:`repro.net.framing`), :mod:`repro.live.cluster`
is the ``python -m repro serve`` controller (spawn or join an
n-replica cluster, declarative fault injection, graceful shutdown,
prefix-agreement verification), :mod:`repro.live.client` the
``python -m repro load`` open-loop driver, and
:mod:`repro.live.validate` the ``repro compare --live`` cross-check of
live against simulated latency/throughput curves.
"""
