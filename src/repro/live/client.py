"""``python -m repro load``: open-loop client driver for a live cluster.

Fetches the running cluster's spec from the ``repro serve`` control
port, dials every replica's data listener, and issues
:class:`~repro.core.requests.ClientRequest` frames on the same
open-loop arrival stream the simulator uses
(:func:`repro.harness.workload.arrival_times` on a seeded RNG — the
spacing law, not just the mean rate, matches the simulated workload).
A request counts as committed once ``f + 1`` distinct replicas return
matching :class:`~repro.core.replies.Reply` frames (the cluster runs
with ``send_replies``), and its commit latency is the wall-clock span
from issue to the ``f+1``-th matching reply.

Prints per-run latency/throughput statistics as a JSON line, and with
``--json`` appends the raw per-request samples for ``repro compare
--live``.

With ``--population FILE`` the driver replays an *aggregated*
population stream instead: the same
:func:`repro.harness.population.population_stream` the simulator
schedules from, seeded identically (``RngRegistry(seed)`` with the
same stream names), so the arrival stream — times, classes and
sampled client ids — is bit-identical to the simulated one for a
shared seed (both sides publish a
:class:`~repro.harness.population.StreamDigest`).  Requests carry the
sampled virtual client id; the replicas learn a return route for each
id from the connection it arrived on, and the driver's transport
catches every reply regardless of which virtual id it addresses.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import time
from pathlib import Path

from repro.core.replies import Reply, ReplyTracker
from repro.core.requests import ClientRequest
from repro.errors import ConfigError, ReproError
from repro.harness.population import (
    StreamDigest,
    population_from_dict,
    population_stream,
)
from repro.harness.workload import arrival_times
from repro.live.transport import LiveTransport
from repro.net import framing
from repro.sim.rng import RngRegistry

#: How long after the last arrival the driver keeps collecting replies.
DRAIN_GRACE = 2.0


class LoadClient:
    """The actor a :class:`LiveTransport` dispatches replies into."""

    def __init__(self, name: str, f: int) -> None:
        self.name = name
        self.f = f
        self.replies = ReplyTracker(f)
        self.issue_times: dict[int, float] = {}
        self.latencies: list[float] = []
        self.commit_times: list[float] = []

    def on_message(self, sender: str, payload) -> None:
        if isinstance(payload, Reply) and payload.client == self.name:
            now = time.monotonic()
            if self.replies.note_reply(payload, now):
                issued_at = self.issue_times.get(payload.req_id)
                if issued_at is not None:
                    self.latencies.append(now - issued_at)
                    self.commit_times.append(now)


class PopulationLoadClient:
    """Reply sink for a population run: many virtual client ids, one
    connection.  Installed as the transport's ``catch_all`` so replies
    addressed to any sampled id land here; completion is tracked per
    ``(client, req_id)`` by the same f+1 matching-reply rule."""

    def __init__(self, name: str, f: int) -> None:
        self.name = name
        self.f = f
        self.replies = ReplyTracker(f)
        self.issue_times: dict[tuple[str, int], float] = {}
        self.latencies: list[float] = []
        self.commit_times: list[float] = []

    def on_message(self, sender: str, payload) -> None:
        if isinstance(payload, Reply):
            now = time.monotonic()
            if self.replies.note_reply(payload, now):
                issued_at = self.issue_times.pop(
                    (payload.client, payload.req_id), None
                )
                if issued_at is not None:
                    self.latencies.append(now - issued_at)
                    self.commit_times.append(now)


async def fetch_spec(control: str, auth_key: bytes | None) -> dict:
    """Ask the controller for the running cluster's start spec.

    The dial retries on the shared jittered-backoff policy
    (:data:`repro.net.framing.STARTUP`): load drivers routinely race
    the controller's bind (the CI smoke jobs launch both at once), so
    a not-yet-listening cluster is a reason to wait, not to fail.  A
    controller that never appears surfaces as a clean
    :class:`~repro.net.framing.PeerLost` once the budget is spent.
    """
    host, _, port = control.rpartition(":")
    reader, writer = await framing.open_connection_with_retry(
        host, int(port), framing.STARTUP
    )
    try:
        if auth_key is not None:
            await framing.answer_challenge_async(reader, writer, auth_key)
        framing.write_frame(writer, ("spec?",))
        await writer.drain()
        frame = await framing.read_frame(reader)
    finally:
        writer.close()
    if not (isinstance(frame, tuple) and frame[0] == "spec"):
        raise ReproError(f"controller sent {frame!r} instead of a spec")
    return frame[1]


def _write_summary_file(path: str, summary: dict) -> None:
    """Synchronous summary dump, always invoked off the event loop."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")


def percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[idx]


def load_population(path: str | Path):
    """A :class:`~repro.harness.population.PopulationSpec` from a JSON
    or TOML file — either a bare population block or a document with a
    ``population`` key (a scenario spec file works verbatim)."""
    path = Path(path)
    if not path.exists():
        raise ConfigError(f"population file not found: {path}")
    if path.suffix == ".toml":
        import tomllib

        try:
            data = tomllib.loads(path.read_text())
        except tomllib.TOMLDecodeError as exc:
            raise ConfigError(f"bad TOML in {path}: {exc}") from None
    elif path.suffix == ".json":
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ConfigError(f"bad JSON in {path}: {exc}") from None
    else:
        raise ConfigError(
            f"unknown population file type {path.suffix!r} (use .json or .toml)"
        )
    if isinstance(data.get("population"), dict):
        data = data["population"]
    return population_from_dict(data)


async def run_load(args) -> int:
    auth_key = framing.resolve_auth_key(args.auth_key)
    spec = await fetch_spec(args.control, auth_key)
    replicas = sorted(spec["addresses"])
    request_bytes = int(spec.get("request_bytes", 64))

    if args.population is not None:
        return await run_population_load(args, spec, auth_key, request_bytes)

    client = LoadClient(args.client_id, spec["f"])
    transport = LiveTransport(
        args.client_id,
        addresses={name: tuple(addr) for name, addr in spec["addresses"].items()},
        auth_key=auth_key,
    )
    transport.attach(client)
    transport.host(args.client_id)

    rng = random.Random(args.seed) if args.spacing == "poisson" else None
    schedule = list(arrival_times(args.rate, args.duration, args.spacing, rng))
    start = time.monotonic()
    next_id = 1
    for at in schedule:
        delay = (start + at) - time.monotonic()
        if delay > 0:
            await asyncio.sleep(delay)
        request = ClientRequest(
            client=args.client_id, req_id=next_id, size_bytes=request_bytes
        )
        client.issue_times[next_id] = time.monotonic()
        next_id += 1
        transport.multicast(
            args.client_id, replicas, request, request.size_bytes
        )
    await asyncio.sleep(DRAIN_GRACE)
    await transport.close()

    issued = len(schedule)
    committed = len(client.latencies)
    elapsed = (
        (client.commit_times[-1] - start) if client.commit_times else args.duration
    )
    latencies = client.latencies
    summary = {
        "protocol": spec["protocol"],
        "f": spec["f"],
        "rate": args.rate,
        "duration": args.duration,
        "issued": issued,
        "committed": committed,
        "latency_mean_s": sum(latencies) / committed if committed else None,
        "latency_p50_s": percentile(latencies, 0.50) if committed else None,
        "latency_p95_s": percentile(latencies, 0.95) if committed else None,
        "throughput_rps": committed / elapsed if elapsed > 0 else 0.0,
    }
    if args.json:
        summary["samples"] = [round(v, 6) for v in latencies]
        # The measurement window is over (transport closed), but other
        # tasks may still be draining on this loop — keep the disk
        # write off it.
        await asyncio.to_thread(_write_summary_file, args.json, summary)
        summary.pop("samples")
    print(json.dumps(summary, sort_keys=True), flush=True)
    if committed == 0 and issued > 0:
        print("load: no request ever committed", file=sys.stderr)
        return 1
    return 0


async def run_population_load(
    args, spec: dict, auth_key: bytes | None, request_bytes: int
) -> int:
    """Replay a seeded population stream over the live cluster.

    Mirrors the simulator's ``AggregatedWorkload`` exactly: one merged
    arrival stream built from ``RngRegistry(seed)``, one wire sender
    (``--client-id``) multiplexing every sampled virtual client id, a
    single pool-wide ``req_id`` counter, and an incremental digest of
    the ``(t, class, client)`` events for sim/live cross-validation.
    """
    population = load_population(args.population)
    replicas = sorted(spec["addresses"])

    client = PopulationLoadClient(args.client_id, spec["f"])
    transport = LiveTransport(
        args.client_id,
        addresses={name: tuple(addr) for name, addr in spec["addresses"].items()},
        auth_key=auth_key,
    )
    transport.attach(client)
    transport.host(args.client_id)
    # Replies address virtual ids ("c42"), none of which is hosted
    # here — the catch-all hands every one of them to the tracker.
    transport.catch_all = client

    registry = RngRegistry(args.seed)
    digest = StreamDigest()
    start = time.monotonic()
    next_id = 1
    for at, class_name, client_id in population_stream(
        population, args.rate, args.duration, registry
    ):
        digest.update(at, class_name, client_id)
        delay = (start + at) - time.monotonic()
        if delay > 0:
            await asyncio.sleep(delay)
        name = f"c{client_id}"
        request = ClientRequest(
            client=name, req_id=next_id, size_bytes=request_bytes
        )
        client.issue_times[(name, next_id)] = time.monotonic()
        next_id += 1
        transport.multicast(
            args.client_id, replicas, request, request.size_bytes
        )
    await asyncio.sleep(DRAIN_GRACE)
    await transport.close()

    issued = digest.events
    committed = len(client.latencies)
    elapsed = (
        (client.commit_times[-1] - start) if client.commit_times else args.duration
    )
    latencies = client.latencies
    summary = {
        "protocol": spec["protocol"],
        "f": spec["f"],
        "rate": args.rate,
        "duration": args.duration,
        "clients": population.clients,
        "issued": issued,
        "committed": committed,
        "stream_digest": digest.hexdigest(),
        "latency_mean_s": sum(latencies) / committed if committed else None,
        "latency_p50_s": percentile(latencies, 0.50) if committed else None,
        "latency_p95_s": percentile(latencies, 0.95) if committed else None,
        "throughput_rps": committed / elapsed if elapsed > 0 else 0.0,
    }
    if args.bench_dir:
        path = write_population_artifact(
            summary, spec, args, population, digest, elapsed
        )
        summary["artifact"] = str(path)
    print(json.dumps(summary, sort_keys=True), flush=True)
    if committed == 0 and issued > 0:
        print("load: no request ever committed", file=sys.stderr)
        return 1
    return 0


def write_population_artifact(
    summary: dict, spec: dict, args, population, digest: StreamDigest,
    elapsed: float,
):
    """One schema-v3 ``BENCH_f3pop.json`` point for a live run, shaped
    like the simulated figure's points (x = population size) so the
    comparator and the CI gate read both the same way."""
    from repro.harness import artifact as artifact_mod

    metrics = {
        "issued": float(summary["issued"]),
        "committed": float(summary["committed"]),
        "throughput": float(summary["throughput_rps"]),
    }
    for key, name in (
        ("latency_mean_s", "latency_mean"),
        ("latency_p50_s", "latency_p50"),
        ("latency_p95_s", "latency_p95"),
    ):
        if summary[key] is not None:
            metrics[name] = float(summary[key])
    point = {
        "id": f"live-population/{spec['protocol']}/"
              f"c{population.clients}/s{args.seed}",
        "kind": "live-population",
        "protocol": spec["protocol"],
        "scheme": spec["scheme"],
        "f": spec["f"],
        "x": float(population.clients),
        "probes": [],
        "metrics": metrics,
        "wall_time_s": float(elapsed),
        "events": int(summary["issued"]),
        "events_per_second": (
            summary["issued"] / elapsed if elapsed > 0 else 0.0
        ),
    }
    doc = artifact_mod.from_points(
        figure="f3pop",
        points=[point],
        params={
            "runtime": "live",
            "protocol": spec["protocol"],
            "scheme": spec["scheme"],
            "f": spec["f"],
            "seed": args.seed,
            "rate": args.rate,
            "duration": args.duration,
            "clients": population.clients,
            "stream_digest": digest.hexdigest(),
        },
        wall_time_s=float(elapsed),
    )
    return artifact_mod.write_artifact(doc, args.bench_dir)


def add_load_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--control", default="127.0.0.1:7600",
                        metavar="HOST:PORT",
                        help="repro serve control address")
    parser.add_argument("--rate", type=float, default=50.0,
                        help="aggregate requests per second (default 50)")
    parser.add_argument("--duration", type=float, default=5.0,
                        help="seconds of offered load (default 5)")
    parser.add_argument("--spacing", choices=("poisson", "uniform"),
                        default="poisson")
    parser.add_argument("--seed", type=int, default=1,
                        help="arrival-stream RNG seed")
    parser.add_argument("--client-id", default="c1",
                        help="client name replicas see (default c1)")
    parser.add_argument("--auth-key", default=None,
                        help=f"pre-shared handshake key (or ${framing.AUTH_KEY_ENV})")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="also write summary + raw samples to FILE")
    parser.add_argument("--population", default=None, metavar="FILE",
                        help="replay an aggregated population stream from a "
                             "JSON/TOML population block (or a scenario spec "
                             "file with one) instead of a single-client stream")
    parser.add_argument("--bench-dir", default=None, metavar="DIR",
                        help="with --population: write a schema-v3 "
                             "BENCH_f3pop.json point into DIR")


def cmd_load(args) -> int:
    return asyncio.run(run_load(args))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro load",
        description="drive a live cluster with an open-loop request stream",
    )
    add_load_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return cmd_load(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
