"""``python -m repro load``: open-loop client driver for a live cluster.

Fetches the running cluster's spec from the ``repro serve`` control
port, dials every replica's data listener, and issues
:class:`~repro.core.requests.ClientRequest` frames on the same
open-loop arrival stream the simulator uses
(:func:`repro.harness.workload.arrival_times` on a seeded RNG — the
spacing law, not just the mean rate, matches the simulated workload).
A request counts as committed once ``f + 1`` distinct replicas return
matching :class:`~repro.core.replies.Reply` frames (the cluster runs
with ``send_replies``), and its commit latency is the wall-clock span
from issue to the ``f+1``-th matching reply.

Prints per-run latency/throughput statistics as a JSON line, and with
``--json`` appends the raw per-request samples for ``repro compare
--live``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import time

from repro.core.replies import Reply, ReplyTracker
from repro.core.requests import ClientRequest
from repro.errors import ReproError
from repro.harness.workload import arrival_times
from repro.live.transport import LiveTransport
from repro.net import framing

#: How long after the last arrival the driver keeps collecting replies.
DRAIN_GRACE = 2.0


class LoadClient:
    """The actor a :class:`LiveTransport` dispatches replies into."""

    def __init__(self, name: str, f: int) -> None:
        self.name = name
        self.f = f
        self.replies = ReplyTracker(f)
        self.issue_times: dict[int, float] = {}
        self.latencies: list[float] = []
        self.commit_times: list[float] = []

    def on_message(self, sender: str, payload) -> None:
        if isinstance(payload, Reply) and payload.client == self.name:
            now = time.monotonic()
            if self.replies.note_reply(payload, now):
                issued_at = self.issue_times.get(payload.req_id)
                if issued_at is not None:
                    self.latencies.append(now - issued_at)
                    self.commit_times.append(now)


async def fetch_spec(control: str, auth_key: bytes | None) -> dict:
    """Ask the controller for the running cluster's start spec.

    The dial retries on the shared jittered-backoff policy
    (:data:`repro.net.framing.STARTUP`): load drivers routinely race
    the controller's bind (the CI smoke jobs launch both at once), so
    a not-yet-listening cluster is a reason to wait, not to fail.  A
    controller that never appears surfaces as a clean
    :class:`~repro.net.framing.PeerLost` once the budget is spent.
    """
    host, _, port = control.rpartition(":")
    reader, writer = await framing.open_connection_with_retry(
        host, int(port), framing.STARTUP
    )
    try:
        if auth_key is not None:
            await framing.answer_challenge_async(reader, writer, auth_key)
        framing.write_frame(writer, ("spec?",))
        await writer.drain()
        frame = await framing.read_frame(reader)
    finally:
        writer.close()
    if not (isinstance(frame, tuple) and frame[0] == "spec"):
        raise ReproError(f"controller sent {frame!r} instead of a spec")
    return frame[1]


def percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[idx]


async def run_load(args) -> int:
    auth_key = framing.resolve_auth_key(args.auth_key)
    spec = await fetch_spec(args.control, auth_key)
    replicas = sorted(spec["addresses"])
    request_bytes = int(spec.get("request_bytes", 64))

    client = LoadClient(args.client_id, spec["f"])
    transport = LiveTransport(
        args.client_id,
        addresses={name: tuple(addr) for name, addr in spec["addresses"].items()},
        auth_key=auth_key,
    )
    transport.attach(client)
    transport.host(args.client_id)

    rng = random.Random(args.seed)
    schedule = list(arrival_times(args.rate, args.duration, args.spacing, rng))
    start = time.monotonic()
    next_id = 1
    for at in schedule:
        delay = (start + at) - time.monotonic()
        if delay > 0:
            await asyncio.sleep(delay)
        request = ClientRequest(
            client=args.client_id, req_id=next_id, size_bytes=request_bytes
        )
        client.issue_times[next_id] = time.monotonic()
        next_id += 1
        transport.multicast(
            args.client_id, replicas, request, request.size_bytes
        )
    await asyncio.sleep(DRAIN_GRACE)
    await transport.close()

    issued = len(schedule)
    committed = len(client.latencies)
    elapsed = (
        (client.commit_times[-1] - start) if client.commit_times else args.duration
    )
    latencies = client.latencies
    summary = {
        "protocol": spec["protocol"],
        "f": spec["f"],
        "rate": args.rate,
        "duration": args.duration,
        "issued": issued,
        "committed": committed,
        "latency_mean_s": sum(latencies) / committed if committed else None,
        "latency_p50_s": percentile(latencies, 0.50) if committed else None,
        "latency_p95_s": percentile(latencies, 0.95) if committed else None,
        "throughput_rps": committed / elapsed if elapsed > 0 else 0.0,
    }
    if args.json:
        summary["samples"] = [round(v, 6) for v in latencies]
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
            fh.write("\n")
        summary.pop("samples")
    print(json.dumps(summary, sort_keys=True), flush=True)
    if committed == 0 and issued > 0:
        print("load: no request ever committed", file=sys.stderr)
        return 1
    return 0


def add_load_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--control", default="127.0.0.1:7600",
                        metavar="HOST:PORT",
                        help="repro serve control address")
    parser.add_argument("--rate", type=float, default=50.0,
                        help="aggregate requests per second (default 50)")
    parser.add_argument("--duration", type=float, default=5.0,
                        help="seconds of offered load (default 5)")
    parser.add_argument("--spacing", choices=("poisson", "uniform"),
                        default="poisson")
    parser.add_argument("--seed", type=int, default=1,
                        help="arrival-stream RNG seed")
    parser.add_argument("--client-id", default="c1",
                        help="client name replicas see (default c1)")
    parser.add_argument("--auth-key", default=None,
                        help=f"pre-shared handshake key (or ${framing.AUTH_KEY_ENV})")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="also write summary + raw samples to FILE")


def cmd_load(args) -> int:
    return asyncio.run(run_load(args))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro load",
        description="drive a live cluster with an open-loop request stream",
    )
    add_load_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return cmd_load(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
