"""TCP/asyncio message fabric presenting the simulated-network surface.

One :class:`LiveTransport` per node process.  The hosted order process
talks to it exactly as it talks to :class:`repro.net.network.Network`
(``send`` / ``multicast`` / ``has_actor`` / ``attach`` / ``set_link``),
but delivery is real: frames are length-prefixed pickles
(:mod:`repro.net.framing`), one dialled connection per destination
replica with reconnect-and-backoff, and dynamic return routes for
clients that dial in.  Two deliberate departures from the simulated
fabric:

* ``depart_time`` (the simulated CPU-marshalling completion) is
  ignored — a real CPU does the real work;
* no ``receive_service`` modelling — inbound frames dispatch straight
  into the hosted actor's ``on_message`` on the event loop, which is
  single-threaded like the simulator, so protocol code needs no locks.

Everything except :meth:`send`/:meth:`multicast` enqueueing happens on
the owning event loop.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Iterable

from repro.errors import ConfigError
from repro.net import framing

#: Per-destination outbound queue bound; a destination that is down
#: keeps only the newest frames (the protocol tolerates message loss
#: to crashed peers — that is its whole point).
MAX_QUEUED_FRAMES = 2048
#: Write-buffer bound for dialled-in return routes.  Those writes
#: bypass the queued channel path, so without a cap a stalled client
#: grows an unbounded StreamWriter buffer in the replica; past this,
#: frames to it are shed (message loss is tolerated, memory loss is not).
MAX_ROUTE_BUFFER_BYTES = 4 * 1024 * 1024
#: Reconnect backoff bounds (seconds).
_BACKOFF_FIRST = 0.05
_BACKOFF_MAX = 1.0

_STOP = object()


class LiveTransport:
    """The network surface of one live node.

    Parameters
    ----------
    name:
        This node's own name (the hosted process or client).
    addresses:
        ``{peer_name: (host, port)}`` data listeners of the replicas.
    auth_key:
        Pre-shared key for the frame-level handshake (``None`` on
        loopback).
    """

    def __init__(
        self,
        name: str,
        addresses: dict[str, tuple[str, int]] | None = None,
        auth_key: bytes | None = None,
    ) -> None:
        self.name = name
        self.addresses = dict(addresses or {})
        self.auth_key = auth_key
        self._actors: dict[str, Any] = {}
        self._hosted: set[str] = set()
        # Dynamic return routes: peers that dialled us (clients, or
        # replicas whose hello arrived first), name -> StreamWriter.
        self._routes: dict[str, asyncio.StreamWriter] = {}
        self._queues: dict[str, asyncio.Queue] = {}
        self._channels: dict[str, asyncio.Task] = {}
        self._server: asyncio.Server | None = None
        self._reader_tasks: set[asyncio.Task] = set()
        self._closed = False
        self.messages_sent = 0
        self.bytes_sent = 0
        self.frames_delivered = 0

    # ------------------------------------------------------------------
    # Topology (the Network surface plugin builds touch)
    # ------------------------------------------------------------------
    def attach(self, actor: Any) -> None:
        if actor.name in self._actors:
            raise ConfigError(f"duplicate actor name {actor.name!r}")
        self._actors[actor.name] = actor

    def actor(self, name: str) -> Any:
        return self._actors[name]

    def has_actor(self, name: str) -> bool:
        """True for every reachable name: locally attached actors,
        replicas with known addresses, and dialled-in peers (clients
        become addressable the moment their hello frame arrives)."""
        return (
            name in self._actors
            or name in self.addresses
            or name in self._routes
        )

    @property
    def names(self) -> list[str]:
        return list(self._actors)

    def set_link(self, src: str, dst: str, model: Any) -> None:
        """Pair links are a delay-model concept; the wire is the wire."""

    def tap(self, callback: Callable[..., None]) -> None:
        """Departure taps observe simulated envelopes; not supported."""

    def host(self, *names: str) -> None:
        """Mark ``names`` as served by this node: sends to them
        dispatch locally instead of over TCP."""
        self._hosted.update(names)

    # ------------------------------------------------------------------
    # Listener
    # ------------------------------------------------------------------
    async def start_listener(self, host: str, port: int = 0) -> tuple[str, int]:
        """Bind the data listener; returns the bound (host, port)."""
        framing.require_auth_for_bind(host, self.auth_key)
        self._server = await asyncio.start_server(self._serve_peer, host, port)
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def _serve_peer(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = None
        try:
            if self.auth_key is not None:
                await framing.deliver_challenge_async(reader, writer, self.auth_key)
            hello = await framing.read_frame(reader)
            if not (
                isinstance(hello, tuple)
                and len(hello) == 2
                and hello[0] == "hello"
                and isinstance(hello[1], str)
            ):
                return
            peer = hello[1]
            self._routes[peer] = writer
            while True:
                frame = await framing.read_frame(reader)
                self._dispatch_frame(frame)
        except (framing.PeerLost, framing.AuthenticationError, OSError):
            pass
        finally:
            if peer is not None and self._routes.get(peer) is writer:
                del self._routes[peer]
            writer.close()

    def _dispatch_frame(self, frame: object) -> None:
        if not (isinstance(frame, tuple) and len(frame) == 4 and frame[0] == "msg"):
            return
        _, sender, dest, payload = frame
        if dest not in self._hosted:
            return  # misrouted or for a mirror: not ours to handle
        actor = self._actors.get(dest)
        if actor is None:
            return
        self.frames_delivered += 1
        actor.on_message(sender, payload)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def send(
        self,
        sender: str,
        dest: str,
        payload: Any,
        size_bytes: int,
        depart_time: float | None = None,
    ) -> None:
        """Route one message.  Local destinations dispatch on the next
        loop turn (so a handler's sends never re-enter protocol code
        mid-handler, matching the simulator's event discipline)."""
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        if dest in self._hosted:
            actor = self._actors.get(dest)
            if actor is not None:
                asyncio.get_running_loop().call_soon(actor.on_message, sender, payload)
            return
        self._enqueue(dest, ("msg", sender, dest, payload))

    def multicast(
        self,
        sender: str,
        dests: Iterable[str],
        payload: Any,
        size_bytes: int,
        depart_time: float | None = None,
    ) -> None:
        for dest in dests:
            self.send(sender, dest, payload, size_bytes, depart_time)

    def _enqueue(self, dest: str, frame: tuple) -> None:
        if self._closed:
            return
        route = self._routes.get(dest)
        if route is not None and not route.is_closing():
            # A dialled-in peer (a client awaiting replies): answer on
            # its own connection, shedding when it stops draining.
            if route.transport.get_write_buffer_size() < MAX_ROUTE_BUFFER_BYTES:
                try:
                    framing.write_frame(route, frame)
                except OSError:
                    pass
            return
        if dest not in self.addresses:
            return  # unreachable: a mirror-only name, or a gone client
        queue = self._queues.get(dest)
        if queue is None:
            queue = self._queues[dest] = asyncio.Queue()
            self._channels[dest] = asyncio.get_running_loop().create_task(
                self._channel(dest, queue)
            )
        if queue.qsize() >= MAX_QUEUED_FRAMES:
            queue.get_nowait()  # shed oldest: the peer is long gone
        queue.put_nowait(frame)

    async def _channel(self, dest: str, queue: asyncio.Queue) -> None:
        """Outbound connection to one peer: dial, handshake, drain the
        queue; reconnect with bounded backoff on any failure.

        The connection is full duplex — the peer answers over *this*
        connection (its dialled-in return route) rather than dialling
        back, so every successful dial also starts an inbound pump.
        """
        host, port = self.addresses[dest]
        writer: asyncio.StreamWriter | None = None
        pump: asyncio.Task | None = None
        backoff = _BACKOFF_FIRST
        while not self._closed:
            frame = await queue.get()
            if frame is _STOP:
                break
            while not self._closed:
                if writer is None or writer.is_closing():
                    if pump is not None:
                        pump.cancel()
                        pump = None
                    try:
                        reader, writer = await asyncio.open_connection(host, port)
                        if self.auth_key is not None:
                            await framing.answer_challenge_async(
                                reader, writer, self.auth_key
                            )
                        framing.write_frame(writer, ("hello", self.name))
                        await writer.drain()
                        backoff = _BACKOFF_FIRST
                        pump = asyncio.get_running_loop().create_task(
                            self._pump_inbound(reader)
                        )
                        self._reader_tasks.add(pump)
                        pump.add_done_callback(self._reader_tasks.discard)
                    except (OSError, framing.PeerLost, framing.AuthenticationError):
                        writer = None
                        await asyncio.sleep(backoff)
                        backoff = min(backoff * 2, _BACKOFF_MAX)
                        if queue.qsize() >= MAX_QUEUED_FRAMES:
                            break  # shed this frame; newer ones queued
                        continue
                try:
                    framing.write_frame(writer, frame)
                    await writer.drain()
                    break
                except (OSError, ConnectionError):
                    writer.close()
                    writer = None  # retry the same frame on a fresh dial
        if pump is not None:
            pump.cancel()
        if writer is not None:
            writer.close()

    async def _pump_inbound(self, reader: asyncio.StreamReader) -> None:
        """Dispatch frames the peer writes back on an outbound
        connection (return-route traffic: replies to a client, or a
        replica answering over the connection we opened first)."""
        try:
            while True:
                frame = await framing.read_frame(reader)
                self._dispatch_frame(frame)
        except (framing.PeerLost, OSError, asyncio.CancelledError):
            return

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    async def close(self) -> None:
        """Stop accepting, flush nothing, drop every connection."""
        self._closed = True
        if self._server is not None:
            self._server.close()
        for queue in self._queues.values():
            queue.put_nowait(_STOP)
        for task in self._channels.values():
            task.cancel()
        for task in list(self._reader_tasks):
            task.cancel()
        for writer in list(self._routes.values()):
            writer.close()
        for task in list(self._channels.values()):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
