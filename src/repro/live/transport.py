"""TCP/asyncio message fabric presenting the simulated-network surface.

One :class:`LiveTransport` per node process.  The hosted order process
talks to it exactly as it talks to :class:`repro.net.network.Network`
(``send`` / ``multicast`` / ``has_actor`` / ``attach`` / ``set_link``),
but delivery is real: frames are length-prefixed pickles
(:mod:`repro.net.framing`), one dialled connection per destination
replica with reconnect-and-backoff, and dynamic return routes for
clients that dial in.  Two deliberate departures from the simulated
fabric:

* ``depart_time`` (the simulated CPU-marshalling completion) is
  ignored — a real CPU does the real work;
* no ``receive_service`` modelling — inbound frames dispatch straight
  into the hosted actor's ``on_message`` on the event loop, which is
  single-threaded like the simulator, so protocol code needs no locks.

Everything except :meth:`send`/:meth:`multicast` enqueueing happens on
the owning event loop.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Iterable

from repro.errors import ConfigError
from repro.net import framing

#: Per-destination outbound queue bound; a destination that is down
#: keeps only the newest frames (the protocol tolerates message loss
#: to crashed peers — that is its whole point).
MAX_QUEUED_FRAMES = 2048
#: Write-buffer bound for dialled-in return routes.  Those writes
#: bypass the queued channel path, so without a cap a stalled client
#: grows an unbounded StreamWriter buffer in the replica; past this,
#: frames to it are shed (message loss is tolerated, memory loss is not).
MAX_ROUTE_BUFFER_BYTES = 4 * 1024 * 1024

_STOP = object()


class LiveTransport:
    """The network surface of one live node.

    Parameters
    ----------
    name:
        This node's own name (the hosted process or client).
    addresses:
        ``{peer_name: (host, port)}`` data listeners of the replicas.
    auth_key:
        Pre-shared key for the frame-level handshake (``None`` on
        loopback).
    """

    def __init__(
        self,
        name: str,
        addresses: dict[str, tuple[str, int]] | None = None,
        auth_key: bytes | None = None,
    ) -> None:
        self.name = name
        self.addresses = dict(addresses or {})
        self.auth_key = auth_key
        self._actors: dict[str, Any] = {}
        self._hosted: set[str] = set()
        # Dynamic return routes: peers that dialled us (clients, or
        # replicas whose hello arrived first), name -> StreamWriter.
        self._routes: dict[str, asyncio.StreamWriter] = {}
        self._queues: dict[str, asyncio.Queue] = {}
        self._channels: dict[str, asyncio.Task] = {}
        self._server: asyncio.Server | None = None
        self._reader_tasks: set[asyncio.Task] = set()
        self._closed = False
        self.messages_sent = 0
        self.bytes_sent = 0
        self.frames_delivered = 0
        # Handlers for non-"msg" frame kinds (state transfer, control):
        # kind -> callable(frame, reply_writer | None).
        self._control: dict[str, Callable[[tuple, Any], None]] = {}
        # Liveness hook: called with the peer name for every inbound
        # frame (heartbeat failure detection feeds on it).
        self.peer_activity: Callable[[str], None] | None = None
        # Injectable network-fault schedule (repro.live.chaos) and the
        # clock it reads (cluster time); None = clean network.
        self.chaos = None
        self.clock: Callable[[], float] = lambda: 0.0
        # Fallback actor for inbound msg frames whose dest is not
        # hosted here.  A population load driver issues requests under
        # many virtual client names over one connection; hosting each
        # would be O(population), so it catches every reply instead.
        self.catch_all: Any = None

    # ------------------------------------------------------------------
    # Topology (the Network surface plugin builds touch)
    # ------------------------------------------------------------------
    def attach(self, actor: Any) -> None:
        if actor.name in self._actors:
            raise ConfigError(f"duplicate actor name {actor.name!r}")
        self._actors[actor.name] = actor

    def actor(self, name: str) -> Any:
        return self._actors[name]

    def has_actor(self, name: str) -> bool:
        """True for every reachable name: locally attached actors,
        replicas with known addresses, and dialled-in peers (clients
        become addressable the moment their hello frame arrives)."""
        return (
            name in self._actors
            or name in self.addresses
            or name in self._routes
        )

    @property
    def names(self) -> list[str]:
        return list(self._actors)

    def set_link(self, src: str, dst: str, model: Any) -> None:
        """Pair links are a delay-model concept; the wire is the wire."""

    def tap(self, callback: Callable[..., None]) -> None:
        """Departure taps observe simulated envelopes; not supported."""

    def host(self, *names: str) -> None:
        """Mark ``names`` as served by this node: sends to them
        dispatch locally instead of over TCP."""
        self._hosted.update(names)

    def register_control(
        self, kind: str, handler: Callable[[tuple, Any], None]
    ) -> None:
        """Dispatch inbound frames tagged ``kind`` (anything but
        ``"msg"``) to ``handler(frame, reply_writer)``.

        ``reply_writer`` is the StreamWriter of the connection the
        frame arrived on when it arrived on our listener (the state
        transfer server answers on it), else ``None``.
        """
        self._control[kind] = handler

    def update_address(self, name: str, host: str, port: int) -> None:
        """Repoint ``name`` at a new data listener (a restarted
        replica rebinds an ephemeral port).

        The existing outbound channel — still backing off against the
        dead listener — is torn down with its queued frames (the peer
        was down; the protocol tolerates that loss); the next send
        dials the new address.
        """
        if self.addresses.get(name) == (host, port):
            return
        self.addresses[name] = (host, port)
        task = self._channels.pop(name, None)
        self._queues.pop(name, None)
        if task is not None:
            task.cancel()
        route = self._routes.pop(name, None)
        if route is not None:
            route.close()

    # ------------------------------------------------------------------
    # Listener
    # ------------------------------------------------------------------
    async def start_listener(self, host: str, port: int = 0) -> tuple[str, int]:
        """Bind the data listener; returns the bound (host, port)."""
        framing.require_auth_for_bind(host, self.auth_key)
        self._server = await asyncio.start_server(self._serve_peer, host, port)
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def _serve_peer(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = None
        try:
            if self.auth_key is not None:
                await framing.deliver_challenge_async(reader, writer, self.auth_key)
            hello = await framing.read_frame(reader)
            if not (
                isinstance(hello, tuple)
                and len(hello) == 2
                and hello[0] == "hello"
                and isinstance(hello[1], str)
            ):
                return
            peer = hello[1]
            self._routes[peer] = writer
            while True:
                frame = await framing.read_frame(reader)
                self._note_activity(peer)
                self._dispatch_frame(frame, writer)
        except (framing.PeerLost, framing.AuthenticationError, OSError):
            pass
        finally:
            # Drop every route pointing at this connection — the hello
            # name plus any virtual-client aliases learned from it.
            stale = [n for n, w in self._routes.items() if w is writer]
            for name in stale:
                del self._routes[name]
            writer.close()

    def _note_activity(self, peer: str) -> None:
        callback = self.peer_activity
        if callback is not None:
            callback(peer)

    def _dispatch_frame(self, frame: object, writer=None) -> None:
        if not (isinstance(frame, tuple) and frame):
            return
        kind = frame[0]
        if kind == "msg":
            if len(frame) != 4:
                return
            _, sender, dest, payload = frame
            if dest not in self._hosted:
                if self.catch_all is not None:
                    self.frames_delivered += 1
                    self.catch_all.on_message(sender, payload)
                return  # misrouted or for a mirror: not ours to handle
            actor = self._actors.get(dest)
            if actor is None:
                return
            # Virtual-client alias: a request whose declared client is
            # not the connection's hello name (a population driver
            # multiplexing many sampled ids over one connection) makes
            # that id routable back over the same connection, so
            # replies to it reach the driver.
            if writer is not None:
                client = getattr(payload, "client", None)
                if (
                    client is not None
                    and client != sender
                    and client not in self._routes
                    and client not in self.addresses
                ):
                    self._routes[client] = writer
            self.frames_delivered += 1
            actor.on_message(sender, payload)
            return
        if kind == "hb":
            # Pure liveness beacons: the activity note above (or the
            # pump's) already recorded them; nothing to dispatch.
            return
        handler = self._control.get(kind)
        if handler is not None:
            handler(frame, writer)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def send(
        self,
        sender: str,
        dest: str,
        payload: Any,
        size_bytes: int,
        depart_time: float | None = None,
    ) -> None:
        """Route one message.  Local destinations dispatch on the next
        loop turn (so a handler's sends never re-enter protocol code
        mid-handler, matching the simulator's event discipline)."""
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        if dest in self._hosted:
            actor = self._actors.get(dest)
            if actor is not None:
                asyncio.get_running_loop().call_soon(actor.on_message, sender, payload)
            return
        self._transmit(dest, ("msg", sender, dest, payload))

    def multicast(
        self,
        sender: str,
        dests: Iterable[str],
        payload: Any,
        size_bytes: int,
        depart_time: float | None = None,
    ) -> None:
        for dest in dests:
            self.send(sender, dest, payload, size_bytes, depart_time)

    def send_raw(self, dest: str, frame: tuple) -> None:
        """Put one non-``msg`` frame (heartbeat, state transfer) on the
        wire to ``dest``, through the same chaos gate protocol traffic
        crosses — a partition silences heartbeats too, which is exactly
        how the failure detector notices it."""
        self._transmit(dest, frame)

    def _transmit(self, dest: str, frame: tuple) -> None:
        """The chaos gate in front of every remote transmission."""
        chaos = self.chaos
        if chaos is not None:
            verdict, delay = chaos.action(self.clock(), self.name, dest)
            if verdict == "drop":
                return
            if verdict == "delay":
                asyncio.get_running_loop().call_later(
                    delay, self._enqueue, dest, frame
                )
                return
        self._enqueue(dest, frame)

    def _enqueue(self, dest: str, frame: tuple) -> None:
        if self._closed:
            return
        route = self._routes.get(dest)
        if route is not None and not route.is_closing():
            # A dialled-in peer (a client awaiting replies): answer on
            # its own connection, shedding when it stops draining.
            if route.transport.get_write_buffer_size() < MAX_ROUTE_BUFFER_BYTES:
                try:
                    framing.write_frame(route, frame)
                except OSError:
                    pass
            return
        if dest not in self.addresses:
            return  # unreachable: a mirror-only name, or a gone client
        queue = self._queues.get(dest)
        if queue is None:
            queue = self._queues[dest] = asyncio.Queue()
            self._channels[dest] = asyncio.get_running_loop().create_task(
                self._channel(dest, queue)
            )
        if queue.qsize() >= MAX_QUEUED_FRAMES:
            queue.get_nowait()  # shed oldest: the peer is long gone
        queue.put_nowait(frame)

    async def _channel(self, dest: str, queue: asyncio.Queue) -> None:
        """Outbound connection to one peer: dial, handshake, drain the
        queue; reconnect on the shared jittered-backoff policy
        (:data:`repro.net.framing.RECONNECT`) on any failure, the
        delay sequence resetting on every successful dial.

        The connection is full duplex — the peer answers over *this*
        connection (its dialled-in return route) rather than dialling
        back, so every successful dial also starts an inbound pump.
        """
        writer: asyncio.StreamWriter | None = None
        pump: asyncio.Task | None = None
        delays = framing.RECONNECT.delays()
        try:
            while not self._closed:
                frame = await queue.get()
                if frame is _STOP:
                    break
                while not self._closed:
                    if writer is None or writer.is_closing():
                        if pump is not None:
                            pump.cancel()
                            pump = None
                        # Re-read every dial: update_address repoints
                        # a restarted replica at its new listener.
                        host, port = self.addresses[dest]
                        try:
                            reader, writer = await asyncio.open_connection(host, port)
                            if self.auth_key is not None:
                                await framing.answer_challenge_async(
                                    reader, writer, self.auth_key
                                )
                            framing.write_frame(writer, ("hello", self.name))
                            await writer.drain()
                            delays = framing.RECONNECT.delays()
                            pump = asyncio.get_running_loop().create_task(
                                self._pump_inbound(dest, reader)
                            )
                            self._reader_tasks.add(pump)
                            pump.add_done_callback(self._reader_tasks.discard)
                        except (
                            OSError, framing.PeerLost, framing.AuthenticationError
                        ):
                            writer = None
                            await asyncio.sleep(next(delays))
                            if queue.qsize() >= MAX_QUEUED_FRAMES:
                                break  # shed this frame; newer ones queued
                            continue
                    try:
                        framing.write_frame(writer, frame)
                        await writer.drain()
                        break
                    except (OSError, ConnectionError):
                        writer.close()
                        writer = None  # retry the same frame on a fresh dial
        finally:
            if pump is not None:
                pump.cancel()
            if writer is not None:
                writer.close()

    async def _pump_inbound(self, peer: str, reader: asyncio.StreamReader) -> None:
        """Dispatch frames the peer writes back on an outbound
        connection (return-route traffic: replies to a client, or a
        replica answering over the connection we opened first)."""
        try:
            while True:
                frame = await framing.read_frame(reader)
                self._note_activity(peer)
                self._dispatch_frame(frame)
        except (framing.PeerLost, OSError, asyncio.CancelledError):
            return

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    async def close(self) -> None:
        """Stop accepting, flush nothing, drop every connection."""
        self._closed = True
        if self._server is not None:
            self._server.close()
        for queue in self._queues.values():
            queue.put_nowait(_STOP)
        for task in self._channels.values():
            task.cancel()
        for task in list(self._reader_tasks):
            task.cancel()
        for writer in list(self._routes.values()):
            writer.close()
        for task in list(self._channels.values()):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
