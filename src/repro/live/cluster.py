"""``python -m repro serve``: run a live replica cluster.

The controller binds a control port, spawns (or waits for) one
``serve --join`` node process per order-process name of the chosen
protocol, hands every node the same start spec (addresses, seed,
declarative fault schedule, a shared start epoch), lets the cluster
run, then broadcasts a stop, collects per-node reports (trace records
+ committed history), verifies that all surviving replicas committed
identical prefixes, and — with ``--json-dir`` — feeds the merged
records through the standard measurement probes into a
schema-compatible ``BENCH_live_<protocol>.json`` artifact.

Fault injection is declarative and cluster-wide: ``--kill-after
p1:2.0`` makes *every* node arm a crash plan on its ``p1``
(mirror or hosted), so pair suspicion oracles confirm against the
schedule, and the node hosting ``p1`` goes silent at t=2 and exits
shortly after.  ``--pause-after p2:1.0:0.5`` is the windowed variant.
``--restart-after p1:4.0`` brings a killed replica back: the fresh
process joins the same control port, the controller marks its spec
``rejoin: True`` and broadcasts the new data address, and the node
fetches the committed prefix from a live peer before resuming (see
:mod:`repro.live.recovery`).  Network chaos rides in the same spec:
``--partition`` / ``--drop`` / ``--delay-jitter`` windows
(:mod:`repro.live.chaos`) gate every node's send path.

Topology::

    controller (this process)                node subprocess x n
    --------------------------------         ---------------------------
    listen on control host:port   <--------  python -m repro serve \\
    collect ("join", id, host, port)             --join host:port \\
    broadcast ("start", spec)    -------->       --replica-id pK
    ... cluster runs for --duration ...      protocol over TCP (data plane)
    broadcast ("stop",)          -------->   ("report", trace + history)
    verify prefix agreement, write artifact, reap children

``repro load`` connects to the same control port with ``("spec?",)``
to learn the replica addresses.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from typing import NamedTuple

import repro.protocols as protocols
from repro.errors import ConfigError, ReproError
from repro.live import chaos as chaos_mod
from repro.live import heartbeat as heartbeat_mod
from repro.net import framing

#: How long the controller waits for all replicas to join.
JOIN_TIMEOUT = 30.0
#: Grace between the start broadcast and the agreed epoch.
START_GRACE = 0.4
#: How long the controller waits for each node's report after stop.
REPORT_TIMEOUT = 5.0


def parse_fault_args(kills: list[str], pauses: list[str]) -> list[tuple]:
    """``--kill-after p1:2.0`` / ``--pause-after p2:1.0:0.5`` into the
    spec's ``(target, kind, after, duration)`` rows."""
    faults: list[tuple] = []
    for item in kills or ():
        target, _, after = item.partition(":")
        if not target or not after:
            raise ConfigError(f"--kill-after wants NAME:SECONDS, got {item!r}")
        faults.append((target, "kill", float(after), 0.0))
    for item in pauses or ():
        parts = item.split(":")
        if len(parts) not in (2, 3):
            raise ConfigError(
                f"--pause-after wants NAME:SECONDS[:DURATION], got {item!r}"
            )
        duration = float(parts[2]) if len(parts) == 3 else 1.0
        faults.append((parts[0], "pause", float(parts[1]), duration))
    return faults


def parse_restart_args(restarts: list[str]) -> list[tuple[str, float]]:
    """``--restart-after p1:4.0`` into ``(target, at)`` rows."""
    parsed: list[tuple[str, float]] = []
    for item in restarts or ():
        target, _, after = item.partition(":")
        if not target or not after:
            raise ConfigError(f"--restart-after wants NAME:SECONDS, got {item!r}")
        parsed.append((target, float(after)))
    return parsed


class PrefixAgreement(NamedTuple):
    """The verdict of the all-pairs history check.

    ``divergence`` is ``None`` when ``ok``; otherwise ``(slot,
    replica_a, replica_b)`` naming the first committed slot on which
    two replicas disagree — the number an operator needs to go digging
    in the traces, instead of a bare boolean.
    """

    prefix: int
    ok: bool
    divergence: tuple[int, str, str] | None = None


def check_prefix_agreement(
    histories: dict[str, list[tuple[int, str]]]
) -> PrefixAgreement:
    """All-pairs overlap agreement across the reported histories — the
    live total-order safety check.

    ``prefix`` is the shortest history's length (the prefix everyone
    committed); disagreement pinpoints the first divergent slot and
    the two replicas holding it.
    """
    if not histories:
        return PrefixAgreement(0, True)
    prefix = min(len(h) for h in histories.values())
    # Genuinely pairwise: comparing everything against one arbitrary
    # reference misses two longer histories that agree with a short
    # reference on its overlap but diverge past it (n is small).
    items = list(histories.items())
    for i, (left_name, left) in enumerate(items):
        for right_name, right in items[i + 1:]:
            overlap = min(len(left), len(right))
            if left[:overlap] != right[:overlap]:
                slot = next(
                    left[k][0]
                    for k in range(overlap)
                    if left[k] != right[k]
                )
                return PrefixAgreement(
                    prefix, False, (slot, left_name, right_name)
                )
    return PrefixAgreement(prefix, True)


class _Controller:
    def __init__(self, args) -> None:
        self.args = args
        self.auth_key = framing.resolve_auth_key(args.auth_key)
        plugin = protocols.get(args.protocol)
        self.config = plugin.configure(
            scheme=args.scheme,
            f=args.f,
            batching_interval=args.batching_interval,
            heartbeat_interval=args.heartbeat_interval,
            view_timeout=args.view_timeout,
            send_replies=True,
        )
        self.names = plugin.process_names(self.config)
        self.faults = parse_fault_args(args.kill_after, args.pause_after)
        for target, _, _, _ in self.faults:
            if target not in self.names:
                raise ConfigError(
                    f"fault target {target!r} is not deployed; processes: "
                    f"{self.names}"
                )
        self.restarts = parse_restart_args(args.restart_after)
        for target, _ in self.restarts:
            if target not in self.names:
                raise ConfigError(
                    f"restart target {target!r} is not deployed; processes: "
                    f"{self.names}"
                )
        self.chaos_rules = chaos_mod.parse_chaos_args(
            args.partition, args.drop, args.delay_jitter
        )
        chaos_mod.validate_targets(self.chaos_rules, self.names)
        self.joined: dict[str, tuple[str, int]] = {}
        self.node_streams: dict[str, tuple] = {}
        self.reports: dict[str, dict] = {}
        self.restarted: set[str] = set()
        self.spec: dict | None = None
        self.started = asyncio.Event()
        self.all_joined = asyncio.Event()
        self.stopping = asyncio.Event()
        self.procs: list[subprocess.Popen] = []

    # -- node process management ---------------------------------------
    def spawn_node(self, name: str, control_addr: str) -> subprocess.Popen:
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        if self.auth_key is not None:
            env[framing.AUTH_KEY_ENV] = self.auth_key.decode("utf-8")
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--join", control_addr, "--replica-id", name,
             "--bind", self.args.node_bind],
            env=env,
            stdout=subprocess.DEVNULL,
        )

    def reap(self) -> None:
        for proc in self.procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self.procs:
            try:
                proc.wait(timeout=2.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=2.0)

    # -- control-plane connections ---------------------------------------
    async def serve_connection(self, reader, writer) -> None:
        try:
            if self.auth_key is not None:
                await framing.deliver_challenge_async(reader, writer, self.auth_key)
            frame = await framing.read_frame(reader)
        except (framing.PeerLost, framing.AuthenticationError, OSError):
            writer.close()
            return
        if isinstance(frame, tuple) and frame[0] == "join":
            await self._serve_node(frame, reader, writer)
        elif isinstance(frame, tuple) and frame[0] == "spec?":
            await self.started.wait()
            framing.write_frame(writer, ("spec", self.spec))
            try:
                await writer.drain()
            except (OSError, ConnectionError):
                pass
            writer.close()
        else:
            writer.close()

    async def _serve_node(self, join: tuple, reader, writer) -> None:
        _, name, host, port, _pid = join
        if name not in self.names:
            writer.close()
            return
        rejoining = name in self.joined and self.started.is_set()
        if name in self.joined and not rejoining:
            writer.close()  # duplicate join of a running pre-start name
            return
        self.joined[name] = (host, port)
        self.node_streams[name] = (reader, writer)
        if rejoining:
            self.restarted.add(name)
            print(
                f"serve: {name} rejoining from {host}:{port}",
                file=sys.stderr, flush=True,
            )
            await self._broadcast_addr(name, host, port)
            spec = self._rejoin_spec(name)
        else:
            print(
                f"serve: {name} joined from {host}:{port} "
                f"({len(self.joined)}/{len(self.names)})",
                file=sys.stderr, flush=True,
            )
            if len(self.joined) == len(self.names):
                self.all_joined.set()
            await self.started.wait()
            spec = self.spec
        framing.write_frame(writer, ("start", spec))
        try:
            await writer.drain()
        except (OSError, ConnectionError):
            return
        # Wait for the report (sent after our stop broadcast, or never
        # if the node is killed mid-run).
        try:
            frame = await framing.read_frame(reader)
        except framing.PeerLost:
            return
        if isinstance(frame, tuple) and frame[0] == "report":
            self.reports[name] = frame[1]

    def _rejoin_spec(self, name: str) -> dict:
        """The start spec a restarted replica receives: current
        addresses, the rejoin marker, and — crucially — its own kill
        faults stripped, so the reborn node neither re-arms its own
        death nor reports itself crashed."""
        return dict(
            self.spec,
            addresses=dict(self.joined),
            rejoin=True,
            faults=[
                f for f in self.spec["faults"]
                if not (f[0] == name and f[1] == "kill")
            ],
        )

    async def _broadcast_addr(self, name: str, host: str, port: int) -> None:
        """Tell every other live node where the restarted replica now
        listens (a rebind picks a fresh ephemeral port)."""
        for peer, (_reader, peer_writer) in self.node_streams.items():
            if peer == name:
                continue
            try:
                framing.write_frame(peer_writer, ("addr", name, host, port))
                await peer_writer.drain()
            except (OSError, ConnectionError):
                pass

    async def run(self) -> int:
        args = self.args
        host, _, port = args.bind.rpartition(":")
        framing.require_auth_for_bind(host, self.auth_key)
        server = await asyncio.start_server(self.serve_connection, host, int(port))
        bound = server.sockets[0].getsockname()
        control_addr = f"{bound[0]}:{bound[1]}"
        print(
            f"serve: control listening on {control_addr} — protocol "
            f"{args.protocol} (f={args.f}, {len(self.names)} processes); "
            f"join externals with: python -m repro serve --join "
            f"{control_addr} --replica-id <name>",
            file=sys.stderr, flush=True,
        )

        loop = asyncio.get_running_loop()
        for signo in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signo, self.stopping.set)

        if args.spawn != 0:
            for name in self.names:
                self.procs.append(self.spawn_node(name, f"127.0.0.1:{bound[1]}"))
        try:
            try:
                await asyncio.wait_for(self.all_joined.wait(), JOIN_TIMEOUT)
            except asyncio.TimeoutError:
                missing = [n for n in self.names if n not in self.joined]
                raise ConfigError(
                    f"replicas never joined: {missing} (waited {JOIN_TIMEOUT}s)"
                ) from None

            self.spec = {
                "protocol": args.protocol,
                "f": args.f,
                "scheme": args.scheme,
                "batching_interval": args.batching_interval,
                "heartbeat_interval": args.heartbeat_interval,
                "view_timeout": args.view_timeout,
                "seed": args.seed,
                "addresses": dict(self.joined),
                "faults": self.faults,
                "chaos": [rule.to_row() for rule in self.chaos_rules],
                "hb_interval": args.hb_interval,
                "hb_timeout": args.hb_timeout,
                "epoch": time.time() + START_GRACE,
                "duration": args.duration,
                "request_bytes": self.config.request_bytes,
            }
            self.started.set()
            print("serve: cluster started", file=sys.stderr, flush=True)

            restart_tasks = [
                loop.create_task(self._restart_replica(
                    name, self.spec["epoch"] + after, f"127.0.0.1:{bound[1]}"
                ))
                for name, after in self.restarts
            ]

            if args.duration is not None:
                until = self.spec["epoch"] + args.duration - time.time()
                stop_wait = loop.create_task(self.stopping.wait())
                done, _ = await asyncio.wait({stop_wait}, timeout=max(0.0, until))
                if not done:
                    stop_wait.cancel()
            else:
                await self.stopping.wait()

            for task in restart_tasks:
                task.cancel()
            await self._broadcast_stop()
            await self._collect_reports()
            return self._finish(bound)
        finally:
            server.close()
            self.reap()

    async def _restart_replica(
        self, name: str, at_unix: float, control_addr: str
    ) -> None:
        """``--restart-after``: bring a replica back at cluster time T.

        In spawned mode the controller launches a fresh node process —
        the same command line as the original; the rejoin semantics
        ride in on the spec it receives when it joins.  With external
        joiners (``--spawn 0``) the operator restarts the process; we
        just say when.
        """
        await asyncio.sleep(max(0.0, at_unix - time.time()))
        if self.stopping.is_set():
            return
        if self.args.spawn != 0:
            print(f"serve: restarting {name}", file=sys.stderr, flush=True)
            self.procs.append(self.spawn_node(name, control_addr))
        else:
            print(
                f"serve: restart window for {name} — rejoin it with: "
                f"python -m repro serve --join {control_addr} "
                f"--replica-id {name}",
                file=sys.stderr, flush=True,
            )

    async def _broadcast_stop(self) -> None:
        for name, (_reader, writer) in self.node_streams.items():
            try:
                framing.write_frame(writer, ("stop",))
                await writer.drain()
            except (OSError, ConnectionError):
                pass

    async def _collect_reports(self) -> None:
        deadline = time.time() + REPORT_TIMEOUT
        while time.time() < deadline:
            live = [p for p in self.procs if p.poll() is None]
            expected = len(self.node_streams)
            if len(self.reports) >= expected or (self.procs and not live):
                break
            await asyncio.sleep(0.05)

    def _finish(self, bound) -> int:
        args = self.args
        killed = {t for t, kind, _, _ in self.faults if kind == "kill"}
        # A killed replica that restarted and reported is a survivor
        # again — its post-rejoin history *must* pass the agreement
        # check, which is the whole acceptance test of a state transfer.
        survivors = {
            name: report for name, report in self.reports.items()
            if (name not in killed or name in self.restarted)
            and not report.get("crashed")
            # A node stopped mid state-transfer never became a replica
            # again; its (discarded) empty history is not a vote.
            and not (report.get("rejoin") or {}).get("aborted")
        }
        histories = {name: r["history"] for name, r in survivors.items()}
        agreement = check_prefix_agreement(histories)
        prefix, ok = agreement.prefix, agreement.ok
        rejoined = sorted(
            name for name, report in self.reports.items()
            if report.get("rejoin") and not report["rejoin"].get("aborted")
        )
        summary = {
            "protocol": args.protocol,
            "f": args.f,
            "replicas": list(self.names),
            "reported": sorted(self.reports),
            "survivors": sorted(survivors),
            "killed": sorted(killed),
            "restarted": sorted(self.restarted),
            "rejoined": rejoined,
            "recovery": {
                name: report["rejoin"]
                for name, report in self.reports.items()
                if report.get("rejoin")
            },
            "committed_prefix": prefix,
            "histories_agree": ok,
            "divergence": (
                list(agreement.divergence) if agreement.divergence else None
            ),
        }
        artifact_file = None
        if args.json_dir and self.reports:
            from repro.live.validate import write_live_artifact

            artifact_file = str(write_live_artifact(
                reports=self.reports,
                protocol=args.protocol,
                scheme=args.scheme,
                f=args.f,
                seed=args.seed,
                batching_interval=args.batching_interval,
                duration=args.duration,
                warmup=args.warmup,
                json_dir=args.json_dir,
                with_failover=bool(self.faults),
            ))
            summary["artifact"] = artifact_file
        print(json.dumps(summary, sort_keys=True), flush=True)
        if not ok:
            slot, left, right = agreement.divergence
            print(
                f"serve: SAFETY VIOLATION — {left} and {right} diverge "
                f"at committed slot {slot}",
                file=sys.stderr,
            )
            return 1
        print(
            f"serve: {len(survivors)} survivors agree on a committed prefix "
            f"of {prefix} batch(es)"
            + (f"; artifact {artifact_file}" if artifact_file else ""),
            file=sys.stderr, flush=True,
        )
        return 0


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--protocol", default="sc", choices=protocols.names(),
                        help="protocol plugin to deploy (default sc)")
    parser.add_argument("--f", type=int, default=1,
                        help="fault-tolerance parameter (default 1)")
    parser.add_argument("--scheme", default="md5-rsa1024",
                        help="crypto scheme name (default md5-rsa1024)")
    parser.add_argument("--batching-interval", type=float, default=0.100)
    parser.add_argument("--heartbeat-interval", type=float, default=0.100)
    parser.add_argument("--view-timeout", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=1,
                        help="dealer seed: all nodes derive identical keys")
    parser.add_argument("--bind", default="127.0.0.1:0", metavar="HOST:PORT",
                        help="control interface (controller mode)")
    parser.add_argument("--join", default=None, metavar="HOST:PORT",
                        help="join an existing controller as one replica")
    parser.add_argument("--replica-id", default=None,
                        help="which order process this node hosts (with --join)")
    parser.add_argument("--node-bind", default="127.0.0.1",
                        help="data interface spawned/joining nodes bind")
    parser.add_argument("--spawn", type=int, default=None, metavar="N",
                        help="0 = spawn nothing, wait for external joiners "
                             "(default: spawn every replica locally)")
    parser.add_argument("--duration", type=float, default=None,
                        help="stop the cluster this many seconds after start "
                             "(default: run until SIGINT)")
    parser.add_argument("--warmup", type=float, default=0.5,
                        help="seconds excluded from artifact rate windows")
    parser.add_argument("--kill-after", action="append", default=[],
                        metavar="NAME:SECONDS",
                        help="crash a replica at t=SECONDS (repeatable)")
    parser.add_argument("--pause-after", action="append", default=[],
                        metavar="NAME:SECONDS[:DUR]",
                        help="pause a replica for DUR seconds (repeatable)")
    parser.add_argument("--restart-after", action="append", default=[],
                        metavar="NAME:SECONDS",
                        help="restart a (killed) replica at t=SECONDS; it "
                             "rejoins via committed-prefix state transfer "
                             "(repeatable)")
    parser.add_argument("--partition", action="append", default=[],
                        metavar="A,B|C,D:T[:D]",
                        help="drop frames crossing the group boundary during "
                             "[T, T+D) (repeatable)")
    parser.add_argument("--drop", action="append", default=[],
                        metavar="NAME:RATE:T[:D]",
                        help="drop frames to/from NAME with probability RATE "
                             "during [T, T+D); NAME may be * (repeatable)")
    parser.add_argument("--delay-jitter", action="append", default=[],
                        metavar="NAME:JITTER:T[:D]",
                        help="hold frames to/from NAME up to JITTER seconds "
                             "during [T, T+D) (repeatable)")
    parser.add_argument("--hb-interval", type=float,
                        default=heartbeat_mod.DEFAULT_INTERVAL,
                        help="liveness beacon interval in seconds "
                             f"(default {heartbeat_mod.DEFAULT_INTERVAL})")
    parser.add_argument("--hb-timeout", type=float,
                        default=heartbeat_mod.DEFAULT_TIMEOUT,
                        help="silence after which a peer is suspected "
                             f"(default {heartbeat_mod.DEFAULT_TIMEOUT})")
    parser.add_argument("--auth-key", default=None,
                        help=f"pre-shared handshake key (or ${framing.AUTH_KEY_ENV})"
                             "; required for non-loopback binds")
    parser.add_argument("--json-dir", default=None,
                        help="write a BENCH_live_<protocol>.json artifact here")


def cmd_serve(args) -> int:
    if args.join:
        if not args.replica_id:
            raise ConfigError("--join needs --replica-id")
        from repro.live.node import run_node

        node_args = argparse.Namespace(
            join=args.join, replica_id=args.replica_id,
            bind=args.node_bind, auth_key=args.auth_key,
        )
        return asyncio.run(run_node(node_args))
    return asyncio.run(_Controller(args).run())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="run (or join) a live replica cluster over TCP/asyncio",
    )
    add_serve_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return cmd_serve(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
