"""Clients of the replicated service.

Per the system model, clients are correct and "direct their requests to
all nodes", so every non-faulty order process receives every request
and order messages need only carry digests.
"""

from __future__ import annotations

from repro.core.messages import HEADER_BYTES
from repro.core.replies import Reply, ReplyTracker
from repro.core.requests import ClientRequest
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.sim.process import Actor


class Client(Actor):
    """A correct client multicasting requests to all order processes.

    When the deployment sends replies (``ProtocolConfig.send_replies``),
    the client accepts a request as completed once ``f + 1`` distinct
    processes reported the same execution result.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        network: Network,
        targets: tuple[str, ...],
        request_bytes: int = 64,
        marshal_cost: float = 20e-6,
        f: int = 1,
    ) -> None:
        super().__init__(sim, name)
        self.network = network
        self.targets = targets
        self.request_bytes = request_bytes
        self.marshal_cost = marshal_cost
        self._next_id = 1
        self.issued: list[ClientRequest] = []
        self.replies = ReplyTracker(f)
        self._issue_times: dict[int, float] = {}

    def issue(self, payload: bytes = b"") -> ClientRequest:
        """Send one request to every order process; returns the request."""
        request = ClientRequest(
            client=self.name,
            req_id=self._next_id,
            payload=payload,
            size_bytes=max(self.request_bytes, HEADER_BYTES + len(payload)),
        )
        self._next_id += 1
        self.issued.append(request)
        self._issue_times[request.req_id] = self.sim.now
        depart = self.charge(self.marshal_cost)
        self.network.multicast(
            self.name, self.targets, request, request.size_bytes, depart_time=depart
        )
        # Scale-only kind: guard so unmeasured runs skip the record.
        if self.sim.trace.wants("request_issued"):
            self.trace("request_issued", req=request.key)
        return request

    def on_message(self, sender: str, payload) -> None:
        if isinstance(payload, Reply) and payload.client == self.name:
            if self.replies.note_reply(payload, self.sim.now):
                issued_at = self._issue_times.get(payload.req_id)
                self.trace(
                    "request_completed",
                    req=(payload.client, payload.req_id),
                    seq=payload.seq,
                    rtt=None if issued_at is None else self.sim.now - issued_at,
                )

    @property
    def completed_count(self) -> int:
        """Requests with ``f + 1`` matching execution results."""
        return len(self.replies.completed)
