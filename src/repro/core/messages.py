"""Protocol message types and the signed-message wrapper.

Terminology follows Sections 3 and 4 of the paper:

* ``order<c, o, D(m)>`` — a coordinator's order decision; with batching
  (Section 4.3) a wire message carries a *batch* of consecutive
  decisions, represented here as :class:`OrderBatch`;
* a **doubly-signed** message carries two signatures in sequence; the
  second signatory signed over the body *and* the first signature,
  indicating endorsement (Section 3);
* ``ack`` — N1's acknowledgement, which "also contains the received
  order";
* ``fail-signal`` — the pre-supplied, counterpart-signed blank that a
  pair member double-signs to announce the pair's crash (Section 3.2);
* ``BackLog`` / ``Start`` / support tuples — the install part
  (Section 4.2);
* ``ViewChange`` / ``Unwilling`` — the SCR extension (Section 4.4).

Wire sizes are *estimates* used by the simulator's delay and marshal
models; they count payload bytes plus signature bytes, mirroring the
Java-serialised sizes of the paper's implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.crypto.dealer import FailSignalBody
from repro.crypto.signed import (
    SignedMessage,
    countersign,
    require_signed,
    sign_message,
    signing_bytes,
    verify_signed,
)
from repro.crypto.signing import Signature

__all__ = [
    "Ack",
    "BackLog",
    "CatchUpReply",
    "CatchUpRequest",
    "CommitProof",
    "FailSignalBody",
    "HEADER_BYTES",
    "Heartbeat",
    "NewView",
    "OrderBatch",
    "OrderEntry",
    "PairForward",
    "PairProposal",
    "PairStartProposal",
    "PairStatusUp",
    "SignedMessage",
    "Start",
    "StartSupport",
    "SupportBundle",
    "Unwilling",
    "ViewChange",
    "countersign",
    "payload_size",
    "require_signed",
    "sign_message",
    "signing_bytes",
    "verify_signed",
]

#: Fixed per-message framing overhead (headers, type tags) in bytes.
HEADER_BYTES = 48
#: Estimated wire size of one order entry (seq + digest + request key).
ENTRY_BYTES = 40


# ----------------------------------------------------------------------
# Ordering messages
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OrderEntry:
    """One order decision ``order<c, o, D(m)>`` (c lives on the batch)."""

    seq: int
    req_digest: bytes
    client: str
    req_id: int


@dataclass(frozen=True)
class OrderBatch:
    """A batch of consecutive order decisions from coordinator ``rank``.

    ``batch_id`` is unique per (rank, first_seq) and used for latency
    bookkeeping and duplicate suppression.
    """

    rank: int
    batch_id: int
    entries: tuple[OrderEntry, ...]

    @property
    def first_seq(self) -> int:
        return self.entries[0].seq

    @property
    def last_seq(self) -> int:
        return self.entries[-1].seq

    def payload_bytes(self) -> int:
        return HEADER_BYTES + ENTRY_BYTES * len(self.entries)


@dataclass(frozen=True)
class Ack:
    """N1's acknowledgement; carries the order it acknowledges."""

    acker: str
    order: SignedMessage  # SignedMessage[OrderBatch]

    def payload_bytes(self) -> int:
        batch: OrderBatch = self.order.body
        return HEADER_BYTES + batch.payload_bytes() + self.order.signature_bytes


@dataclass(frozen=True)
class CommitProof:
    """Proof of commitment: the distinct ack/order evidence retained by
    N3.  ``acks`` are the signed ack messages received; together with
    the order's own signers they name at least ``quorum`` distinct
    processes.  Carrying the signatures (not just names) means a
    Byzantine process cannot fabricate a proof to skew the install
    part's ``max_committed`` computation."""

    order: SignedMessage  # SignedMessage[OrderBatch]
    acks: tuple[SignedMessage, ...]  # SignedMessage[Ack], distinct ackers
    quorum: int

    @property
    def supporters(self) -> frozenset[str]:
        names = set(self.order.signers)
        for ack in self.acks:
            names.add(ack.body.acker)
        return frozenset(names)

    def payload_bytes(self) -> int:
        batch: OrderBatch = self.order.body
        size = HEADER_BYTES + batch.payload_bytes() + self.order.signature_bytes
        # Acks reference the order by digest on the wire rather than
        # embedding it again, hence the flat per-ack estimate.
        size += len(self.acks) * (HEADER_BYTES + 20)
        for ack in self.acks:
            size += ack.signature_bytes
        return size


@dataclass(frozen=True)
class BackLog:
    """IN1's recovery report from one process.

    Contains (a) the fail-signal that triggered the install, (b) the
    committed order with the largest sequence number plus its proof of
    commitment, and (c) every acked-but-uncommitted order.
    """

    sender: str
    new_rank: int
    fail_signal: SignedMessage  # SignedMessage[FailSignalBody]
    max_committed: CommitProof | None
    uncommitted: tuple[SignedMessage, ...]  # SignedMessage[OrderBatch]

    def payload_bytes(self) -> int:
        size = HEADER_BYTES
        size += HEADER_BYTES + self.fail_signal.signature_bytes  # embedded fail-signal
        if self.max_committed is not None:
            size += self.max_committed.payload_bytes()
        for signed in self.uncommitted:
            batch: OrderBatch = signed.body
            size += batch.payload_bytes() + signed.signature_bytes
        return size


@dataclass(frozen=True)
class Start:
    """IN2's installation order from the new coordinator.

    Treated as an order message with sequence number ``start_seq``;
    committing it commits every order in ``new_backlog``.
    """

    new_rank: int
    start_seq: int
    new_backlog: tuple[SignedMessage, ...]  # SignedMessage[OrderBatch], seq order

    def payload_bytes(self) -> int:
        size = HEADER_BYTES
        for signed in self.new_backlog:
            batch: OrderBatch = signed.body
            size += batch.payload_bytes() + signed.signature_bytes
        return size


@dataclass(frozen=True)
class StartSupport:
    """IN3's identifier–signature tuple supporting a Start."""

    supporter: str
    new_rank: int
    signature: Signature  # over the doubly-signed Start

    def payload_bytes(self) -> int:
        return HEADER_BYTES + self.signature.size_bytes


@dataclass(frozen=True)
class SupportBundle:
    """IN4's multicast of the collected support tuples."""

    new_rank: int
    tuples: tuple[StartSupport, ...]

    def payload_bytes(self) -> int:
        return HEADER_BYTES + sum(t.payload_bytes() for t in self.tuples)


@dataclass(frozen=True)
class CatchUpRequest:
    """A lagging process asks peers for committed orders it is missing."""

    requester: str
    first_seq: int
    last_seq: int

    def payload_bytes(self) -> int:
        return HEADER_BYTES


@dataclass(frozen=True)
class CatchUpReply:
    """Committed orders returned to a lagging process.  The requester
    accepts an order once ``f + 1`` distinct repliers agree on it."""

    replier: str
    orders: tuple[SignedMessage, ...]

    def payload_bytes(self) -> int:
        size = HEADER_BYTES
        for signed in self.orders:
            batch: OrderBatch = signed.body
            size += batch.payload_bytes() + signed.signature_bytes
        return size


# ----------------------------------------------------------------------
# SCR extension messages (Section 4.4)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ViewChange:
    """A vote to move to ``view``; carries the sender's backlog data."""

    sender: str
    view: int
    max_committed: CommitProof | None
    uncommitted: tuple[SignedMessage, ...]

    def payload_bytes(self) -> int:
        size = HEADER_BYTES
        if self.max_committed is not None:
            size += self.max_committed.payload_bytes()
        for signed in self.uncommitted:
            batch: OrderBatch = signed.body
            size += batch.payload_bytes() + signed.signature_bytes
        return size


@dataclass(frozen=True)
class Unwilling:
    """The candidate pair for ``view`` declines (its status is not up);
    includes its fail-signal as evidence."""

    sender: str
    view: int
    fail_signal: SignedMessage

    def payload_bytes(self) -> int:
        return 2 * HEADER_BYTES + self.fail_signal.signature_bytes


@dataclass(frozen=True)
class NewView:
    """The SCR analogue of Start: installs ``view`` with a backlog."""

    view: int
    new_rank: int
    start_seq: int
    new_backlog: tuple[SignedMessage, ...]

    def payload_bytes(self) -> int:
        size = HEADER_BYTES
        for signed in self.new_backlog:
            batch: OrderBatch = signed.body
            size += batch.payload_bytes() + signed.signature_bytes
        return size


# ----------------------------------------------------------------------
# Pair-internal messages (fast link)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PairProposal:
    """Coordinator replica -> shadow: an order awaiting endorsement."""

    order: SignedMessage  # singly-signed OrderBatch

    def payload_bytes(self) -> int:
        batch: OrderBatch = self.order.body
        return HEADER_BYTES + batch.payload_bytes() + self.order.signature_bytes


@dataclass(frozen=True)
class PairStartProposal:
    """New coordinator replica -> shadow: Start plus the ``n − f``
    BackLogs it was computed from (IN2)."""

    start: SignedMessage  # singly-signed Start
    backlogs: tuple[SignedMessage, ...]  # signed BackLog messages

    def payload_bytes(self) -> int:
        start: Start = self.start.body
        size = HEADER_BYTES + start.payload_bytes() + self.start.signature_bytes
        for signed in self.backlogs:
            body: BackLog = signed.body
            size += body.payload_bytes() + signed.signature_bytes
        return size


@dataclass(frozen=True)
class PairForward:
    """Section 3.1 normal-form collaboration: a copy of a message the
    sender received/sent over the asynchronous network."""

    original_sender: str
    payload: Any
    size_hint: int

    def payload_bytes(self) -> int:
        return HEADER_BYTES + self.size_hint


@dataclass(frozen=True)
class Heartbeat:
    """Pair liveness probe (drives SCR recovery detection)."""

    sender: str
    nonce: int

    def payload_bytes(self) -> int:
        return HEADER_BYTES


@dataclass(frozen=True)
class PairStatusUp:
    """SCR: pair members agree their pair is operative again."""

    sender: str
    since: float

    def payload_bytes(self) -> int:
        return HEADER_BYTES


def payload_size(payload: Any) -> int:
    """Wire size of any protocol payload.

    ``SignedMessage`` adds its signature bytes on top of the body.

    The size of a frozen message never changes, yet the senders ask for
    it repeatedly (cost charging, marshalling, forwarding), so the
    computed value is memoised on the instance; objects that refuse the
    attribute (slots, builtins) are simply recomputed each time.
    """
    try:
        return payload._payload_size_
    except AttributeError:
        pass
    if isinstance(payload, SignedMessage):
        size = payload_size(payload.body) + payload.signature_bytes
    else:
        sizer = getattr(payload, "payload_bytes", None)
        if sizer is not None:
            size = sizer()
        else:
            # FailSignalBody and any other bare body: framing only.
            size = HEADER_BYTES
    try:
        object.__setattr__(payload, "_payload_size_", size)
    except (AttributeError, TypeError):
        pass
    return size
