"""Client requests and their digests."""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto import canon as _canon
from repro.crypto.digests import digest
from repro.crypto.encoding import canonical_bytes


@dataclass(frozen=True)
class ClientRequest:
    """One request from a correct client.

    ``payload`` carries the operation for the deterministic state
    machine.  ``size_bytes`` is the declared wire size — performance
    runs use small payloads with a declared size so the simulator
    accounts realistic bytes without hauling them around.
    """

    client: str
    req_id: int
    payload: bytes = b""
    size_bytes: int = 64

    def __post_init__(self) -> None:
        # ``key`` — the request's identity ``(client, req_id)`` — is a
        # plain precomputed attribute, deliberately unannotated so the
        # dataclass machinery does not treat it as a field: it stays
        # out of eq/repr/__init__ and the canonical encoding.  The
        # request pool reads it on every delivery, and a property
        # descriptor plus tuple allocation per read was measurable.
        object.__setattr__(self, "key", (self.client, self.req_id))

    def digest_under(self, digest_name: str) -> bytes:
        """The request digest ``D(m)`` used inside order messages.

        Memoised per instance: a request is digested by the coordinator
        at batch formation and again wherever an order referencing it
        is checked, always over the same frozen content.  In
        fast-crypto mode the digest is the request's identity token —
        every process holds the same request *object* (in-simulation
        messages travel by reference), so token equality certifies
        exactly what digest equality does.
        """
        if _canon._fast_tokens:
            return _canon.identity_token(self)
        cache = self.__dict__.get("_digest_cache_")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_digest_cache_", cache)
        value = cache.get(digest_name)
        if value is None:
            value = digest(digest_name, canonical_bytes(self))
            cache[digest_name] = value
        return value
