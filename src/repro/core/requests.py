"""Client requests and their digests."""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.digests import digest
from repro.crypto.encoding import canonical_bytes


@dataclass(frozen=True)
class ClientRequest:
    """One request from a correct client.

    ``payload`` carries the operation for the deterministic state
    machine.  ``size_bytes`` is the declared wire size — performance
    runs use small payloads with a declared size so the simulator
    accounts realistic bytes without hauling them around.
    """

    client: str
    req_id: int
    payload: bytes = b""
    size_bytes: int = 64

    @property
    def key(self) -> tuple[str, int]:
        """Identity of the request: ``(client, req_id)``."""
        return (self.client, self.req_id)

    def digest_under(self, digest_name: str) -> bytes:
        """The request digest ``D(m)`` used inside order messages.

        Memoised per instance: a request is digested by the coordinator
        at batch formation and again wherever an order referencing it
        is checked, always over the same frozen content.
        """
        cache = self.__dict__.get("_digest_cache_")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_digest_cache_", cache)
        value = cache.get(digest_name)
        if value is None:
            value = digest(digest_name, canonical_bytes(self))
            cache[digest_name] = value
        return value
