"""The replicated deterministic state machine (the ``s_i`` of Figure 1).

The order protocol's whole purpose is to feed every replica the same
sequence of requests.  :class:`ReplicatedStateMachine` consumes
committed order entries **in sequence order** and folds them into a
running state digest; two replicas that processed the same prefix have
equal digests, which is the safety property the integration tests
assert.

A richer machine (:class:`KeyValueStateMachine`) executes request
payloads of the form ``set <key> <value>`` / ``del <key>`` and is used
by the examples to show end-to-end replication.
"""

from __future__ import annotations

import hashlib

from repro.core.messages import OrderEntry
from repro.errors import ProtocolError


class ReplicatedStateMachine:
    """Digest-chained execution log.

    ``apply`` must be called with strictly consecutive sequence numbers
    starting at 1; the class raises on gaps or replays, making ordering
    bugs loud in tests.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.applied_seq = 0
        self._digest = hashlib.sha256(b"genesis").digest()
        self.history: list[tuple[int, bytes]] = []

    def apply(self, entry: OrderEntry) -> None:
        """Execute one committed order entry."""
        if entry.seq != self.applied_seq + 1:
            raise ProtocolError(
                f"{self.name}: applying seq {entry.seq} after {self.applied_seq}"
            )
        self.applied_seq = entry.seq
        self._digest = hashlib.sha256(
            self._digest + entry.seq.to_bytes(8, "big") + entry.req_digest
        ).digest()
        self.history.append((entry.seq, entry.req_digest))

    def state_digest(self) -> bytes:
        """Digest of the whole execution history so far."""
        return self._digest

    def __len__(self) -> int:
        return len(self.history)


class KeyValueStateMachine(ReplicatedStateMachine):
    """A small key-value store executed from request payloads.

    Payload grammar (ASCII): ``set <key> <value>`` or ``del <key>``.
    Unparseable payloads are ignored but still digested, so replicas
    stay consistent even on junk input.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.data: dict[str, str] = {}

    def execute_payload(self, entry: OrderEntry, payload: bytes) -> None:
        """Apply the entry and interpret its payload."""
        self.apply(entry)
        try:
            text = payload.decode("ascii")
        except UnicodeDecodeError:
            return
        parts = text.split(" ", 2)
        if len(parts) == 3 and parts[0] == "set":
            self.data[parts[1]] = parts[2]
        elif len(parts) == 2 and parts[0] == "del":
            self.data.pop(parts[1], None)
