"""Deployment configuration for the signal-on-fail protocols.

Encodes the paper's structural rules:

* **SC** (Section 3): ``n = 3f + 1`` order processes — replicas
  ``p1 .. p(2f+1)`` of which ``p1 .. pf`` are paired with shadows
  ``p1' .. pf'``; coordinator candidates are the ``f`` pairs (ranked
  first) followed by the unpaired ``p(f+1)``.
* **SCR** (Section 4.4): ``n = 3f + 2`` — ``f + 1`` pairs (``p(f+1)``
  gains a shadow) and only pairs may coordinate.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.crypto.schemes import MD5_RSA_1024, CryptoScheme
from repro.errors import ConfigError
from repro.net.addresses import replica_name, shadow_name


@dataclass(frozen=True)
class ProtocolConfig:
    """Parameters of one signal-on-fail deployment.

    Attributes
    ----------
    f:
        Fault-tolerance parameter; at most ``f`` nodes fail overall
        (``fr + fs <= f``, Assumption 1).
    variant:
        ``"sc"`` for the Signal-on-Crash set-up (assumptions 3(a)),
        ``"scr"`` for Signal-on-Crash-and-Recovery (assumptions 3(b)).
    scheme:
        Digest/signature configuration (Section 5 evaluates three).
    batching_interval:
        Seconds between coordinator batch formations (paper: 40–500 ms).
    batch_size_bytes:
        Maximum batch payload (paper: fixed at 1 KB).
    pair_delay_estimate:
        The differential delay bound used for timeliness checking inside
        a pair (Section 2.1.1); accurate under 3(a)(i), eventually
        accurate under 3(b)(i).
    order_deadline_slack:
        Extra allowance on top of ``batching_interval`` before a shadow
        treats a missing order decision as a time-domain failure.
    heartbeat_interval:
        Pair heartbeat cadence (drives both failure detection in idle
        periods and SCR recovery probing).
    dumb_optimization:
        Section 4.3's first optimisation — fail-signalled pairs stop
        transmitting and the quorum shrinks accordingly.
    pair_forwarding:
        Section 3.1's normal-form collaboration (i): paired processes
        forward copies of received messages to their counterpart.
        Defaults to off because the collaboration is already satisfied
        by direct reception — clients address *all* nodes and protocol
        multicasts address all order processes, so each pair member
        receives every message its counterpart does; explicit copies
        only add pair-link load.  (The paper's measured SC latencies,
        which beat BFT, are only reproducible with redundant copying
        disabled; an ablation benchmark quantifies its cost.)
    view_timeout:
        SCR only — how long an uncommitted order may age before a
        process calls for a view change.
    send_replies:
        Close the SMR loop: processes send execution results to
        clients, which accept on ``f + 1`` matching replies.  Off by
        default so the performance studies measure exactly the paper's
        ordering path.
    checkpoint_interval:
        Sequence numbers between checkpoints (0 disables).  When
        ``f + 1`` processes vouch for the same state digest, committed
        log entries below it are discarded.
    """

    f: int = 2
    variant: str = "sc"
    scheme: CryptoScheme = field(default_factory=lambda: MD5_RSA_1024)
    batching_interval: float = 0.100
    batch_size_bytes: int = 1024
    request_bytes: int = 64
    pair_delay_estimate: float = 0.020
    order_deadline_slack: float = 0.050
    heartbeat_interval: float = 0.100
    dumb_optimization: bool = True
    pair_forwarding: bool = False
    view_timeout: float = 2.0
    send_replies: bool = False
    checkpoint_interval: int = 0

    def __post_init__(self) -> None:
        if self.f < 1:
            raise ConfigError(f"f must be >= 1, got {self.f}")
        if self.variant not in ("sc", "scr"):
            raise ConfigError(f"variant must be 'sc' or 'scr', got {self.variant!r}")
        if self.batching_interval <= 0:
            raise ConfigError("batching_interval must be positive")
        if self.batch_size_bytes < self.request_bytes:
            raise ConfigError("batch_size_bytes smaller than one request")
        if self.pair_delay_estimate <= 0:
            raise ConfigError("pair_delay_estimate must be positive")

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def replica_count(self) -> int:
        """Number of replica order processes (``2f + 1``)."""
        return 2 * self.f + 1

    @property
    def pair_count(self) -> int:
        """Number of replica/shadow pairs (``f`` for SC, ``f+1`` for SCR)."""
        return self.f if self.variant == "sc" else self.f + 1

    @property
    def n(self) -> int:
        """Total order processes: ``3f + 1`` (SC) or ``3f + 2`` (SCR)."""
        return self.replica_count + self.pair_count

    @property
    def order_quorum(self) -> int:
        """Distinct ack-or-order count needed to commit: ``n − f``."""
        return self.n - self.f

    @property
    def coordinator_candidates(self) -> int:
        """Number of ranked coordinator candidates (``f + 1``)."""
        return self.f + 1

    @property
    def replica_names(self) -> tuple[str, ...]:
        """Names ``p1 .. p(2f+1)``."""
        return tuple(replica_name(i) for i in range(1, self.replica_count + 1))

    @property
    def shadow_names(self) -> tuple[str, ...]:
        """Names of the shadow processes, pair rank order."""
        return tuple(shadow_name(i) for i in range(1, self.pair_count + 1))

    @property
    def process_names(self) -> tuple[str, ...]:
        """Every order process (replicas then shadows)."""
        return self.replica_names + self.shadow_names

    @property
    def paired_indices(self) -> tuple[int, ...]:
        """Replica indices that have a shadow."""
        return tuple(range(1, self.pair_count + 1))

    def is_paired(self, index: int) -> bool:
        """Whether replica ``index`` has a shadow."""
        return 1 <= index <= self.pair_count

    def coordinator_members(self, rank: int) -> tuple[str, ...]:
        """Process names of coordinator candidate ``rank`` (1-based).

        For SC, ranks ``1..f`` are the pairs and rank ``f+1`` is the
        unpaired process ``p(f+1)``.  For SCR every rank is a pair.
        """
        if not 1 <= rank <= self.coordinator_candidates:
            raise ConfigError(
                f"coordinator rank {rank} out of range 1..{self.coordinator_candidates}"
            )
        if self.variant == "sc" and rank == self.f + 1:
            return (replica_name(rank),)
        return (replica_name(rank), shadow_name(rank))

    def require_variant(self, expected: str, protocol: str | None = None) -> None:
        """Assert this config carries the structural variant a protocol
        deploys with; raises a :class:`ConfigError` naming the fix.

        Protocol plugins call this from ``validate()`` — the single
        home of the protocol/variant consistency rule that used to be
        duplicated across the cluster builder.
        """
        if self.variant != expected:
            who = f"protocol {protocol!r}" if protocol else "this deployment"
            raise ConfigError(
                f"{who} needs config.variant={expected!r} but got "
                f"{self.variant!r}; build the config with "
                f"ProtocolConfig(variant={expected!r}, ...) or use the "
                f"plugin's default_config()/configure()"
            )

    def scr_candidate_rank(self, view: int) -> int:
        """SCR: coordinator-pair rank for ``view`` (views start at 1).

        Implements the paper's ``c = v mod (f+1)``, with ``c = f+1``
        when the residue is zero.
        """
        residue = view % (self.f + 1)
        return residue if residue != 0 else self.f + 1

    def with_(self, **changes) -> "ProtocolConfig":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **changes)
