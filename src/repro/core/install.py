"""The install part (Section 4.2): choosing what the new coordinator
carries forward.

The heart is :func:`compute_new_backlog`, the paper's NewBackLog rule:

1. among the ``n − f`` received BackLogs, find the committed order with
   the largest sequence number (``max{max_committed}``) — the *base*;
2. include every uncommitted order with a sequence number above the
   base found in any BackLog;
3. where two *conflicting* doubly-signed orders exist for one sequence
   number (possible only when both members of a previous coordinator
   pair have failed, see Section 4.2's discussion), keep the copy that
   appears in at least ``f + 1`` BackLogs — only that one can have been
   committed by a correct process; with no majority copy, no correct
   process committed either, so the deterministic tie-break (smallest
   digest) is safe.

The same computation serves the SCR extension's view change, which
carries BackLog-shaped data inside ViewChange messages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.messages import BackLog, CommitProof, OrderBatch, SignedMessage
from repro.crypto.encoding import canonical_bytes
from repro.errors import ProtocolError


@dataclass(frozen=True)
class BacklogView:
    """The fields of a BackLog the computation needs (ViewChange
    messages in SCR provide the same shape)."""

    sender: str
    max_committed: CommitProof | None
    uncommitted: tuple[SignedMessage, ...]


def as_view(backlog: BackLog) -> BacklogView:
    """Project a BackLog message onto the computation's input shape."""
    return BacklogView(
        sender=backlog.sender,
        max_committed=backlog.max_committed,
        uncommitted=backlog.uncommitted,
    )


@dataclass(frozen=True)
class NewBacklogResult:
    """Outcome of the NewBackLog computation."""

    base_proof: CommitProof | None  # the max{max_committed} order + proof
    base_seq: int  # last sequence number covered by the base (0 if none)
    new_backlog: tuple[SignedMessage, ...]  # orders to re-commit, seq order
    start_seq: int  # sequence number the Start message itself occupies


def _batch_of(signed: SignedMessage) -> OrderBatch:
    batch = signed.body
    if not isinstance(batch, OrderBatch):
        raise ProtocolError(f"backlog entry is not an order batch: {type(batch)}")
    return batch


def _batch_key(signed: SignedMessage) -> bytes:
    """Identity of a batch's contents (for counting agreeing copies)."""
    batch = _batch_of(signed)
    return canonical_bytes((batch.rank, [(e.seq, e.req_digest) for e in batch.entries]))


def compute_new_backlog(views: list[BacklogView], f: int) -> NewBacklogResult:
    """The paper's NewBackLog rule over ``n − f`` backlog views."""
    if not views:
        raise ProtocolError("NewBackLog needs at least one backlog")

    # Step 1: the base — the committed order with the largest sequence.
    base_proof: CommitProof | None = None
    base_seq = 0
    for view in views:
        proof = view.max_committed
        if proof is None:
            continue
        last = _batch_of(proof.order).last_seq
        if last > base_seq:
            base_seq = last
            base_proof = proof

    # Step 2: candidate uncommitted orders above the base, grouped by
    # their first sequence number.
    by_slot: dict[int, dict[bytes, tuple[SignedMessage, set[str]]]] = {}
    for view in views:
        for signed in view.uncommitted:
            batch = _batch_of(signed)
            if batch.last_seq <= base_seq:
                continue
            key = _batch_key(signed)
            slot = by_slot.setdefault(batch.first_seq, {})
            if key in slot:
                slot[key][1].add(view.sender)
            else:
                slot[key] = (signed, {view.sender})

    # Step 3: conflict resolution per slot.
    chosen: list[SignedMessage] = []
    for first_seq in sorted(by_slot):
        candidates = by_slot[first_seq]
        if len(candidates) == 1:
            (signed, _supporters), = candidates.values()
            chosen.append(signed)
            continue
        majority = [
            (key, signed)
            for key, (signed, supporters) in candidates.items()
            if len(supporters) >= f + 1
        ]
        if majority:
            # At most one copy can reach f+1 among n-f backlogs of
            # which at most f are faulty.
            majority.sort(key=lambda item: item[0])
            chosen.append(majority[0][1])
        else:
            # No copy was committed by any correct process; any
            # deterministic choice is safe.
            key = min(candidates)
            chosen.append(candidates[key][0])

    # The chosen orders must tile the range above the base without
    # holes (guaranteed by the in-sequence ack rule; see DESIGN.md).
    next_seq = base_seq + 1
    contiguous: list[SignedMessage] = []
    for signed in chosen:
        batch = _batch_of(signed)
        if batch.first_seq > next_seq:
            break  # hole: later orders cannot be safely re-committed
        if batch.last_seq < next_seq:
            continue  # overlaps the base; already covered
        contiguous.append(signed)
        next_seq = batch.last_seq + 1

    start_seq = next_seq
    return NewBacklogResult(
        base_proof=base_proof,
        base_seq=base_seq,
        new_backlog=tuple(contiguous),
        start_seq=start_seq,
    )


def verify_start_against_backlogs(
    claimed: tuple[SignedMessage, ...],
    claimed_start_seq: int,
    provided_views: list[BacklogView],
    own_views: list[BacklogView],
    f: int,
) -> bool:
    """The shadow's IN2 check of the replica's Start computation.

    Recomputes NewBackLog from the backlogs the replica supplied.  For
    any slot where the replica's choice differs from the recomputation
    (possible only under conflicting doubly-signed orders), the shadow
    consults the backlogs *it received directly* (``own_views``): the
    replica's choice is acceptable only if no conflicting copy has
    ``f + 1`` direct supporters — i.e. only if the replica did not
    discard a possibly-committed order.
    """
    recomputed = compute_new_backlog(provided_views, f)
    if recomputed.start_seq != claimed_start_seq:
        return False
    if len(recomputed.new_backlog) != len(claimed):
        return False
    own_counts: dict[int, dict[bytes, int]] = {}
    for view in own_views:
        for signed in view.uncommitted:
            batch = _batch_of(signed)
            slot = own_counts.setdefault(batch.first_seq, {})
            key = _batch_key(signed)
            slot[key] = slot.get(key, 0) + 1
    # Every claimed slot must carry the copy that might have been
    # committed: if the shadow's own backlogs show f+1 supporters for a
    # *different* copy at that slot, the replica discarded a possibly-
    # committed order — even if its provided backlogs were internally
    # consistent (a Byzantine replica chooses which backlogs to show).
    claimed_keys = {}
    for ours, theirs in zip(recomputed.new_backlog, claimed):
        if _batch_key(ours) != _batch_key(theirs):
            return False  # not the NewBackLog the provided backlogs give
        batch = _batch_of(theirs)
        claimed_keys[batch.first_seq] = _batch_key(theirs)
    for first_seq, counts in own_counts.items():
        for key, count in counts.items():
            if count < f + 1:
                continue
            chosen = claimed_keys.get(first_seq)
            if chosen is not None and chosen != key:
                return False
    return True
