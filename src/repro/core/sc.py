"""The SC order protocol (Sections 3–4.3).

One :class:`ScProcess` per order process.  The first ``f`` replicas are
paired with shadows; pair rank ``c`` coordinates, starting at 1.

Normal operation (Figure 3(a)) — three phases:

1. **1 → 1**: coordinator replica ``pc`` assigns sequence numbers to a
   batch of requests, signs the batch and sends it *only* to its shadow
   ``p'c`` for endorsement;
2. **2 → n**: the shadow validates (value domain), countersigns and
   multicasts the doubly-signed order to everyone; ``pc`` forwards the
   endorsed order to everyone as well;
3. **n → n**: every process that received the doubly-signed,
   in-sequence order multicasts a signed ack (N1), waits for ack-or-
   order evidence from ``n − f`` distinct processes (N2) and commits,
   retaining the evidence as proof of commitment (N3).

Failure handling: mutual checking turns a value- or time-domain fault
inside the coordinator pair into a doubly-signed **fail-signal**, which
triggers the install part (IN1–IN5, :mod:`repro.core.install`).  After
each installation the old coordinator pair goes *dumb* (Section 4.3)
and the quorum shrinks accordingly.

Assumption 3(a)(i) — "non-faulty processes never judge each other to be
untimely" — is embodied by a *suspicion oracle*: a time-domain deadline
miss is confirmed against the counterpart's actual fault state before a
fail-signal is raised (the SCR variant drops the oracle; see
:mod:`repro.core.scr`).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.calibration import CalibrationProfile
from repro.core.batching import Batcher
from repro.core.checkpoint import Checkpoint, CheckpointTracker
from repro.core.config import ProtocolConfig
from repro.core.replies import Reply, result_digest
from repro.core.install import (
    BacklogView,
    as_view,
    compute_new_backlog,
    verify_start_against_backlogs,
)
from repro.core.log import OrderLog
from repro.core.messages import (
    Ack,
    BackLog,
    CatchUpReply,
    CatchUpRequest,
    FailSignalBody,
    Heartbeat,
    OrderBatch,
    OrderEntry,
    PairForward,
    PairProposal,
    PairStartProposal,
    PairStatusUp,
    SignedMessage,
    Start,
    StartSupport,
    SupportBundle,
    payload_size,
    signing_bytes,
)
from repro.core.pair import (
    DEFER,
    INVALID,
    VALID,
    batches_equal,
    build_fail_signal,
    fail_signal_pair_rank,
    validate_order_batch,
)
from repro.core.process import OrderProcessBase
from repro.core.requests import ClientRequest
from repro.core.service import ReplicatedStateMachine
from repro.core.suspicion import ExpectationMonitor, OrderProductionWatch
from repro.crypto.digests import digest
from repro.crypto.encoding import canonical_bytes
from repro.crypto.signing import Signature, SignatureProvider
from repro.errors import ProtocolError
from repro.net.addresses import base_index, is_shadow, pair_of, replica_name
from repro.net.network import Network
from repro.sim.kernel import Simulator

#: Client-name marker of the pseudo order entry that carries a Start.
INSTALL_CLIENT = "__install__"

#: Message types handled at interrupt level (see ``is_urgent``); built
#: once — the check runs on every delivery.
_URGENT_TYPES = (Heartbeat, PairStatusUp)


def make_install_batch(
    signed_start: SignedMessage, digest_name: str
) -> OrderBatch:
    """Wrap a doubly-signed Start as a single-entry order batch so the
    normal part (N1–N3) can commit it (IN5)."""
    start: Start = signed_start.body
    entry = OrderEntry(
        seq=start.start_seq,
        req_digest=digest(digest_name, canonical_bytes(signed_start.body)),
        client=INSTALL_CLIENT,
        req_id=start.new_rank,
    )
    return OrderBatch(rank=start.new_rank, batch_id=-start.new_rank, entries=(entry,))


class ScProcess(OrderProcessBase):
    """One order process of the SC protocol."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        network: Network,
        config: ProtocolConfig,
        provider: SignatureProvider,
        calibration: CalibrationProfile,
        fail_signal_blank: tuple[FailSignalBody, Signature] | None = None,
    ) -> None:
        super().__init__(sim, name, network, provider, calibration)
        self.config = config
        self.index = base_index(name)
        self.shadow = is_shadow(name)
        self.paired = config.is_paired(self.index)
        self.counterpart = pair_of(name) if self.paired else None
        self.blank = fail_signal_blank
        if self.paired and fail_signal_blank is None:
            raise ProtocolError(f"paired process {name} needs a fail-signal blank")

        # --- ordering state -------------------------------------------
        self.c = 1
        self.log = OrderLog(config.order_quorum)
        self.machine = ReplicatedStateMachine(name)
        self.next_expected = 1  # next first_seq this process may ack
        self._exec_next = 1  # next first_seq to execute
        self.parked: dict[int, SignedMessage] = {}
        self.n_eff = config.n
        self.f_eff = config.f
        self.dumb_ranks: set[int] = set()

        # --- coordinator state ----------------------------------------
        self.unordered: list[ClientRequest] = []
        self.ordered_keys: set[tuple[str, int]] = set()
        self.next_assign_seq = 1
        self.batch_counter = 0
        self._batch_timer_armed = False

        # --- shadow endorsement state ---------------------------------
        self.next_endorse_seq = 1
        self.endorsed: dict[int, OrderBatch] = {}  # first_seq -> endorsed batch
        self._deferred: list[SignedMessage] = []  # proposals awaiting requests
        self.proposed: dict[int, OrderBatch] = {}  # pc side: first_seq -> own batch

        # --- pair collaboration ---------------------------------------
        self.pair_down = not self.paired
        self.fail_signalled = False
        self.my_fail_signal: SignedMessage | None = None
        self.expect = ExpectationMonitor(self, self._on_expectation_miss)
        # The differential delay bound (Section 2.1.1) covers the
        # counterpart's *processing* too, so deadlines include the two
        # signing operations on an order's pair-internal path.
        self._processing_margin = 2 * self.cost.sign + 8 * (
            calibration.unmarshal_base + calibration.handle_base
        )
        watch_deadline = (
            config.batching_interval
            + config.order_deadline_slack
            + self._processing_margin
        )
        self.watch = OrderProductionWatch(self, watch_deadline, self._on_watch_miss)
        self.last_heard_from_counterpart = 0.0
        self._heartbeat_armed = False
        self.suspicion_oracle: Callable[[], bool] | None = None

        # --- install state --------------------------------------------
        self.installing = False
        self.install_target: int | None = None
        self.failed_pairs: dict[int, SignedMessage] = {}
        self.backlogs: dict[str, SignedMessage] = {}
        self._backlog_sent_for: int | None = None
        self._start_computed_for: set[int] = set()
        self.pending_start: SignedMessage | None = None
        self.start_supports: dict[str, StartSupport] = {}
        self._support_sent = False
        self._bundle_ok = False
        self._bundle_sent = False
        self.installed_ranks: list[int] = []
        self._catchup: dict[int, dict[bytes, tuple[SignedMessage, set[str]]]] = {}
        self._catchup_requested: set[tuple[int, int]] = set()
        self._future_orders: list[tuple[str, SignedMessage]] = []
        self._early_bundles: list[tuple[str, SupportBundle]] = []

        # --- checkpointing ---------------------------------------------
        self.checkpoints = CheckpointTracker(config.f)
        self._last_checkpoint_seq = 0

    # ==================================================================
    # Role helpers
    # ==================================================================
    @property
    def coordinator_members(self) -> tuple[str, ...]:
        return self.config.coordinator_members(self.c)

    @property
    def is_coordinating_replica(self) -> bool:
        return not self.shadow and self.index == self.c and not self.installing

    @property
    def is_coordinating_shadow(self) -> bool:
        return self.shadow and self.index == self.c and not self.installing

    @property
    def others(self) -> tuple[str, ...]:
        return tuple(n for n in self.config.process_names if n != self.name)

    def start(self) -> None:
        """Arm timers appropriate to this process's initial role."""
        if self.is_coordinating_replica:
            self._arm_batch_timer()
        if self.is_coordinating_shadow:
            self.watch.start()
        if self.paired:
            self._arm_heartbeat()
            self.last_heard_from_counterpart = self.sim.now

    # ==================================================================
    # Receive-cost model
    # ==================================================================
    def verification_service(self, payload: Any, size_bytes: int) -> float:
        if isinstance(payload, ClientRequest):
            return 0.0
        if isinstance(payload, SignedMessage):
            body = payload.body
            if isinstance(body, OrderBatch):
                slot = self.log.slots.get(body.first_seq)
                if slot is not None and slot.order is not None:
                    return 0.0  # duplicate copy: parsed, then discarded
                return self.verify_cost(len(payload.signatures), size_bytes)
            if isinstance(body, Ack):
                order_body: OrderBatch = body.order.body
                first = (
                    order_body.first_seq
                    if isinstance(order_body, OrderBatch)
                    else 0
                )
                slot = self.log.slots.get(first)
                if slot is not None and slot.committed:
                    return 0.0  # late ack for a committed slot: discard
                inner = 0
                if slot is None or slot.order is None:
                    inner = len(body.order.signatures)
                return self.verify_cost(1 + inner, size_bytes)
            if isinstance(body, FailSignalBody):
                return self.verify_cost(2, size_bytes)
            if isinstance(body, Start):
                return self.verify_cost(len(payload.signatures), size_bytes)
            if isinstance(body, BackLog):
                return self.verify_cost(1, size_bytes)
            if isinstance(body, Checkpoint):
                return self.verify_cost(1, size_bytes)
        if isinstance(payload, PairProposal):
            return self.verify_cost(1, size_bytes)
        if isinstance(payload, PairStartProposal):
            return self.verify_cost(1, size_bytes)
        if isinstance(payload, StartSupport):
            return self.verify_cost(1, size_bytes)
        if isinstance(payload, SupportBundle):
            return self.verify_cost(len(payload.tuples), size_bytes)
        if isinstance(payload, PairForward):
            return self.cal.compare_base
        if isinstance(payload, CatchUpReply):
            return self.verify_cost(2 * len(payload.orders), size_bytes)
        return 0.0

    # ==================================================================
    # Dispatch
    # ==================================================================
    def handle(self, sender: str, payload: Any) -> None:
        if self.paired and sender == self.counterpart:
            self.last_heard_from_counterpart = self.sim.now
        if isinstance(payload, ClientRequest):
            self._on_request(sender, payload)
        elif isinstance(payload, PairProposal):
            self._on_pair_proposal(sender, payload)
        elif isinstance(payload, PairStartProposal):
            self._on_pair_start_proposal(sender, payload)
        elif isinstance(payload, PairForward):
            self._on_pair_forward(sender, payload)
        elif isinstance(payload, Heartbeat):
            pass  # receipt already refreshed last_heard_from_counterpart
        elif isinstance(payload, StartSupport):
            self._on_start_support(sender, payload)
        elif isinstance(payload, SupportBundle):
            self._on_support_bundle(sender, payload)
        elif isinstance(payload, CatchUpRequest):
            self._on_catchup_request(sender, payload)
        elif isinstance(payload, CatchUpReply):
            self._on_catchup_reply(sender, payload)
        elif isinstance(payload, SignedMessage):
            body = payload.body
            if isinstance(body, OrderBatch):
                self._on_order(sender, payload)
            elif isinstance(body, Ack):
                self._on_ack(sender, payload)
            elif isinstance(body, FailSignalBody):
                self._on_fail_signal(sender, payload)
            elif isinstance(body, Start):
                self._on_start(sender, payload)
            elif isinstance(body, BackLog):
                self._on_backlog(sender, payload)
            elif isinstance(body, Checkpoint):
                self._on_checkpoint(sender, payload)

    # ==================================================================
    # Client requests and batching (coordinator normal part)
    # ==================================================================
    def _on_request(self, sender: str, request: ClientRequest) -> None:
        if not self.note_request(request):
            return
        if self.paired and self.config.pair_forwarding and not self.pair_down:
            self.send_pair(
                self.counterpart,
                PairForward(sender, request, request.size_bytes),
            )
        if self.is_coordinating_replica and request.key not in self.ordered_keys:
            self.unordered.append(request)
        if self.is_coordinating_shadow:
            self.watch.note_request(request.key)
            self._retry_deferred()

    def _arm_batch_timer(self) -> None:
        if self._batch_timer_armed:
            return
        self._batch_timer_armed = True
        self.set_timer(self.config.batching_interval, self._batch_tick)

    def _batch_tick(self) -> None:
        self._batch_timer_armed = False
        if not self.is_coordinating_replica or self.pair_down and self.paired:
            return
        self._form_and_propose_batch()
        self._arm_batch_timer()

    def _form_and_propose_batch(self) -> None:
        if self.crashed or self.fault.withholds_orders(self.sim.now):
            return
        trace = self.sim.trace
        if trace.wants("queue_depth"):
            trace.emit(self.sim.now, "queue_depth", actor=self.name,
                       depth=len(self.unordered))
        if not self.unordered:
            return
        batcher = Batcher(self.config.batch_size_bytes)
        requests = batcher.take(self.unordered)
        del self.unordered[: len(requests)]
        self.batch_counter += 1
        batch = batcher.make_batch(
            rank=self.c,
            batch_id=self.batch_counter,
            first_seq=self.next_assign_seq,
            requests=requests,
            digest_name=self.config.scheme.digest,
        )
        self.next_assign_seq = batch.last_seq + 1
        for request in requests:
            self.ordered_keys.add(request.key)
        batch = self._apply_order_faults(batch)
        self.trace(
            "batch_formed",
            batch_id=batch.batch_id,
            rank=batch.rank,
            first_seq=batch.first_seq,
            n_requests=len(batch.entries),
        )
        if trace.wants("batch_requests"):
            trace.emit(
                self.sim.now, "batch_requests", actor=self.name,
                rank=batch.rank, batch_id=batch.batch_id,
                keys=tuple((entry.client, entry.req_id) for entry in batch.entries),
            )
        signed = self.make_signed(batch)
        self.proposed[batch.first_seq] = batch
        if self.paired:
            self.send_pair(self.counterpart, PairProposal(order=signed))
            self.expect.expect(("endorse", batch.first_seq), self._endorse_deadline())
            if self.fault.equivocates(self.sim.now):
                twin = self._equivocating_twin(batch)
                self.send_pair(self.counterpart, PairProposal(order=self.make_signed(twin)))
        else:
            # The unpaired (f+1)-th coordinator: singly-signed orders
            # are accepted directly (SC2 guarantees it is non-faulty).
            self.multicast_payload(self.others, signed)
            self._process_order(signed)

    def _apply_order_faults(self, batch: OrderBatch) -> OrderBatch:
        mutated = tuple(
            OrderEntry(
                seq=entry.seq,
                req_digest=self.fault.mutate_order_digest(self.sim.now, entry.req_digest),
                client=entry.client,
                req_id=entry.req_id,
            )
            for entry in batch.entries
        )
        if mutated == batch.entries:
            return batch
        return OrderBatch(rank=batch.rank, batch_id=batch.batch_id, entries=mutated)

    def _equivocating_twin(self, batch: OrderBatch) -> OrderBatch:
        entries = tuple(
            OrderEntry(
                seq=entry.seq,
                req_digest=digest(
                    self.config.scheme.digest, b"equivocate" + entry.req_digest
                ),
                client=entry.client,
                req_id=entry.req_id,
            )
            for entry in batch.entries
        )
        return OrderBatch(rank=batch.rank, batch_id=-batch.batch_id, entries=entries)

    def _endorse_deadline(self) -> float:
        """Deadline for the counterpart's endorsement of a proposal.

        A conservative differential delay estimate: the pair link delay
        bound plus the counterpart's known per-proposal processing and
        one full batching cycle of competing work (client requests and
        acks the counterpart handles between endorsements)."""
        return (
            self.config.pair_delay_estimate
            + self._processing_margin
            + self.config.batching_interval
        )

    def _proposal_allowance(self, proposals: list[SignedMessage]) -> float:
        """Extra deadline allowance for a pair-internal proposal whose
        endorsement requires verifying shipped content (Start/NewView
        with backlogs).  The proposer computes it from what it shipped —
        the delay estimate covers the counterpart's known workload."""
        n_verifies = 0
        total_bytes = 0
        for signed in proposals:
            body = signed.body
            total_bytes += payload_size(signed)
            max_committed = getattr(body, "max_committed", None)
            if max_committed is not None:
                n_verifies += len(max_committed.order.signatures)
                n_verifies += len(max_committed.acks)
            for order in getattr(body, "uncommitted", ()):
                n_verifies += len(order.signatures)
        kb = total_bytes / 1024.0
        work = (
            n_verifies * self.cost.verify
            + kb
            * (
                self.cal.unmarshal_per_kb
                + self.cal.backlog_compute_per_kb
                + self.cal.marshal_per_kb
            )
            + 2 * kb / self.cal.pair_bandwidth * 1024.0
        )
        # Safety factor: the counterpart may be draining queued work
        # (fail-over happens amid a message burst).  A conservative
        # delay estimate keeps 3(b)(i)'s false suspicions out of
        # moderate-load runs without hiding real failures for long.
        return 3.0 * work + 0.020

    # ==================================================================
    # Shadow: endorsement (phase 1 -> 2)
    # ==================================================================
    def _on_pair_proposal(self, sender: str, proposal: PairProposal) -> None:
        if sender != self.counterpart or self.pair_down:
            return
        signed = proposal.order
        if not self.check_signed(signed, (self.counterpart,)):
            self._value_domain_failure("bad signature on proposal")
            return
        batch: OrderBatch = signed.body
        if batch.rank != self.c or not self.is_coordinating_shadow:
            return
        verdict = validate_order_batch(
            batch, self.next_endorse_seq, self.pending, self.config.scheme.digest
        )
        if verdict.verdict == INVALID:
            self._value_domain_failure(verdict.reason)
            return
        if verdict.verdict == DEFER:
            self._deferred.append(signed)
            self.expect.expect(
                ("defer", batch.first_seq), self.config.pair_delay_estimate
            )
            return
        self._endorse(signed)

    def _endorse(self, signed: SignedMessage) -> None:
        batch: OrderBatch = signed.body
        if self.fault.mutates_endorsement(self.sim.now):
            # Byzantine shadow: alter the body, keep the replica's
            # signature.  The chain no longer verifies; correct
            # receivers drop it and the replica fail-signals.
            corrupted = OrderBatch(
                rank=batch.rank,
                batch_id=batch.batch_id,
                entries=tuple(
                    OrderEntry(e.seq, b"\x66" * len(e.req_digest), e.client, e.req_id)
                    for e in batch.entries
                ),
            )
            bad = SignedMessage(body=corrupted, signatures=signed.signatures)
            doubly = self.make_countersigned(bad)
        else:
            doubly = self.make_countersigned(signed)
        self.endorsed[batch.first_seq] = batch
        self.next_endorse_seq = batch.last_seq + 1
        for entry in batch.entries:
            self.watch.note_ordered((entry.client, entry.req_id))
        self.expect.fulfil(("defer", batch.first_seq))
        self.multicast_payload(self.others, doubly)
        self.trace("order_endorsed", first_seq=batch.first_seq, batch_id=batch.batch_id)
        self._process_order(doubly)

    def _retry_deferred(self) -> None:
        if not self._deferred:
            return
        still: list[SignedMessage] = []
        for signed in self._deferred:
            batch: OrderBatch = signed.body
            if not self.is_coordinating_shadow or batch.rank != self.c:
                continue
            verdict = validate_order_batch(
                batch, self.next_endorse_seq, self.pending, self.config.scheme.digest
            )
            if verdict.verdict == VALID:
                self._endorse(signed)
            elif verdict.verdict == DEFER:
                still.append(signed)
            else:
                self._value_domain_failure(verdict.reason)
                return
        self._deferred = still

    # ==================================================================
    # Normal part: N1-N3
    # ==================================================================
    def _on_order(self, sender: str, signed: SignedMessage) -> None:
        batch: OrderBatch = signed.body
        if batch.entries and batch.entries[0].client == INSTALL_CLIENT:
            return  # install pseudo-batches never travel as plain orders
        if batch.rank != self.c or self.installing:
            if batch.rank >= self.c:
                # Orders from a coordinator we have not installed yet
                # may overtake the installation traffic; hold them.
                self._future_orders.append((sender, signed))
            return
        expected = self.config.coordinator_members(batch.rank)
        if tuple(signed.signers) != expected:
            # Possibly a mutated endorsement from a Byzantine shadow:
            # the paired replica recognises its own proposal underneath.
            if (
                self.is_coordinating_replica
                and self.paired
                and sender == self.counterpart
            ):
                self._value_domain_failure("counterpart altered endorsement chain")
            return
        if not self.check_signed(signed, expected):
            if self.is_coordinating_replica and sender == self.counterpart:
                self._value_domain_failure("invalid endorsement from shadow")
            return
        if self.is_coordinating_replica and self.paired:
            mine = self.proposed.get(batch.first_seq)
            if mine is not None and not batches_equal(mine, batch):
                self._value_domain_failure("shadow endorsed a different batch")
                return
            self.expect.fulfil(("endorse", batch.first_seq))
            # Phase 2 (second half): pc forwards the endorsed order to
            # every other process, including the shadow.
            self.multicast_payload(self.others, signed)
        self._process_order(signed)

    def _process_order(self, signed: SignedMessage) -> None:
        """N1 for an authenticated order: ack if in-sequence."""
        batch: OrderBatch = signed.body
        if batch.first_seq > self.next_expected:
            self.parked.setdefault(batch.first_seq, signed)
            return
        if batch.first_seq < self.next_expected:
            slot = self.log.slots.get(batch.first_seq)
            if slot is not None and slot.acked:
                return  # duplicate
        self._ack_order(signed)
        # Drain any parked successors.
        while self.next_expected in self.parked:
            self._ack_order(self.parked.pop(self.next_expected))

    def _ack_order(self, signed: SignedMessage) -> None:
        batch: OrderBatch = signed.body
        slot = self.log.note_order(signed)
        if slot.acked:
            return
        slot.acked = True
        self.next_expected = max(self.next_expected, batch.last_seq + 1)
        ack_body = Ack(acker=self.name, order=signed)
        signed_ack = self.make_signed(ack_body)
        self.log.note_ack(self.name, signed, signed_ack)
        self.multicast_payload(self.others, signed_ack)
        if self.paired and self.config.pair_forwarding and not self.pair_down:
            self.send_pair(
                self.counterpart, PairForward(self.name, signed, payload_size(signed))
            )
        self._maybe_commit(batch.first_seq)

    def _on_ack(self, sender: str, signed_ack: SignedMessage) -> None:
        ack: Ack = signed_ack.body
        if sender != ack.acker:
            return
        if not self.check_signed(signed_ack, (ack.acker,)):
            return
        order = ack.order
        body = order.body
        if not isinstance(body, OrderBatch):
            return
        is_install = bool(body.entries) and body.entries[0].client == INSTALL_CLIENT
        slot = self.log.slots.get(body.first_seq)
        have_order = slot is not None and slot.order is not None
        if not have_order:
            if is_install:
                # The pseudo batch's authenticity rests on the Start we
                # hold, not on a direct signature over the batch.
                if not self._matches_pending_start(body):
                    return
            else:
                # The ack carries the order; authenticate before adoption.
                expected = self._order_signers(body)
                if expected is None or not self.check_signed(order, expected):
                    return
                if body.rank == self.c and not self.installing:
                    self._process_order(order)
        self.log.note_ack(ack.acker, order, signed_ack)
        self._maybe_commit(body.first_seq)

    def _matches_pending_start(self, batch: OrderBatch) -> bool:
        if self.pending_start is None:
            return False
        expected = make_install_batch(self.pending_start, self.config.scheme.digest)
        return batches_equal(expected, batch)

    def _order_signers(self, batch: OrderBatch) -> tuple[str, ...] | None:
        try:
            return self.config.coordinator_members(batch.rank)
        except Exception:
            return None

    def _maybe_commit(self, first_seq: int) -> None:
        slot = self.log.slots.get(first_seq)
        if slot is None or slot.committed or slot.order is None:
            return
        if not self.log.quorum_reached(slot):
            return
        batch: OrderBatch = slot.order.body
        self.log.commit(slot, self.sim.now)
        if batch.entries and batch.entries[0].client == INSTALL_CLIENT:
            self.trace(
                "install_committed", rank=batch.rank, start_seq=batch.first_seq
            )
        else:
            self.trace(
                "order_committed",
                batch_id=batch.batch_id,
                rank=batch.rank,
                first_seq=batch.first_seq,
                n_requests=len(batch.entries),
            )
        self._execute_ready()

    def _execute_ready(self) -> None:
        progressed = False
        while True:
            slot = self.log.slots.get(self._exec_next)
            if slot is None or not slot.committed or slot.order is None:
                break
            batch: OrderBatch = slot.order.body
            for entry in batch.entries:
                self.machine.apply(entry)
            self._exec_next = batch.last_seq + 1
            progressed = True
            if self.config.send_replies:
                self._send_replies(batch)
        if progressed:
            self._maybe_emit_checkpoint()

    def _send_replies(self, batch: OrderBatch) -> None:
        for entry in batch.entries:
            if entry.client == INSTALL_CLIENT:
                continue
            if not self.network.has_actor(entry.client):
                continue
            self.send_payload(
                entry.client,
                Reply(
                    replier=self.name,
                    client=entry.client,
                    req_id=entry.req_id,
                    seq=entry.seq,
                    result_digest=result_digest(entry),
                ),
            )

    # ==================================================================
    # Checkpointing (log truncation at f+1 matching state digests)
    # ==================================================================
    def _maybe_emit_checkpoint(self) -> None:
        interval = self.config.checkpoint_interval
        if interval <= 0:
            return
        applied = self.machine.applied_seq
        if applied - self._last_checkpoint_seq < interval:
            return
        self._last_checkpoint_seq = applied
        claim = Checkpoint(
            process=self.name, seq=applied, state_digest=self.machine.state_digest()
        )
        signed = self.make_signed(claim)
        self.trace("checkpoint_emitted", seq=applied)
        self._note_checkpoint(claim)
        self.multicast_payload(self.others, signed)

    def _on_checkpoint(self, sender: str, signed: SignedMessage) -> None:
        claim: Checkpoint = signed.body
        if sender != claim.process or not self.check_signed(signed, (claim.process,)):
            return
        self._note_checkpoint(claim)

    def _note_checkpoint(self, claim: Checkpoint) -> None:
        if self.checkpoints.note(claim):
            dropped = self.log.truncate_below(self.checkpoints.stable_seq)
            self.trace(
                "checkpoint_stable", seq=self.checkpoints.stable_seq, dropped=dropped
            )

    # ==================================================================
    # Fail-signalling (Section 3.2)
    # ==================================================================
    def _value_domain_failure(self, reason: str) -> None:
        self.trace("value_domain_failure", reason=reason)
        self.emit_fail_signal(reason=reason, domain="value")

    def _on_watch_miss(self, key: Any) -> None:
        self._timing_suspicion(f"no order produced for request {key}")

    def _on_expectation_miss(self, key: Any) -> None:
        self._timing_suspicion(f"expected output missing: {key}")

    def _timing_suspicion(self, reason: str) -> None:
        """A time-domain deadline passed.  Under assumption 3(a)(i) the
        delay estimate is accurate, which we embody as an oracle check:
        the suspicion is raised only if the counterpart really is
        faulty.  (ScrProcess overrides this with real, fallible
        suspicion per 3(b)(i).)"""
        if self.pair_down:
            return
        if self.suspicion_oracle is not None and not self.suspicion_oracle():
            # Estimate says "still timely" - re-arm monitoring.
            if self.is_coordinating_shadow:
                self.watch.start()
            return
        self.trace("time_domain_failure", reason=reason)
        self.emit_fail_signal(reason=reason, domain="time")

    def emit_fail_signal(self, reason: str = "", domain: str = "time") -> None:
        """Double-sign the pre-supplied blank and broadcast (crash of
        the abstract signal-on-crash process)."""
        if not self.paired or self.fail_signalled:
            return
        self.fail_signalled = True
        self.pair_down = True
        body, blank_sig = self.blank
        self.charge(self.cost.sign + self.cost.digest_cost(payload_size(body)))
        signed = build_fail_signal(self.provider, self.name, body, blank_sig)
        self.my_fail_signal = signed
        self.trace(
            "fail_signal_emitted", pair=self.index, reason=reason, domain=domain
        )
        self._stop_pair_collaboration()
        self.multicast_payload(self.others, signed)
        self._register_fail_signal(signed, self.index)

    def _stop_pair_collaboration(self) -> None:
        self.expect.cancel_all()
        self.watch.stop()
        self._deferred.clear()

    def _on_fail_signal(self, sender: str, signed: SignedMessage) -> None:
        rank = fail_signal_pair_rank(self.provider, signed)
        if rank is None:
            return
        if rank in self.failed_pairs:
            return
        # Echo to the first signatory in case the second maliciously
        # omitted to send it (Section 3.2).
        body: FailSignalBody = signed.body
        if sender != body.first_signer:
            self.send_payload(body.first_signer, signed)
        # A process learning of its own pair's fail-signal emits its own.
        if self.paired and rank == self.index and not self.fail_signalled:
            self.emit_fail_signal(reason="counterpart fail-signalled")
        self._register_fail_signal(signed, rank)

    def _register_fail_signal(self, signed: SignedMessage, rank: int) -> None:
        self.failed_pairs[rank] = signed
        self.trace("fail_signal_received", pair=rank)
        if rank == self.c and not self.installing:
            self._begin_install(signed)
        elif self.installing and rank == self.install_target:
            # The candidate being installed has itself fail-signalled:
            # restart IN1 toward the next live candidate.
            self._begin_install(signed)

    # ==================================================================
    # Install part: IN1-IN5
    # ==================================================================
    def _next_candidate(self) -> int:
        rank = self.c + 1
        while rank in self.failed_pairs and rank < self.config.coordinator_candidates:
            rank += 1
        if rank > self.config.coordinator_candidates:
            raise ProtocolError(f"{self.name}: no coordinator candidates left")
        return rank

    def _begin_install(self, fail_signal: SignedMessage) -> None:
        """IN1: advance c, stop acking orders, multicast BackLog."""
        self.installing = True
        target = self._next_candidate()
        if target == self.install_target:
            return  # already installing this candidate
        self.install_target = target
        self.backlogs = {}
        self._support_sent = False
        self._bundle_ok = False
        self._bundle_sent = False
        self.pending_start = None
        self.start_supports = {}
        self.trace("install_started", target=target)
        backlog = BackLog(
            sender=self.name,
            new_rank=target,
            fail_signal=fail_signal,
            max_committed=self.log.max_committed_proof(),
            uncommitted=self.log.uncommitted_orders(),
        )
        signed = self.make_signed(backlog)
        self.trace("backlog_sent", target=target, size=payload_size(signed))
        self._backlog_sent_for = target
        if self._is_install_coordinator(target):
            self.backlogs[self.name] = signed
            self._maybe_compute_start()
        self.multicast_payload(self.others, signed)

    def _is_install_coordinator(self, target: int) -> bool:
        members = self.config.coordinator_members(target)
        return self.name == members[0]

    def _is_install_shadow(self, target: int) -> bool:
        members = self.config.coordinator_members(target)
        return len(members) == 2 and self.name == members[1]

    def _on_backlog(self, sender: str, signed: SignedMessage) -> None:
        backlog: BackLog = signed.body
        if sender != backlog.sender or not self.check_signed(signed, (backlog.sender,)):
            return
        # The embedded fail-signal lets processes that have not yet seen
        # it join the installation.
        rank = fail_signal_pair_rank(self.provider, backlog.fail_signal)
        if rank is not None and rank not in self.failed_pairs:
            self._register_fail_signal(backlog.fail_signal, rank)
        if self.installing and backlog.new_rank == self.install_target:
            self.backlogs[backlog.sender] = signed
            if self._is_install_coordinator(backlog.new_rank) or self._is_install_shadow(
                backlog.new_rank
            ):
                self._maybe_compute_start()

    def _install_quorum(self) -> int:
        return self.n_eff - self.f_eff

    def _maybe_compute_start(self) -> None:
        """IN2 at the new coordinator replica."""
        target = self.install_target
        if target is None or not self._is_install_coordinator(target):
            return
        if target in self._start_computed_for:
            return
        if len(self.backlogs) < self._install_quorum():
            return
        self._start_computed_for.add(target)
        chosen = list(self.backlogs.values())[: self._install_quorum()]
        views, total_kb = self._deep_validate_backlogs(chosen)
        result = compute_new_backlog(views, self.config.f)
        self.charge(self.cal.backlog_compute_per_kb * total_kb)
        new_backlog = result.new_backlog
        if result.base_proof is not None:
            new_backlog = (result.base_proof.order, *tuple(
                s for s in new_backlog if s is not result.base_proof.order
            ))
        start = Start(new_rank=target, start_seq=result.start_seq, new_backlog=new_backlog)
        signed_start = self.make_signed(start)
        self.trace("start_computed", target=target, start_seq=result.start_seq)
        if self._is_install_shadow_needed(target):
            self.send_pair(
                self.counterpart,
                PairStartProposal(start=signed_start, backlogs=tuple(chosen)),
            )
            self.expect.expect(
                ("endorse-start", target),
                self._endorse_deadline() + self._proposal_allowance(chosen),
            )
        else:
            # Unpaired coordinator: singly-signed Start, accepted as-is.
            self.multicast_payload(self.others, signed_start)
            self.trace("failover_complete", target=target, start_seq=start.start_seq)
            self._adopt_start(signed_start)

    def _is_install_shadow_needed(self, target: int) -> bool:
        return len(self.config.coordinator_members(target)) == 2

    def _deep_validate_backlogs(
        self, chosen: list[SignedMessage]
    ) -> tuple[list[BacklogView], float]:
        """Charge verification of backlog contents; return views + KB."""
        views: list[BacklogView] = []
        total_bytes = 0
        n_verifies = 0
        for signed in chosen:
            backlog: BackLog = signed.body
            total_bytes += payload_size(signed)
            if backlog.max_committed is not None:
                n_verifies += len(backlog.max_committed.order.signatures)
                n_verifies += len(backlog.max_committed.acks)
            for order in backlog.uncommitted:
                n_verifies += len(order.signatures)
            views.append(as_view(backlog))
        self.charge(n_verifies * self.cost.verify)
        return views, total_bytes / 1024.0

    def _on_pair_start_proposal(self, sender: str, proposal: PairStartProposal) -> None:
        """IN2 at the new coordinator's shadow."""
        if sender != self.counterpart or self.pair_down:
            return
        target = self.install_target
        if target is None or not self._is_install_shadow(target):
            return
        if not self.check_signed(proposal.start, (self.counterpart,)):
            self._value_domain_failure("bad signature on Start proposal")
            return
        start: Start = proposal.start.body
        provided_views: list[BacklogView] = []
        ok = True
        for signed in proposal.backlogs:
            backlog = signed.body
            if not isinstance(backlog, BackLog) or not self.check_signed(
                signed, (backlog.sender,)
            ):
                ok = False
                break
            provided_views.append(as_view(backlog))
        _, total_kb = (
            self._deep_validate_backlogs(list(proposal.backlogs)) if ok else ([], 0.0)
        )
        own_views = [
            as_view(s.body) for s in self.backlogs.values()
        ]
        claimed = start.new_backlog
        base_first = claimed[0] if claimed else None
        claimed_rest = claimed[1:] if claimed else ()
        if ok:
            ok = verify_start_against_backlogs(
                self._strip_base(claimed, provided_views),
                start.start_seq,
                provided_views,
                own_views,
                self.config.f,
            )
        if not ok:
            self._value_domain_failure("Start fails recomputation check")
            return
        self.charge(self.cal.backlog_compute_per_kb * total_kb)
        doubly = self.make_countersigned(proposal.start)
        self.trace("start_endorsed", target=target, start_seq=start.start_seq)
        self.multicast_payload(self.others, doubly)
        self._adopt_start(doubly)

    @staticmethod
    def _strip_base(
        claimed: tuple[SignedMessage, ...], views: list[BacklogView]
    ) -> tuple[SignedMessage, ...]:
        """Remove the leading base order (max committed) if present, so
        the recomputation compares uncommitted choices only."""
        if not claimed:
            return claimed
        base_last = 0
        for view in views:
            if view.max_committed is not None:
                batch: OrderBatch = view.max_committed.order.body
                base_last = max(base_last, batch.last_seq)
        first: OrderBatch = claimed[0].body
        if base_last and first.last_seq <= base_last:
            return claimed[1:]
        return claimed

    def _on_start(self, sender: str, signed: SignedMessage) -> None:
        """IN3/IN5 entry: an authentic (doubly-)signed Start arrives."""
        start: Start = signed.body
        if self.installing and self.install_target is None:
            return
        target = start.new_rank
        if not self.installing or target != self.install_target:
            # Late joiner: a Start implies the fail-signal path was
            # missed; adopt if it extends our view of the world.
            if target <= self.c:
                return
        members = self.config.coordinator_members(target)
        if tuple(signed.signers) != members or not self.check_signed(signed, members):
            return
        if self.is_coordinating_replica and self.paired and sender == self.counterpart:
            self.expect.fulfil(("endorse-start", target))
        self._adopt_start(signed)

    def _adopt_start(self, signed: SignedMessage) -> None:
        start: Start = signed.body
        if self.pending_start is not None:
            return
        self.pending_start = signed
        target = start.new_rank
        members = self.config.coordinator_members(target)
        # Replay any support bundle that overtook the Start.
        early, self._early_bundles = self._early_bundles, []
        for sender, bundle in early:
            self._on_support_bundle(sender, bundle)
        if self.pending_start is None:
            return  # install already completed via an early bundle
        # IN3: support tuples (only when more faults may remain).
        if self.f_eff > 1 and len(members) == 2:
            if self.name not in members and not self._support_sent:
                self._support_sent = True
                size = payload_size(start)
                self.charge(self.cost.sign + self.cost.digest_cost(size))
                signature = self.provider.sign(
                    self.name, signing_bytes(start, signed.signatures)
                )
                support = StartSupport(
                    supporter=self.name, new_rank=target, signature=signature
                )
                for member in members:
                    self.send_payload(member, support)
            if self.name in members:
                self._maybe_send_bundle()
        else:
            # f == 1 (or unpaired coordinator): the doubly-signed Start
            # itself carries f+1 signatures; installation proceeds.
            if self._is_install_coordinator(target) or self._is_install_shadow(target):
                if not self._bundle_sent:
                    self._bundle_sent = True
                    self.trace(
                        "failover_complete", target=target, start_seq=start.start_seq
                    )
            self._complete_install()

    def _on_start_support(self, sender: str, support: StartSupport) -> None:
        if sender != support.supporter:
            return
        # Stored unconditionally (the Start may still be in flight);
        # signatures are checked when the bundle is assembled.
        self.start_supports.setdefault(sender, support)
        self._maybe_send_bundle()

    def _valid_supports(self, members: tuple[str, ...]) -> dict[str, StartSupport]:
        start: Start = self.pending_start.body
        valid: dict[str, StartSupport] = {}
        for name, support in self.start_supports.items():
            if name in members or support.new_rank != start.new_rank:
                continue
            if self.provider.verify(
                support.signature,
                signing_bytes(start, self.pending_start.signatures),
                support.supporter,
            ):
                valid[name] = support
        return valid

    def _maybe_send_bundle(self) -> None:
        """IN4 at the new coordinator pair."""
        if self.pending_start is None or self._bundle_sent:
            return
        start: Start = self.pending_start.body
        members = self.config.coordinator_members(start.new_rank)
        if self.name not in members:
            return
        valid = self._valid_supports(members)
        if len(valid) < self.f_eff - 1:
            return
        tuples = tuple(valid[name] for name in sorted(valid))[: self.f_eff - 1]
        self._bundle_sent = True
        bundle = SupportBundle(new_rank=start.new_rank, tuples=tuples)
        self.trace(
            "failover_complete", target=start.new_rank, start_seq=start.start_seq
        )
        self.multicast_payload(self.others, bundle)
        self._bundle_ok = True
        self._complete_install()

    def _on_support_bundle(self, sender: str, bundle: SupportBundle) -> None:
        if self.pending_start is None:
            # The bundle overtook the Start; hold it.
            self._early_bundles.append((sender, bundle))
            return
        start: Start = self.pending_start.body
        if bundle.new_rank != start.new_rank:
            return
        members = self.config.coordinator_members(start.new_rank)
        needed = self.f_eff - 1
        valid = 0
        for support in bundle.tuples:
            if support.supporter in members:
                continue
            if self.provider.verify(
                support.signature,
                signing_bytes(start, self.pending_start.signatures),
                support.supporter,
            ):
                valid += 1
        if valid >= needed:
            self._bundle_ok = True
            self._complete_install()

    def _complete_install(self) -> None:
        """IN5: run the normal part on the Start pseudo-order."""
        if self.pending_start is None:
            return
        start: Start = self.pending_start.body
        if start.new_rank in self.installed_ranks or start.new_rank <= self.c:
            return  # both pair members multicast the bundle; run once
        if self.f_eff > 1 and len(self.config.coordinator_members(start.new_rank)) == 2:
            if not self._bundle_ok:
                return
        old_rank = self.c
        self.c = start.new_rank
        self.installing = False
        self.install_target = None
        self.installed_ranks.append(start.new_rank)
        self.backlogs = {}
        self.trace("coordinator_installed", rank=self.c, start_seq=start.start_seq)
        # Dumb-process optimisation (Section 4.3).
        if self.config.dumb_optimization:
            for rank in range(old_rank, start.new_rank):
                if rank not in self.dumb_ranks:
                    self.dumb_ranks.add(rank)
                    members = self.config.coordinator_members(rank)
                    if len(members) == 2:
                        self.n_eff -= 2
                        self.f_eff -= 1
                        self.log.quorum = self.n_eff - self.f_eff
                    if self.name in members:
                        self.dumb = True
                        self.trace("went_dumb", rank=rank)
        # Orders from the deposed coordinator that did not survive into
        # NewBackLog are discarded (they were never committed anywhere).
        self.log.drop_uncommitted_from(start.start_seq)
        self.next_expected = min(self.next_expected, start.start_seq)
        # Re-commit the backlog orders the Start carries.
        for signed_order in start.new_backlog:
            self.log.force_commit(signed_order, self.sim.now)
        # Missing orders below the backlog? Ask peers (IN5's guarantee).
        self._request_catchup_if_needed(start)
        # The Start itself commits through the normal part.
        pseudo = make_install_batch(self.pending_start, self.config.scheme.digest)
        pseudo_signed = SignedMessage(body=pseudo, signatures=self.pending_start.signatures)
        self.next_expected = max(self.next_expected, start.start_seq)
        self._process_order(pseudo_signed)
        self._execute_ready()
        # New coordinator resumes ordering after the Start's slot.
        if self.is_coordinating_replica:
            self.next_assign_seq = start.start_seq + 1
            self._rebuild_unordered()
            self._arm_batch_timer()
        if self.is_coordinating_shadow:
            self.next_endorse_seq = start.start_seq + 1
            self.watch.start()
        # Replay orders that overtook the installation traffic.
        replay, self._future_orders = self._future_orders, []
        for sender, signed in replay:
            self._on_order(sender, signed)

    def _rebuild_unordered(self) -> None:
        """The new coordinator re-queues every known request that is not
        already covered by a committed or live order."""
        sequenced: set[tuple[str, int]] = set()
        for slot in self.log.slots.values():
            if slot.order is None:
                continue
            batch: OrderBatch = slot.order.body
            for entry in batch.entries:
                sequenced.add((entry.client, entry.req_id))
        self.unordered = [
            request
            for key, request in sorted(self.pending.items())
            if key not in sequenced
        ]
        self.ordered_keys = set(sequenced)
        for request in self.unordered:
            self.ordered_keys.add(request.key)

    # ==================================================================
    # Catch-up (IN5's "f+1 agreeing order messages")
    # ==================================================================
    def _request_catchup_if_needed(self, start: Start) -> None:
        if not start.new_backlog:
            return
        first_batch: OrderBatch = start.new_backlog[0].body
        missing_up_to = first_batch.first_seq - 1
        if self._exec_next > missing_up_to:
            return
        span = (self._exec_next, missing_up_to)
        if span in self._catchup_requested:
            return
        self._catchup_requested.add(span)
        self.trace("catchup_requested", first=span[0], last=span[1])
        self.multicast_payload(
            self.others, CatchUpRequest(self.name, span[0], span[1])
        )

    def _on_catchup_request(self, sender: str, request: CatchUpRequest) -> None:
        orders = self.log.committed_between(request.first_seq, request.last_seq)
        if orders:
            self.send_payload(sender, CatchUpReply(self.name, orders))

    def _on_catchup_reply(self, sender: str, reply: CatchUpReply) -> None:
        if sender != reply.replier:
            return
        for signed in reply.orders:
            batch = signed.body
            if not isinstance(batch, OrderBatch):
                continue
            slot = self.log.slots.get(batch.first_seq)
            if slot is not None and slot.committed:
                continue
            is_install = batch.entries and batch.entries[0].client == INSTALL_CLIENT
            if not is_install:
                expected = self._order_signers(batch)
                if expected is None or not self.check_signed(signed, expected):
                    continue
            key = canonical_bytes(
                (batch.rank, [(e.seq, e.req_digest) for e in batch.entries])
            )
            bucket = self._catchup.setdefault(batch.first_seq, {})
            if key in bucket:
                bucket[key][1].add(sender)
            else:
                bucket[key] = (signed, {sender})
            agreeing = bucket[key][1]
            if len(agreeing) >= self.config.f + 1 or (
                not is_install and self.check_signed(signed)
            ):
                self.log.force_commit(signed, self.sim.now)
                self.trace(
                    "catchup_committed",
                    first_seq=batch.first_seq,
                    last_seq=batch.last_seq,
                )
                self.next_expected = max(self.next_expected, batch.last_seq + 1)
        self._execute_ready()

    # ==================================================================
    # Pair forwarding and heartbeats
    # ==================================================================
    def _on_pair_forward(self, sender: str, forward: PairForward) -> None:
        if sender != self.counterpart:
            return
        # Cross-check: the cost was charged in receive_service; value
        # checking of forwarded copies happens implicitly because the
        # counterpart receives its own copies directly (clients and
        # multicasts address all processes).
        if isinstance(forward.payload, ClientRequest):
            self.note_request(forward.payload)
            if self.is_coordinating_shadow:
                self.watch.note_request(forward.payload.key)
                self._retry_deferred()
            if (
                self.is_coordinating_replica
                and forward.payload.key not in self.ordered_keys
            ):
                if forward.payload.key not in {r.key for r in self.unordered}:
                    self.unordered.append(forward.payload)

    def _arm_heartbeat(self) -> None:
        if self._heartbeat_armed or not self.paired:
            return
        self._heartbeat_armed = True
        self.set_timer(self.config.heartbeat_interval, self._heartbeat_tick)

    def is_urgent(self, payload: Any) -> bool:
        return isinstance(payload, _URGENT_TYPES)

    def _heartbeat_tick(self) -> None:
        self._heartbeat_armed = False
        if self.pair_down or self.crashed:
            return
        self.send_urgent(
            self.counterpart, Heartbeat(self.name, nonce=int(self.sim.now * 1e6))
        )
        silent_for = self.sim.now - self.last_heard_from_counterpart
        if silent_for > self._silence_threshold():
            self._timing_suspicion(f"counterpart silent for {silent_for:.3f}s")
            if self.pair_down:
                return
        self._arm_heartbeat()

    def _silence_threshold(self) -> float:
        return (
            self.config.heartbeat_interval
            + self.config.pair_delay_estimate
            + self._processing_margin
        )


def pair_of_or_none(name: str) -> str | None:
    """``pair_of`` that tolerates non-process names."""
    try:
        return pair_of(name)
    except Exception:
        return None
