"""The paper's contribution: signal-on-fail total-order protocols.

* :mod:`~repro.core.config` — deployment parameters (``f``, crypto
  scheme, batching, variant SC vs SCR);
* :mod:`~repro.core.pair` — the signal-on-crash process abstraction:
  mutual checking, output endorsement, fail-signalling (Section 3);
* :mod:`~repro.core.sc` — the SC order protocol: normal part N1–N3
  (Section 4.1) plus coordination by pairs;
* :mod:`~repro.core.install` — the install part IN1–IN5: BackLog,
  NewBackLog, Start, support tuples (Section 4.2) and the dumb-process
  optimisation (Section 4.3);
* :mod:`~repro.core.scr` — the Signal-on-Crash-and-Recovery extension:
  pair status, recovery, Unwilling-augmented view changes (Section 4.4);
* :mod:`~repro.core.service` — the replicated deterministic state
  machine that consumes the total order;
* :mod:`~repro.core.client` — clients that direct each request to all
  nodes (Section 3).
"""

from repro.core.config import ProtocolConfig
from repro.core.client import Client
from repro.core.requests import ClientRequest
from repro.core.sc import ScProcess
from repro.core.scr import ScrProcess
from repro.core.service import ReplicatedStateMachine

__all__ = [
    "Client",
    "ClientRequest",
    "ProtocolConfig",
    "ReplicatedStateMachine",
    "ScProcess",
    "ScrProcess",
]
