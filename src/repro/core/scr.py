"""The Signal-on-Crash-and-Recovery extension (Section 4.4).

SCR weakens assumption 3(a)(i) to 3(b)(i): pair delay estimates are
only *eventually* accurate, so two correct pair members may falsely
suspect each other, fail-signal, and later — finding each other timely
again through continued mutual checking — resume working as a pair.
The consequences the paper draws, all implemented here:

* property SC2 no longer holds, so the unpaired ``(f+1)``-th candidate
  cannot be trusted: SCR deploys ``f + 1`` pairs (``n = 3f + 2``) and
  only pairs coordinate;
* each pair tracks ``statusc ∈ {up, down, permanently_down}``; a
  value-domain failure makes the pair permanently down, a time-domain
  suspicion only marks it down until mutual checking succeeds again;
* coordinator changes use the **view-change part of BFT**, modified:
  the candidate pair for view ``v`` is ``c = v mod (f+1)`` (``f+1``
  when the residue is 0); a candidate whose status is not ``up``
  multicasts ``Unwilling(v)`` carrying its fail-signal, receivers echo
  it to the pair and multicast ``ViewChange(v+1)`` — non-coordinator
  processes never wait on a timeout for this step;
* a willing candidate collects ``n − f`` ViewChange messages, computes
  the NewBackLog (same rule as the install part), and its shadow
  endorses the resulting ``NewView``, which commits through the normal
  part exactly like a Start.
"""

from __future__ import annotations

from typing import Any

from repro.core.install import (
    BacklogView,
    compute_new_backlog,
    verify_start_against_backlogs,
)
from repro.core.messages import (
    NewView,
    OrderBatch,
    PairStartProposal,
    PairStatusUp,
    SignedMessage,
    Unwilling,
    ViewChange,
    payload_size,
)
from repro.core.pair import fail_signal_pair_rank
from repro.core.sc import INSTALL_CLIENT, ScProcess, make_install_batch
from repro.errors import ProtocolError

STATUS_UP = "up"
STATUS_DOWN = "down"
STATUS_PERMANENTLY_DOWN = "permanently_down"


class ScrProcess(ScProcess):
    """One order process of the SCR protocol."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self.config.variant != "scr":
            raise ProtocolError("ScrProcess requires a config with variant='scr'")
        self.view = 1
        self.pending_view: int | None = None
        self.status = STATUS_UP if self.paired else STATUS_PERMANENTLY_DOWN
        self._view_changes: dict[int, dict[str, SignedMessage]] = {}
        self._newview_computed: set[int] = set()
        self._voted_views: set[int] = set()
        self._status_up_sent = False
        self._counterpart_status_up = False
        self._fs_seen: set[tuple[int, int]] = set()
        self.recoveries = 0

    # ------------------------------------------------------------------
    # Suspicion without the oracle (assumption 3(b)(i))
    # ------------------------------------------------------------------
    def _timing_suspicion(self, reason: str) -> None:
        """Time-domain deadline misses are believed immediately — the
        delay estimate may simply be wrong right now.  The pair goes
        *down*, not permanently down, and may recover."""
        if self.pair_down:
            return
        self.trace("time_domain_failure", reason=reason)
        self.emit_fail_signal(reason=reason, domain="time")
        if self.status != STATUS_PERMANENTLY_DOWN:
            self.status = STATUS_DOWN

    def _value_domain_failure(self, reason: str) -> None:
        self.trace("value_domain_failure", reason=reason)
        self.emit_fail_signal(reason=reason, domain="value")
        self.status = STATUS_PERMANENTLY_DOWN

    def emit_fail_signal(self, reason: str = "", domain: str = "time") -> None:
        super().emit_fail_signal(reason=reason, domain=domain)
        if self.status != STATUS_PERMANENTLY_DOWN:
            self.status = STATUS_DOWN

    # ------------------------------------------------------------------
    # Recovery through continued mutual checking
    # ------------------------------------------------------------------
    def _heartbeat_tick(self) -> None:
        """Heartbeats continue while down (that *is* the continued
        mutual checking of Section 3.1) so recovery can be detected."""
        self._heartbeat_armed = False
        if self.crashed or self.status == STATUS_PERMANENTLY_DOWN:
            return
        from repro.core.messages import Heartbeat  # local import to avoid cycle noise

        self.send_urgent(
            self.counterpart, Heartbeat(self.name, nonce=int(self.sim.now * 1e6))
        )
        silent_for = self.sim.now - self.last_heard_from_counterpart
        threshold = self._silence_threshold()
        if self.status == STATUS_UP and not self.pair_down and silent_for > threshold:
            self._timing_suspicion(f"counterpart silent for {silent_for:.3f}s")
        elif self.status == STATUS_DOWN and silent_for <= threshold:
            # Counterpart looks timely again: propose resuming the pair
            # (re-offered every beat until the handshake completes).
            self._status_up_sent = True
            self.send_urgent(self.counterpart, PairStatusUp(self.name, since=self.sim.now))
            self._maybe_recover()
        self._arm_heartbeat()

    def _on_fail_signal(self, sender: str, signed: SignedMessage) -> None:
        """SCR pairs can fail more than once (they recover in between),
        so fail-signal deduplication is per (pair, view) rather than
        per pair."""
        rank = fail_signal_pair_rank(self.provider, signed)
        if rank is None:
            return
        key = (rank, self.view)
        if key in self._fs_seen:
            return
        self._fs_seen.add(key)
        body = signed.body
        if sender != body.first_signer:
            self.send_payload(body.first_signer, signed)
        if self.paired and rank == self.index and not self.fail_signalled:
            self.emit_fail_signal(reason="counterpart fail-signalled")
        self._register_fail_signal(signed, rank)

    def handle(self, sender: str, payload: Any) -> None:
        if self.paired and sender == self.counterpart:
            self.last_heard_from_counterpart = self.sim.now
        if isinstance(payload, PairStatusUp):
            if sender != self.counterpart:
                return
            if self.status == STATUS_DOWN:
                self._counterpart_status_up = True
                if not self._status_up_sent:
                    self._status_up_sent = True
                    self.send_urgent(
                        self.counterpart, PairStatusUp(self.name, since=self.sim.now)
                    )
                self._maybe_recover()
            elif self.status == STATUS_UP:
                # Already consider the pair operative: confirm, so a
                # counterpart that re-failed asymmetrically can rejoin.
                self.send_urgent(
                    self.counterpart, PairStatusUp(self.name, since=self.sim.now)
                )
            return
        if isinstance(payload, SignedMessage) and isinstance(payload.body, ViewChange):
            if self.paired and sender == self.counterpart:
                self.last_heard_from_counterpart = self.sim.now
            self._on_view_change(sender, payload)
            return
        if isinstance(payload, SignedMessage) and isinstance(payload.body, Unwilling):
            self._on_unwilling(sender, payload)
            return
        if isinstance(payload, SignedMessage) and isinstance(payload.body, NewView):
            self._on_new_view(sender, payload)
            return
        super().handle(sender, payload)

    def verification_service(self, payload: Any, size_bytes: int) -> float:
        if isinstance(payload, SignedMessage):
            body = payload.body
            if isinstance(body, (ViewChange, Unwilling)):
                return self.verify_cost(1, size_bytes)
            if isinstance(body, NewView):
                return self.verify_cost(len(payload.signatures), size_bytes)
        return super().verification_service(payload, size_bytes)

    def _maybe_recover(self) -> None:
        if self.status != STATUS_DOWN:
            return
        if not (self._status_up_sent and self._counterpart_status_up):
            return
        self.status = STATUS_UP
        self.pair_down = False
        self.fail_signalled = False
        self._status_up_sent = False
        self._counterpart_status_up = False
        self.recoveries += 1
        self.last_heard_from_counterpart = self.sim.now
        self.trace("pair_recovered", pair=self.index)
        if self.is_coordinating_replica:
            self._arm_batch_timer()
        if self.is_coordinating_shadow:
            self.watch.start()

    # ------------------------------------------------------------------
    # View changes instead of the SC install part
    # ------------------------------------------------------------------
    def _register_fail_signal(self, signed: SignedMessage, rank: int) -> None:
        self.failed_pairs[rank] = signed  # latest evidence for this pair
        self.trace("fail_signal_received", pair=rank)
        if rank == self.c and not self.installing:
            self._call_view_change(self.view + 1)

    def _call_view_change(self, new_view: int) -> None:
        if new_view in self._voted_views or new_view <= self.view:
            return
        self._voted_views.add(new_view)
        self.installing = True  # suspend acking of orders, as in IN1
        self.pending_view = max(self.pending_view or 0, new_view)
        # Retry timer: if the candidate never installs the view (e.g.
        # it failed mid-installation without an Unwilling), move on.
        self.set_timer(self.config.view_timeout, self._view_retry, new_view)
        body = ViewChange(
            sender=self.name,
            view=new_view,
            max_committed=self.log.max_committed_proof(),
            uncommitted=self.log.uncommitted_orders(),
        )
        signed = self.make_signed(body)
        self.trace("view_change_sent", view=new_view, size=payload_size(signed))
        candidate = self.config.scr_candidate_rank(new_view)
        if self.name in self.config.coordinator_members(candidate):
            self._note_view_change(signed)
        self.multicast_payload(self.others, signed)

    def _view_retry(self, target: int) -> None:
        if self.view < target and self.pending_view is not None:
            self._call_view_change(max(target, self.pending_view) + 1)

    def _on_view_change(self, sender: str, signed: SignedMessage) -> None:
        body: ViewChange = signed.body
        if sender != body.sender or not self.check_signed(signed, (body.sender,)):
            return
        if body.view <= self.view:
            return
        # Joining the view change (BFT-style: seeing is believing).
        if body.view not in self._voted_views:
            self._call_view_change(body.view)
        self._note_view_change(signed)

    def _note_view_change(self, signed: SignedMessage) -> None:
        body: ViewChange = signed.body
        votes = self._view_changes.setdefault(body.view, {})
        votes[body.sender] = signed
        candidate = self.config.scr_candidate_rank(body.view)
        members = self.config.coordinator_members(candidate)
        if self.name not in members:
            return
        if self.status != STATUS_UP:
            self._send_unwilling(body.view)
            return
        if self.name == members[0]:
            self._maybe_compute_new_view(body.view)

    def _send_unwilling(self, view: int) -> None:
        """The candidate declines: its pair is not up (Section 4.4)."""
        if self.my_fail_signal is None:
            return
        body = Unwilling(sender=self.name, view=view, fail_signal=self.my_fail_signal)
        signed = self.make_signed(body)
        self.trace("unwilling_sent", view=view)
        self.multicast_payload(self.others, signed)

    def _on_unwilling(self, sender: str, signed: SignedMessage) -> None:
        body: Unwilling = signed.body
        if sender != body.sender or not self.check_signed(signed, (body.sender,)):
            return
        if fail_signal_pair_rank(self.provider, body.fail_signal) is None:
            return
        candidate = self.config.scr_candidate_rank(body.view)
        members = self.config.coordinator_members(candidate)
        if body.sender not in members:
            return
        if body.view <= self.view:
            return
        # Echo to the pair, then move to the next view immediately
        # (non-coordinator processes do not wait on a timeout here).
        for member in members:
            if member != sender:
                self.send_payload(member, signed)
        self.trace("unwilling_received", view=body.view)
        self._call_view_change(body.view + 1)

    def _maybe_compute_new_view(self, view: int) -> None:
        if view in self._newview_computed or view <= self.view:
            return
        votes = self._view_changes.get(view, {})
        if len(votes) < self.config.order_quorum:
            return
        if self.status != STATUS_UP:
            self._send_unwilling(view)
            return
        self._newview_computed.add(view)
        chosen = list(votes.values())[: self.config.order_quorum]
        views_data: list[BacklogView] = []
        n_verifies = 0
        total_bytes = 0
        for signed in chosen:
            vc: ViewChange = signed.body
            total_bytes += payload_size(signed)
            if vc.max_committed is not None:
                n_verifies += len(vc.max_committed.order.signatures)
                n_verifies += len(vc.max_committed.acks)
            for order in vc.uncommitted:
                n_verifies += len(order.signatures)
            views_data.append(
                BacklogView(
                    sender=vc.sender,
                    max_committed=vc.max_committed,
                    uncommitted=vc.uncommitted,
                )
            )
        self.charge(n_verifies * self.cost.verify)
        self.charge(self.cal.backlog_compute_per_kb * (total_bytes / 1024.0))
        result = compute_new_backlog(views_data, self.config.f)
        new_backlog = result.new_backlog
        if result.base_proof is not None:
            new_backlog = (result.base_proof.order, *new_backlog)
        candidate = self.config.scr_candidate_rank(view)
        body = NewView(
            view=view,
            new_rank=candidate,
            start_seq=result.start_seq,
            new_backlog=new_backlog,
        )
        signed_nv = self.make_signed(body)
        self.trace("new_view_computed", view=view, start_seq=result.start_seq)
        self.send_pair(
            self.counterpart,
            PairStartProposal(start=signed_nv, backlogs=tuple(chosen)),
        )
        self.expect.expect(
            ("endorse-newview", view),
            self._endorse_deadline() + self._proposal_allowance(chosen),
        )

    def _on_pair_start_proposal(self, sender: str, proposal: PairStartProposal) -> None:
        """The candidate shadow endorses the NewView (pair endorsement
        replaces BFT's per-replica proof checking)."""
        if sender != self.counterpart or self.pair_down:
            return
        body = proposal.start.body
        if not isinstance(body, NewView):
            return
        if not self.check_signed(proposal.start, (self.counterpart,)):
            self._value_domain_failure("bad signature on NewView proposal")
            return
        provided: list[BacklogView] = []
        n_verifies = 0
        ok = True
        for signed in proposal.backlogs:
            vc = signed.body
            if not isinstance(vc, ViewChange) or not self.check_signed(
                signed, (vc.sender,)
            ):
                ok = False
                break
            if vc.max_committed is not None:
                n_verifies += len(vc.max_committed.order.signatures) + len(
                    vc.max_committed.acks
                )
            n_verifies += sum(len(o.signatures) for o in vc.uncommitted)
            provided.append(
                BacklogView(
                    sender=vc.sender,
                    max_committed=vc.max_committed,
                    uncommitted=vc.uncommitted,
                )
            )
        if ok:
            self.charge(n_verifies * self.cost.verify)
            own = [
                BacklogView(
                    sender=s.body.sender,
                    max_committed=s.body.max_committed,
                    uncommitted=s.body.uncommitted,
                )
                for s in self._view_changes.get(body.view, {}).values()
            ]
            ok = verify_start_against_backlogs(
                self._strip_base(body.new_backlog, provided),
                body.start_seq,
                provided,
                own,
                self.config.f,
            )
        if not ok:
            self._value_domain_failure("NewView fails recomputation check")
            return
        doubly = self.make_countersigned(proposal.start)
        self.trace(
            "failover_complete", target=body.new_rank, view=body.view,
            start_seq=body.start_seq,
        )
        self.multicast_payload(self.others, doubly)
        self._adopt_new_view(doubly)

    def _on_new_view(self, sender: str, signed: SignedMessage) -> None:
        body: NewView = signed.body
        if body.view <= self.view:
            return
        members = self.config.coordinator_members(body.new_rank)
        if tuple(signed.signers) != members or not self.check_signed(signed, members):
            return
        if self.paired and sender == self.counterpart:
            self.expect.fulfil(("endorse-newview", body.view))
        self._adopt_new_view(signed)

    def _adopt_new_view(self, signed: SignedMessage) -> None:
        """Install the view; the NewView commits via the normal part."""
        body: NewView = signed.body
        if body.view <= self.view:
            return
        self.view = body.view
        self.c = body.new_rank
        self.installing = False
        self.pending_view = None
        self.pending_start = signed
        self.installed_ranks.append(body.new_rank)
        self.trace("view_installed", view=body.view, rank=body.new_rank)
        self.log.drop_uncommitted_from(body.start_seq)
        self.next_expected = min(self.next_expected, body.start_seq)
        for signed_order in body.new_backlog:
            self.log.force_commit(signed_order, self.sim.now)
        self._request_catchup_if_needed_nv(body)
        pseudo = make_install_batch(signed, self.config.scheme.digest)
        pseudo_signed = SignedMessage(body=pseudo, signatures=signed.signatures)
        self.next_expected = max(self.next_expected, body.start_seq)
        self._process_order(pseudo_signed)
        self._execute_ready()
        if self.is_coordinating_replica:
            self.next_assign_seq = body.start_seq + 1
            self._rebuild_unordered()
            self._arm_batch_timer()
        if self.is_coordinating_shadow:
            self.next_endorse_seq = body.start_seq + 1
            self.watch.start()
        replay, self._future_orders = self._future_orders, []
        for sender, order in replay:
            self._on_order(sender, order)

    def _request_catchup_if_needed_nv(self, body: NewView) -> None:
        if not body.new_backlog:
            return
        first_batch: OrderBatch = body.new_backlog[0].body
        missing_up_to = first_batch.first_seq - 1
        if self._exec_next > missing_up_to:
            return
        span = (self._exec_next, missing_up_to)
        if span in self._catchup_requested:
            return
        self._catchup_requested.add(span)
        from repro.core.messages import CatchUpRequest

        self.multicast_payload(self.others, CatchUpRequest(self.name, span[0], span[1]))

    # In SCR the pseudo batch for a NewView carries client
    # INSTALL_CLIENT and rank == candidate; _matches_pending_start
    # compares against the held NewView, inherited unchanged.
