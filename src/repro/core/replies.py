"""Client replies: closing the state-machine-replication loop.

The paper focuses on the ordering requirement and leaves the rest of
Schneider's state-machine-replication framework implicit.  For a usable
library we close the loop: after executing a committed entry, each
order process sends the client a :class:`Reply`; a correct client
accepts a result once ``f + 1`` distinct processes report the *same*
result for the request — at most ``f`` are faulty, so at least one of
any ``f + 1`` matching replies comes from a correct process.

Replies are unsigned (matching-content voting does not need signatures
for correctness; the paper's clients are outside the trust argument),
and the whole path is optional (``ProtocolConfig.send_replies``) so the
performance studies measure exactly what the paper measured.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.core.messages import HEADER_BYTES, OrderEntry


@dataclass(frozen=True)
class Reply:
    """One process's execution result for one client request."""

    replier: str
    client: str
    req_id: int
    seq: int
    result_digest: bytes

    def payload_bytes(self) -> int:
        return HEADER_BYTES + len(self.result_digest)


def result_digest(entry: OrderEntry) -> bytes:
    """Deterministic execution result for an entry.

    The demo state machine's 'result' is a digest of the assigned
    sequence number and request digest — any deterministic function of
    the ordered input works, and all correct replicas compute the same
    value, which is what the f+1 matching rule needs.
    """
    return hashlib.sha256(
        entry.seq.to_bytes(8, "big") + entry.req_digest
    ).digest()[:16]


class ReplyTracker:
    """Client-side collection of replies until ``f + 1`` agree."""

    def __init__(self, f: int) -> None:
        self.f = f
        self._votes: dict[tuple[str, int], dict[bytes, set[str]]] = {}
        self.completed: dict[tuple[str, int], tuple[int, bytes, float]] = {}

    def note_reply(self, reply: Reply, now: float) -> bool:
        """Record a reply; True if it *just* completed the request."""
        key = (reply.client, reply.req_id)
        if key in self.completed:
            return False
        votes = self._votes.setdefault(key, {})
        supporters = votes.setdefault(reply.result_digest, set())
        supporters.add(reply.replier)
        if len(supporters) >= self.f + 1:
            self.completed[key] = (reply.seq, reply.result_digest, now)
            self._votes.pop(key, None)
            return True
        return False

    @property
    def pending(self) -> int:
        return len(self._votes)
