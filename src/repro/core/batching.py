"""Order batching (Section 4.3, second optimisation).

The coordinator accumulates client requests and, every
``batching_interval``, emits one batch of order decisions whose total
request payload stays within ``batch_size_bytes`` (the paper fixes this
at 1 KB).  Latency is measured *from batch formation*, so the batcher
is also where the measurement clock starts.
"""

from __future__ import annotations

from repro.core.messages import OrderBatch, OrderEntry
from repro.core.requests import ClientRequest
from repro.errors import ConfigError


class Batcher:
    """Groups pending requests into size-capped batches."""

    def __init__(self, batch_size_bytes: int) -> None:
        if batch_size_bytes <= 0:
            raise ConfigError("batch_size_bytes must be positive")
        self.batch_size_bytes = batch_size_bytes

    def take(self, pending: list[ClientRequest]) -> list[ClientRequest]:
        """Longest prefix of ``pending`` fitting the size cap.

        Always takes at least one request if any is pending, so an
        oversized single request still makes progress.
        """
        taken: list[ClientRequest] = []
        used = 0
        for request in pending:
            if taken and used + request.size_bytes > self.batch_size_bytes:
                break
            taken.append(request)
            used += request.size_bytes
        return taken

    @staticmethod
    def make_batch(
        rank: int,
        batch_id: int,
        first_seq: int,
        requests: list[ClientRequest],
        digest_name: str,
    ) -> OrderBatch:
        """Assign consecutive sequence numbers and build the batch."""
        if not requests:
            raise ConfigError("cannot build an empty batch")
        entries = tuple(
            OrderEntry(
                seq=first_seq + i,
                req_digest=request.digest_under(digest_name),
                client=request.client,
                req_id=request.req_id,
            )
            for i, request in enumerate(requests)
        )
        return OrderBatch(rank=rank, batch_id=batch_id, entries=entries)
