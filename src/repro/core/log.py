"""Per-process order log: orders seen, acks counted, commits proven.

One :class:`Slot` per order batch, keyed by the batch's first sequence
number.  A slot commits when ack-or-order evidence from ``quorum``
distinct processes accumulates (step N2); the evidence set is retained
as the proof of commitment (step N3) that BackLogs later carry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.messages import CommitProof, OrderBatch, SignedMessage
from repro.errors import ProtocolError


@dataclass
class Slot:
    """State of one order batch at one process.

    ``evidence`` maps each supporting acker to the signed ack received
    from it — the raw material of the proof of commitment.
    """

    first_seq: int
    order: SignedMessage | None = None  # adopted SignedMessage[OrderBatch]
    support: set[str] = field(default_factory=set)
    evidence: dict[str, SignedMessage] = field(default_factory=dict)
    acked: bool = False
    committed: bool = False
    committed_at: float | None = None
    competing: list[SignedMessage] = field(default_factory=list)

    @property
    def last_seq(self) -> int:
        if self.order is None:
            raise ProtocolError(f"slot {self.first_seq} has no adopted order")
        batch: OrderBatch = self.order.body
        return batch.last_seq


class OrderLog:
    """The order/ack/commit bookkeeping of one process.

    ``quorum`` may be lowered at run time by the dumb-process
    optimisation (Section 4.3 reduces ``n`` by 2 and ``f`` by 1 after
    each fail-over, so the threshold ``n − f`` drops by 1).
    """

    def __init__(self, quorum: int) -> None:
        self.quorum = quorum
        self.slots: dict[int, Slot] = {}
        self.highest_committed: int = 0  # largest committed last_seq
        self._max_committed_slot: Slot | None = None

    # ------------------------------------------------------------------
    # Recording evidence
    # ------------------------------------------------------------------
    def slot_for(self, first_seq: int) -> Slot:
        slot = self.slots.get(first_seq)
        if slot is None:
            slot = Slot(first_seq=first_seq)
            self.slots[first_seq] = slot
        return slot

    def note_order(self, signed: SignedMessage) -> Slot:
        """Record an order batch; adopt it if the slot is empty.

        A *different* batch at an occupied slot is kept in
        ``competing`` — evidence of equivocation for the install part
        to resolve.
        """
        batch: OrderBatch = signed.body
        slot = self.slot_for(batch.first_seq)
        if slot.order is None:
            slot.order = signed
            slot.support.update(signed.signers)
        elif self._same_batch(slot.order, signed):
            slot.support.update(signed.signers)
        else:
            slot.competing.append(signed)
        return slot

    def note_ack(
        self,
        acker: str,
        signed_order: SignedMessage,
        signed_ack: SignedMessage | None = None,
    ) -> Slot:
        """Record one process's ack (which carries the order).

        ``signed_ack`` is retained as proof-of-commitment evidence; the
        local process's own ack passes ``None`` (its contribution to a
        proof is re-signed on demand).
        """
        slot = self.note_order(signed_order)
        if slot.order is not None and self._same_batch(slot.order, signed_order):
            slot.support.add(acker)
            if signed_ack is not None:
                slot.evidence.setdefault(acker, signed_ack)
        return slot

    @staticmethod
    def _same_batch(a: SignedMessage, b: SignedMessage) -> bool:
        batch_a: OrderBatch = a.body
        batch_b: OrderBatch = b.body
        return batch_a.entries == batch_b.entries and batch_a.rank == batch_b.rank

    # ------------------------------------------------------------------
    # Committing
    # ------------------------------------------------------------------
    def quorum_reached(self, slot: Slot) -> bool:
        """N2: evidence from ``quorum`` distinct processes present."""
        return slot.order is not None and len(slot.support) >= self.quorum

    def commit(self, slot: Slot, now: float) -> None:
        """N3: mark committed; idempotent calls are an error."""
        if slot.committed:
            raise ProtocolError(f"slot {slot.first_seq} committed twice")
        if slot.order is None:
            raise ProtocolError(f"slot {slot.first_seq} committed without an order")
        slot.committed = True
        slot.committed_at = now
        if slot.last_seq > self.highest_committed:
            self.highest_committed = slot.last_seq
            self._max_committed_slot = slot

    def force_commit(self, signed: SignedMessage, now: float) -> Slot:
        """Commit an order adopted from an install/catch-up path.

        An *uncommitted* conflicting order at the slot is overridden —
        the install part's NewBackLog is authoritative for uncommitted
        positions.  A *committed* conflicting order would be a safety
        violation and raises.
        """
        batch: OrderBatch = signed.body
        slot = self.slot_for(batch.first_seq)
        if slot.order is not None and not self._same_batch(slot.order, signed):
            if slot.committed:
                raise ProtocolError(
                    f"conflicting commit at slot {slot.first_seq}: "
                    "the install part chose an order that contradicts a "
                    "locally committed one"
                )
            slot.competing.append(slot.order)
            slot.order = signed
            slot.support = set(signed.signers)
            slot.evidence = {}
        elif slot.order is None:
            slot.order = signed
            slot.support.update(signed.signers)
        if not slot.committed:
            self.commit(slot, now)
        return slot

    def drop_uncommitted_from(self, first_seq: int) -> list[SignedMessage]:
        """Discard uncommitted slots at/above ``first_seq`` (orders from
        a deposed coordinator that did not survive into NewBackLog).
        Returns the dropped orders so requests can be re-queued."""
        dropped: list[SignedMessage] = []
        for key in sorted(self.slots):
            slot = self.slots[key]
            if key >= first_seq and not slot.committed:
                if slot.order is not None:
                    dropped.append(slot.order)
                del self.slots[key]
        return dropped

    # ------------------------------------------------------------------
    # Views used by the install part
    # ------------------------------------------------------------------
    def max_committed_proof(self) -> CommitProof | None:
        """The committed order with the largest sequence number, plus
        the distinct-process evidence retained at commit time.

        N3 retains exactly the ``n − f`` distinct ack/order messages;
        the proof is trimmed accordingly (the order's own signers count,
        so ``quorum − len(signers)`` acks suffice)."""
        slot = self._max_committed_slot
        if slot is None or slot.order is None:
            return None
        needed = max(0, self.quorum - len(set(slot.order.signers)))
        ackers = [name for name in sorted(slot.evidence) if name not in slot.order.signers]
        acks = tuple(slot.evidence[name] for name in ackers[:needed])
        return CommitProof(order=slot.order, acks=acks, quorum=self.quorum)

    def uncommitted_orders(self) -> tuple[SignedMessage, ...]:
        """Acked-but-uncommitted orders, in sequence order (IN1 (c))."""
        picked = [
            slot
            for slot in self.slots.values()
            if slot.acked and not slot.committed and slot.order is not None
        ]
        picked.sort(key=lambda slot: slot.first_seq)
        return tuple(slot.order for slot in picked)

    def committed_between(self, first: int, last: int) -> tuple[SignedMessage, ...]:
        """Committed orders whose range intersects ``[first, last]``
        (catch-up replies)."""
        picked = [
            slot
            for slot in self.slots.values()
            if slot.committed
            and slot.order is not None
            and slot.first_seq <= last
            and slot.last_seq >= first
        ]
        picked.sort(key=lambda slot: slot.first_seq)
        return tuple(slot.order for slot in picked)

    def committed_slots(self) -> list[Slot]:
        """All committed slots in sequence order."""
        picked = [s for s in self.slots.values() if s.committed]
        picked.sort(key=lambda slot: slot.first_seq)
        return picked

    def truncate_below(self, stable_seq: int) -> int:
        """Discard committed slots entirely below a stable checkpoint.

        The slot backing :meth:`max_committed_proof` is always kept —
        BackLogs must be able to carry the proof.  Returns the number
        of slots discarded.
        """
        keep = self._max_committed_slot
        victims = [
            first_seq
            for first_seq, slot in self.slots.items()
            if slot.committed and slot.last_seq <= stable_seq and slot is not keep
        ]
        for first_seq in victims:
            del self.slots[first_seq]
        return len(victims)
