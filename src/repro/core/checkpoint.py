"""Checkpointing: bounding the order log.

Neither SC nor SCR can run forever while retaining every committed
order (BackLogs carry proofs whose verification assumes the log is
available).  Following the standard construction (PBFT's checkpoints),
processes periodically exchange signed digests of their executed state;
once ``f + 1`` distinct processes vouch for the same digest at the same
sequence number, the checkpoint is *stable* — at least one correct
process holds that state — and committed slots below it can be
discarded.

Catch-up requests reaching below the stable checkpoint cannot be served
from the log anymore; a production system would fall back to state
transfer (shipping the checkpointed state itself), which we note as the
documented boundary of this reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.messages import HEADER_BYTES


@dataclass(frozen=True)
class Checkpoint:
    """A process's claim: "after executing seq, my state digest is d"."""

    process: str
    seq: int
    state_digest: bytes

    def payload_bytes(self) -> int:
        return HEADER_BYTES + len(self.state_digest)


class CheckpointTracker:
    """Collects checkpoint claims until f + 1 agree (stability)."""

    def __init__(self, f: int) -> None:
        self.f = f
        self._votes: dict[tuple[int, bytes], set[str]] = {}
        self.stable_seq = 0
        self.stable_digest: bytes | None = None

    def note(self, checkpoint: Checkpoint) -> bool:
        """Record a claim; True if a new stable checkpoint emerged."""
        if checkpoint.seq <= self.stable_seq:
            return False
        key = (checkpoint.seq, checkpoint.state_digest)
        supporters = self._votes.setdefault(key, set())
        supporters.add(checkpoint.process)
        if len(supporters) >= self.f + 1:
            self.stable_seq = checkpoint.seq
            self.stable_digest = checkpoint.state_digest
            # Older claims can never become the newest stable point.
            self._votes = {
                k: v for k, v in self._votes.items() if k[0] > checkpoint.seq
            }
            return True
        return False
