"""Signal-on-crash pair logic: validation and fail-signal construction.

Pure functions used by the protocol processes, kept separate so the
value-domain checking rules of Section 3.1 and the fail-signal format
of Section 3.2 are unit-testable without a simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.messages import (
    FailSignalBody,
    OrderBatch,
    SignedMessage,
    countersign,
    verify_signed,
)
from repro.core.requests import ClientRequest
from repro.crypto.signing import Signature, SignatureProvider
from repro.net.addresses import base_index, pair_of

#: Validation outcomes for a proposed order batch.
VALID = "valid"
INVALID = "invalid"
DEFER = "defer"  # a referenced request has not arrived yet


@dataclass(frozen=True)
class Validation:
    """Result of value-domain checking of a coordinator's proposal."""

    verdict: str
    reason: str = ""
    missing: tuple[tuple[str, int], ...] = ()


def validate_order_batch(
    batch: OrderBatch,
    expected_first_seq: int,
    pending: Mapping[tuple[str, int], ClientRequest],
    digest_name: str,
) -> Validation:
    """The shadow's value-domain check of a proposed order batch.

    Checks, per Section 3.1: sequence numbers are the expected,
    consecutive ones; every entry references a known client request;
    and every digest matches the request actually received.  A missing
    request yields ``DEFER`` (clients send to all nodes, so the request
    is on its way — or the coordinator fabricated it, which the
    deferral deadline in the caller turns into a failure).
    """
    if not batch.entries:
        return Validation(INVALID, "empty batch")
    if batch.first_seq != expected_first_seq:
        return Validation(
            INVALID,
            f"batch starts at {batch.first_seq}, expected {expected_first_seq}",
        )
    missing: list[tuple[str, int]] = []
    for offset, entry in enumerate(batch.entries):
        if entry.seq != batch.first_seq + offset:
            return Validation(INVALID, f"non-consecutive seq {entry.seq}")
        request = pending.get((entry.client, entry.req_id))
        if request is None:
            missing.append((entry.client, entry.req_id))
            continue
        if request.digest_under(digest_name) != entry.req_digest:
            return Validation(
                INVALID, f"digest mismatch for request {(entry.client, entry.req_id)}"
            )
    if missing:
        return Validation(DEFER, "request(s) not yet received", tuple(missing))
    return Validation(VALID)


def batches_equal(a: OrderBatch, b: OrderBatch) -> bool:
    """Value-domain equality of two order batches."""
    return a.rank == b.rank and a.entries == b.entries


def build_fail_signal(
    provider: SignatureProvider,
    holder: str,
    blank_body: FailSignalBody,
    blank_signature: Signature,
) -> SignedMessage:
    """Double-sign the pre-supplied fail-signal blank (Section 3.2).

    The blank already carries the counterpart's signature; the holder
    adds its own, producing the authentic doubly-signed fail-signal.
    """
    singly = SignedMessage(body=blank_body, signatures=(blank_signature,))
    return countersign(provider, holder, singly)


def fail_signal_pair_rank(
    provider: SignatureProvider, message: SignedMessage
) -> int | None:
    """Validate a received fail-signal; returns the pair rank or None.

    An authentic fail-signal is doubly-signed, its two signers are the
    two members of the pair named in the body, and the first signer
    matches the blank's ``first_signer`` field (the dealer signed the
    blank as the counterpart of its holder).
    """
    body = message.body
    if not isinstance(body, FailSignalBody):
        return None
    if len(message.signatures) != 2:
        return None
    first, second = message.signers
    if first != body.first_signer or second != pair_of(first):
        return None
    if base_index(first) != body.pair:
        return None
    if not verify_signed(provider, message):
        return None
    return body.pair
