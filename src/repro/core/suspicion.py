"""Timeliness monitoring inside a pair (Section 2.1.1).

Two small tools:

* :class:`ExpectationMonitor` — keyed deadlines for outputs a process
  expects from its counterpart (an endorsement, a heartbeat reply);
  fulfilling a key cancels its deadline, a missed deadline reports a
  time-domain failure.
* :class:`OrderProductionWatch` — the shadow's check that the
  coordinator replica "is deciding an order for every request which it
  has forwarded": tracks the oldest request still unordered and fires
  when its age exceeds the allowed deadline.  Implemented as a periodic
  sweep so the timer count stays O(1) rather than O(requests).
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

from repro.sim.events import Event
from repro.sim.process import Actor


class ExpectationMonitor:
    """Deadlines for expected counterpart outputs."""

    def __init__(self, actor: Actor, on_miss: Callable[[Hashable], None]) -> None:
        self._actor = actor
        self._on_miss = on_miss
        self._pending: dict[Hashable, Event] = {}
        self.enabled = True

    def expect(self, key: Hashable, timeout: float) -> None:
        """Expect ``fulfil(key)`` within ``timeout`` seconds."""
        if key in self._pending:
            return
        self._pending[key] = self._actor.set_timer(timeout, self._miss, key)

    def fulfil(self, key: Hashable) -> bool:
        """The expected output arrived; True if it was being awaited."""
        event = self._pending.pop(key, None)
        if event is None:
            return False
        if event.active:
            event.cancel()
        return True

    def cancel_all(self) -> None:
        """Stop monitoring (pair collaboration ended)."""
        for event in self._pending.values():
            if event.active:
                event.cancel()
        self._pending.clear()

    def _miss(self, key: Hashable) -> None:
        if self._pending.pop(key, None) is None:
            return
        if self.enabled:
            self._on_miss(key)

    @property
    def outstanding(self) -> int:
        return len(self._pending)


class OrderProductionWatch:
    """Shadow-side monitor of the coordinator's ordering duty.

    Fires when requests are owed an order *and* no ordering progress
    has happened for ``deadline`` seconds.  Progress-based (rather than
    per-request age) because under a saturating workload a full batch
    legitimately leaves the excess requests waiting for later
    batching intervals; what a correct coordinator never does is stop
    producing order decisions entirely while requests are pending.
    """

    def __init__(
        self,
        actor: Actor,
        deadline: float,
        on_miss: Callable[[Any], None],
        sweep_interval: float | None = None,
    ) -> None:
        self._actor = actor
        self.deadline = deadline
        self._on_miss = on_miss
        self._sweep_interval = (
            sweep_interval if sweep_interval is not None else deadline / 2
        )
        self._arrivals: dict[Hashable, float] = {}
        self._last_progress = 0.0
        self._running = False
        self._stopped = False

    def start(self) -> None:
        """Begin sweeping (called when the pair becomes coordinator)."""
        self._stopped = False
        self._last_progress = self._actor.sim.now
        if not self._running:
            self._running = True
            self._actor.set_timer(self._sweep_interval, self._sweep)

    def stop(self) -> None:
        """Stop sweeping and forget tracked requests."""
        self._stopped = True
        self._arrivals.clear()

    def note_request(self, key: Hashable) -> None:
        """A request arrived; the coordinator now owes it an order."""
        self._arrivals.setdefault(key, self._actor.sim.now)

    def note_ordered(self, key: Hashable) -> None:
        """The coordinator ordered the request: that is progress."""
        self._arrivals.pop(key, None)
        self._last_progress = self._actor.sim.now

    def _sweep(self) -> None:
        if self._stopped:
            self._running = False
            return
        now = self._actor.sim.now
        if self._arrivals:
            oldest = min(self._arrivals.values())
            stalled = now - max(self._last_progress, oldest) > self.deadline
            if stalled:
                self._running = False
                key = min(self._arrivals, key=lambda k: self._arrivals[k])
                self._on_miss(key)
                return
        self._actor.set_timer(self._sweep_interval, self._sweep)

    @property
    def tracked(self) -> int:
        return len(self._arrivals)
