"""Shared plumbing for order processes (SC, SCR, and the baselines).

:class:`OrderProcessBase` wires an actor to the network with the cost
accounting conventions used throughout the reproduction:

* **receive**: the network charges ``unmarshal + handling +
  verification`` (from :meth:`receive_service`) to the node CPU before
  the handler runs;
* **sign**: handlers charge signing/digesting when they create signed
  messages (:meth:`make_signed` / :meth:`make_countersigned`);
* **send**: :meth:`send_payload` / :meth:`multicast_payload` charge
  marshalling plus a per-destination cost, and the message departs when
  that CPU work completes.

Fault plans (:mod:`repro.failures`) are consulted here for crash
behaviour; richer Byzantine hooks are consulted by the protocol
subclasses at their decision points.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.calibration import CalibrationProfile
from repro.core.messages import (
    SignedMessage,
    countersign,
    payload_size,
    sign_message,
    verify_signed,
)
from repro.core.requests import ClientRequest
from repro.crypto.costs import OpCosts
from repro.crypto.signing import SignatureProvider
from repro.failures.faults import FaultPlan
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.sim.process import Actor


class OrderProcessBase(Actor):
    """An order process attached to the simulated network."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        network: Network,
        provider: SignatureProvider,
        calibration: CalibrationProfile,
    ) -> None:
        super().__init__(sim, name)
        self.network = network
        self.provider = provider
        self.cal = calibration
        self.cost: OpCosts = calibration.crypto.for_scheme(provider.scheme)
        self.cpu.overload_gamma = calibration.overload_gamma
        self.fault = FaultPlan(active_from=float("inf"))
        # Requests known to this process (clients send to all nodes).
        self.pending: dict[tuple[str, int], ClientRequest] = {}
        self.request_arrival: dict[tuple[str, int], float] = {}
        # True once the process has been turned "dumb" (Section 4.3):
        # it keeps executing but no longer transmits.
        self.dumb = False
        network.attach(self)

    # ------------------------------------------------------------------
    # Fault state
    # ------------------------------------------------------------------
    @property
    def fault(self) -> FaultPlan:
        """The process's fault plan.

        A managed attribute so that assignment (the injector's
        ``process.fault = plan``) refreshes ``_fault_benign``: the base
        :class:`FaultPlan`'s hooks are all no-ops, so hot paths — every
        send and every receive consult the plan — may skip it entirely
        while the process is unfaulted, which is the common case for
        all but one process of a run.
        """
        return self._fault

    @fault.setter
    def fault(self, plan: FaultPlan) -> None:
        self._fault = plan
        self._fault_benign = type(plan) is FaultPlan

    @property
    def crashed(self) -> bool:
        """Whether the process's fault plan says it has crashed."""
        return not self._fault_benign and self._fault.is_crashed(self.sim.now)

    @property
    def may_transmit(self) -> bool:
        """Dumb or crashed processes do not put messages on the wire."""
        return not self.dumb and not self.crashed

    # ------------------------------------------------------------------
    # Signing helpers (charge CPU at creation time)
    # ------------------------------------------------------------------
    def make_signed(self, body: Any) -> SignedMessage:
        """Sign ``body`` as this process, charging sign + digest cost."""
        size = payload_size(body)
        cost = self.cost.sign + self.cost.digest_cost(size)
        self.charge(cost)
        trace = self.sim.trace
        if trace.wants("crypto_op"):
            trace.emit(self.sim.now, "crypto_op", actor=self.name, op="sign",
                       msg=type(body).__name__, cost=cost)
        return sign_message(self.provider, self.name, body)

    def make_countersigned(self, message: SignedMessage) -> SignedMessage:
        """Add this process's endorsement signature."""
        size = payload_size(message.body)
        cost = self.cost.sign + self.cost.digest_cost(size)
        self.charge(cost)
        trace = self.sim.trace
        if trace.wants("crypto_op"):
            trace.emit(self.sim.now, "crypto_op", actor=self.name, op="sign",
                       msg=type(message.body).__name__, cost=cost)
        return countersign(self.provider, self.name, message)

    def check_signed(
        self, message: SignedMessage, expected_signers: tuple[str, ...] | None = None
    ) -> bool:
        """Logical signature verification (its CPU cost was charged by
        :meth:`receive_service` when the message arrived)."""
        return verify_signed(self.provider, message, expected_signers)

    def verify_cost(self, n_signatures: int, size_bytes: int) -> float:
        """CPU seconds to verify ``n_signatures`` over a body of
        ``size_bytes`` (one digest computation, n public-key ops)."""
        if n_signatures <= 0:
            return 0.0
        return n_signatures * self.cost.verify + self.cost.digest_cost(size_bytes)

    # ------------------------------------------------------------------
    # Transmission helpers
    # ------------------------------------------------------------------
    def _censors_send(self, payload: Any, dest: str) -> bool:
        """Whether the (non-benign) fault plan suppresses this send."""
        now = self.sim.now
        return self._fault.is_crashed(now) or self._fault.drops_message(now, payload, dest)

    def send_payload(self, dest: str, payload: Any) -> None:
        """Unicast with marshalling cost; silently dropped when the
        process is dumb/crashed or its fault plan censors the send."""
        if self.dumb or (not self._fault_benign and self._censors_send(payload, dest)):
            return
        size = payload_size(payload)
        depart = self.cpu.submit(self.cal.marshal_cost(size) + self.cal.send_per_dest)
        self.network.send(self.name, dest, payload, size, depart_time=depart)

    def send_pair(self, dest: str, payload: Any) -> None:
        """Unicast over the pair link (adds the RMI call overhead)."""
        if self.dumb or (not self._fault_benign and self._censors_send(payload, dest)):
            return
        size = payload_size(payload)
        depart = self.cpu.submit(
            self.cal.marshal_cost(size) + self.cal.pair_call_overhead
        )
        self.network.send(self.name, dest, payload, size, depart_time=depart)

    def send_urgent(self, dest: str, payload: Any) -> None:
        """Interrupt-level unicast: departs immediately, bypassing the
        CPU queue.  Used for heartbeat-class keepalives whose entire
        purpose is to stay timely while the node crunches."""
        if self.dumb or (not self._fault_benign and self._censors_send(payload, dest)):
            return
        self.network.send(self.name, dest, payload, payload_size(payload))

    def multicast_payload(self, dests: Iterable[str], payload: Any) -> None:
        """Marshal once, then send to every destination."""
        if self.dumb:
            return
        name = self.name
        if self._fault_benign:
            targets = [dest for dest in dests if dest != name]
        else:
            if self.crashed:
                return
            now = self.sim.now
            targets = [
                dest
                for dest in dests
                if dest != name and not self._fault.drops_message(now, payload, dest)
            ]
        if not targets:
            return
        size = payload_size(payload)
        depart = self.cpu.submit(
            self.cal.marshal_cost(size) + self.cal.send_per_dest * len(targets)
        )
        for dest in targets:
            self.network.send(name, dest, payload, size, depart_time=depart)

    # ------------------------------------------------------------------
    # Reception
    # ------------------------------------------------------------------
    def receive_service(self, payload: Any, size_bytes: int) -> float:
        """Unmarshal + handling + type-specific verification cost."""
        if not self._fault_benign and self._fault.is_crashed(self.sim.now):
            return 0.0
        cal = self.cal
        if type(payload) is ClientRequest:
            # The dominant message class (clients multicast to every
            # process): never urgent, never verified — every protocol's
            # verification_service returns 0.0 for it, so the two
            # dispatch hops are skipped.  Inlined cal.unmarshal_cost.
            return (
                cal.unmarshal_base
                + cal.unmarshal_per_kb * (size_bytes / 1024.0)
                + cal.handle_base
            )
        if self.is_urgent(payload):
            return 0.0  # interrupt-level: never queues behind work
        base = (
            cal.unmarshal_base
            + cal.unmarshal_per_kb * (size_bytes / 1024.0)
            + cal.handle_base
        )
        verify = self.verification_service(payload, size_bytes)
        if verify > 0.0:
            trace = self.sim.trace
            if trace.wants("crypto_op"):
                body = getattr(payload, "body", payload)
                trace.emit(self.sim.now, "crypto_op", actor=self.name, op="verify",
                           msg=type(body).__name__, cost=verify)
        return base + verify

    def is_urgent(self, payload: Any) -> bool:
        """Heartbeat-class messages handled at interrupt level;
        subclasses widen this for their own keepalive types."""
        return False

    def verification_service(self, payload: Any, size_bytes: int) -> float:
        """Protocol-specific verification cost; subclasses override."""
        return 0.0

    def on_message(self, sender: str, payload: Any) -> None:
        if self._fault_benign or not self._fault.is_crashed(self.sim.now):
            self.handle(sender, payload)

    def handle(self, sender: str, payload: Any) -> None:
        """Protocol logic; subclasses override."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Request pool
    # ------------------------------------------------------------------
    def note_request(self, request: ClientRequest) -> bool:
        """Record a client request; False if it was already known."""
        if request.key in self.pending:
            return False
        self.pending[request.key] = request
        self.request_arrival[request.key] = self.sim.now
        return True
