"""Exception hierarchy for the ``repro`` library.

Every exception raised deliberately by this library derives from
:class:`ReproError` so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError):
    """An experiment or protocol configuration is invalid.

    Raised eagerly at construction time (for example, a Byzantine fault
    budget ``f`` that does not satisfy ``n = 3f + 1``) so that bad set-ups
    never reach the simulator.
    """


class MetricsError(ReproError):
    """Metric extraction from a trace failed.

    Raised by :mod:`repro.harness.metrics` and the measurement probes
    in :mod:`repro.harness.probes` when a trace cannot support the
    requested quantity — no latency samples to aggregate, an empty
    throughput window, a fail-over measurement without a complete
    episode.  Distinct from :class:`ConfigError`: the *set-up* was
    valid, the *measurement* could not be brought to a number.
    """


class SweepError(ReproError):
    """A sweep task could not be brought to a result.

    Raised by the execution backends in :mod:`repro.harness.exec` when
    a task fails inside a worker (the message names the owning
    ``point_id``), when a worker pool loses a future without producing
    a result, or when the socket coordinator exhausts its retries for a
    task whose workers keep dying.
    """


class AnalysisError(ReproError):
    """The static-analysis pass could not run to a verdict.

    Raised by :mod:`repro.analysis` for structural problems — a source
    file that does not parse, an unknown checker code in ``--select``,
    a malformed baseline file — never for ordinary findings, which are
    data (:class:`repro.analysis.base.Finding`), not exceptions.
    """


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly.

    Examples: scheduling an event in the past, running a simulator that
    has already been stopped, or cancelling an event twice.
    """


class CryptoError(ReproError):
    """A cryptographic operation failed structurally.

    This covers malformed keys, unsupported schemes and invalid parameter
    sizes.  A signature that simply fails to verify is *not* an error (it
    is an expected runtime outcome under Byzantine behaviour) and is
    reported through boolean verify results instead.
    """


class VerificationError(ReproError):
    """A message failed an authenticity or well-formedness check.

    Protocol handlers raise this when a message claims an authenticated
    pedigree that does not hold (for example a "doubly-signed" order whose
    second signature does not cover the first).  Handlers convert the
    exception into the protocol-level reaction the paper prescribes
    (drop, or treat as evidence of a value-domain failure).
    """


class ProtocolError(ReproError):
    """An order-protocol invariant was violated.

    These indicate a bug in the protocol implementation (or a test
    deliberately violating preconditions), never expected runtime
    behaviour: for example committing two different digests at the same
    sequence number inside a single correct process.
    """
