"""Fast canonical encoder for signing and digesting.

Byte-identical to the reference encoding in :mod:`repro.crypto.encoding`
(``json.dumps(_jsonable(value), sort_keys=True, separators=(",", ":"))``
— which stays in that module as the oracle the property tests compare
against).  Three ideas make this one fast:

* **single pass** — fragments are emitted straight into an output list
  by an explicit work stack; there is no intermediate ``_jsonable``
  tree and no recursion;
* **per-class plans** — the sorted-key layout of a dataclass (the
  ``{"__dc__": ...`` skeleton) is computed once per class and replayed
  as precomputed literals;
* **identity memo** — the finished fragment of a *frozen* dataclass is
  cached on the instance itself, so the dominant hot-path pattern
  (sign, countersign, then verify the same message object at several
  receivers) encodes each object exactly once.

The memo is only written for frozen dataclasses whose entire subtree is
immutable (scalars, ``bytes``, tuples, and other frozen dataclasses); a
``list``/``dict``/mutable-dataclass anywhere beneath an object keeps
that object uncached, so mutating such a value can never yield stale
bytes.  Structurally equal but distinct objects produce identical
fragments — the cache is an encoding accelerator, never an input to it.
"""

from __future__ import annotations

import dataclasses
from json.encoder import encode_basestring_ascii as _escape
from typing import Any

from repro.errors import CryptoError

#: Instance attribute carrying a frozen dataclass's memoised fragment.
_MEMO_ATTR = "_canon_fragment_"

_INF = float("inf")

# Work-stack opcodes: emit a literal, encode a value, close a memo frame.
_LIT = 0
_VAL = 1
_END = 2

#: Per-class emission plans: ``cls -> (parts, frozen)`` where ``parts``
#: is a tuple of ``(literal, field_name | None)`` — the literal goes out
#: first, then (when named) the field's encoded value.
_PLANS: dict[type, tuple[tuple[tuple[str, str | None], ...], bool]] = {}


def _build_plan(cls: type) -> tuple[tuple[tuple[str, str | None], ...], bool]:
    """Precompute the sorted-key skeleton of one dataclass type."""
    field_names = [f.name for f in dataclasses.fields(cls)]
    keys = sorted(["__dc__", *field_names])
    parts: list[tuple[str, str | None]] = []
    literal = "{"
    for i, key in enumerate(keys):
        if i:
            literal += ","
        literal += _escape(key) + ":"
        if key == "__dc__":
            literal += _escape(cls.__name__)
        else:
            parts.append((literal, key))
            literal = ""
    parts.append((literal + "}", None))
    plan = (tuple(parts), bool(cls.__dataclass_params__.frozen))
    _PLANS[cls] = plan
    return plan


def _float_str(value: float) -> str:
    # Match json.dumps(allow_nan=True): repr for finite floats, the
    # JavaScript constants for the specials.
    if value != value:
        return "NaN"
    if value == _INF:
        return "Infinity"
    if value == -_INF:
        return "-Infinity"
    return float.__repr__(value)


def canonical_fragment(value: Any) -> str:
    """The canonical JSON text of ``value`` (ASCII, sorted keys)."""
    out: list[str] = []
    append = out.append
    stack: list[tuple[int, Any]] = [(_VAL, value)]
    pop = stack.pop
    push = stack.append
    # Open memo frames: [start index in ``out``, still-pure flag, obj].
    frames: list[list] = []

    while stack:
        op, v = pop()
        if op == _LIT:
            append(v)
            continue
        if op == _END:
            start, pure, obj = frames.pop()
            if pure:
                fragment = "".join(out[start:])
                del out[start:]
                append(fragment)
                try:
                    object.__setattr__(obj, _MEMO_ATTR, fragment)
                except (AttributeError, TypeError):
                    pass  # __slots__ etc.: just skip the memo
            elif frames:
                frames[-1][1] = False  # impurity propagates outward
            continue

        t = v.__class__
        if t is int:
            append(int.__repr__(v))
        elif t is str:
            append(_escape(v))
        elif t is bytes:
            append('{"__bytes__":"' + v.hex() + '"}')
        elif t is float:
            append(_float_str(v))
        elif t is bool:
            append("true" if v else "false")
        elif v is None:
            append("null")
        elif t is tuple:
            _push_array(v, push)
        elif t is list:
            if frames:
                frames[-1][1] = False
            _push_array(v, push)
        elif t is dict:
            if frames:
                frames[-1][1] = False
            _push_dict(v, push)
        else:
            fragment = getattr(v, _MEMO_ATTR, None)
            if fragment is not None and type(fragment) is str:
                append(fragment)
            else:
                _encode_other(v, out, push, frames)
    return "".join(out)


def _push_array(items, push) -> None:
    n = len(items)
    if n == 0:
        push((_LIT, "[]"))
        return
    push((_LIT, "]"))
    for i in range(n - 1, -1, -1):
        push((_VAL, items[i]))
        if i:
            push((_LIT, ","))
    push((_LIT, "["))


def _push_dict(mapping: dict, push) -> None:
    converted: dict[str, Any] = {}
    for key, item in mapping.items():
        if not isinstance(key, (str, int)):
            raise CryptoError(f"unencodable dict key type {type(key).__name__}")
        converted[str(key)] = item
    items = sorted(converted.items())
    n = len(items)
    if n == 0:
        push((_LIT, "{}"))
        return
    push((_LIT, "}"))
    for i in range(n - 1, -1, -1):
        key, item = items[i]
        push((_VAL, item))
        literal = _escape(key) + ":"
        if i:
            literal = "," + literal
        push((_LIT, literal))
    push((_LIT, "{"))


def _encode_other(v: Any, out: list, push, frames) -> None:
    """Dataclasses, builtin subclasses, and the unencodable."""
    if dataclasses.is_dataclass(v) and not isinstance(v, type):
        t = v.__class__
        plan = _PLANS.get(t)
        if plan is None:
            plan = _build_plan(t)
        parts, frozen = plan
        if frozen:
            # Flat fast path: a frozen dataclass whose field values are
            # all scalars (the dominant leaf shapes — requests, order
            # entries, acks) is a straight-line join, no work stack or
            # memo frame needed.  Falls through on the first composite
            # field value.
            buf: list[str] = []
            flat = True
            for literal, field_name in parts:
                buf.append(literal)
                if field_name is None:
                    continue
                fv = getattr(v, field_name)
                ft = fv.__class__
                if ft is int:
                    buf.append(int.__repr__(fv))
                elif ft is str:
                    buf.append(_escape(fv))
                elif ft is bytes:
                    buf.append('{"__bytes__":"' + fv.hex() + '"}')
                elif ft is float:
                    buf.append(_float_str(fv))
                elif ft is bool:
                    buf.append("true" if fv else "false")
                elif fv is None:
                    buf.append("null")
                else:
                    flat = False
                    break
            if flat:
                fragment = "".join(buf)
                out.append(fragment)
                try:
                    object.__setattr__(v, _MEMO_ATTR, fragment)
                except (AttributeError, TypeError):
                    pass  # __slots__ etc.: just skip the memo
                return
            push((_END, v))
            frames.append([len(out), True, v])
        elif frames:
            frames[-1][1] = False
        for literal, field_name in reversed(parts):
            if field_name is not None:
                push((_VAL, getattr(v, field_name)))
            push((_LIT, literal))
        return
    # Subclasses of the builtin types take the reference's isinstance
    # order (dataclasses handled above, matching ``_jsonable``).
    if isinstance(v, bytes):
        out.append('{"__bytes__":"' + v.hex() + '"}')
    elif isinstance(v, (list, tuple)):
        if frames and not isinstance(v, tuple):
            frames[-1][1] = False
        _push_array(v, push)
    elif isinstance(v, dict):
        if frames:
            frames[-1][1] = False
        _push_dict(v, push)
    elif isinstance(v, bool):
        out.append("true" if v else "false")
    elif isinstance(v, int):
        out.append(int.__repr__(v))
    elif isinstance(v, float):
        out.append(_float_str(v))
    elif isinstance(v, str):
        out.append(_escape(v))
    else:
        raise CryptoError(f"unencodable value of type {type(v).__name__}")


def encode_canonical(value: Any) -> bytes:
    """Deterministic canonical bytes of ``value`` (the fast path).

    Byte-identical to the reference implementation in
    :mod:`repro.crypto.encoding`; see that module for the format.
    """
    return canonical_fragment(value).encode("ascii")


def memoized_fragment(value: Any) -> str | None:
    """``value``'s cached fragment, or None.

    A non-None return is the encoder's certificate that ``value`` is a
    frozen dataclass over a deeply immutable subtree — callers use it
    to decide whether *their* caches keyed on the object can never go
    stale (see ``repro.crypto.signed``).
    """
    d = getattr(value, "__dict__", None)
    if d is None:
        return None
    fragment = d.get(_MEMO_ATTR)
    return fragment if type(fragment) is str else None


# ----------------------------------------------------------------------
# Fast-crypto identity tokens (cost-model-only mode)
# ----------------------------------------------------------------------
# When enabled (see ``repro.crypto.costs.fast_crypto``), signing and
# digesting stop encoding real canonical bytes and instead use short
# per-object *identity tokens*.  This is sound inside one simulation
# because messages travel by reference: every process that digests or
# verifies a value holds the same object, so token equality coincides
# with the value equality that real digests certify — including the
# *inequality* a WrongDigestFault's corrupted bytes must produce.  CPU
# time is charged from the calibrated cost model either way, so
# simulated metrics are unchanged; only harness wall time moves.

#: Instance attribute carrying an object's fast-mode identity token.
_TOKEN_ATTR = "_canon_token_"

_fast_tokens = False
_token_counter = 0


def fast_tokens_enabled() -> bool:
    """Whether identity tokens currently replace canonical bytes."""
    return _fast_tokens


def set_fast_tokens(enabled: bool) -> None:
    """Flip fast-token mode (prefer ``repro.crypto.costs.fast_crypto``)."""
    global _fast_tokens
    _fast_tokens = bool(enabled)


def identity_token(value: Any) -> bytes:
    """The 8-byte token standing in for ``value``'s canonical bytes.

    Minted on first use (a deterministic counter — simulations are
    single-threaded, so assignment order is a pure function of the
    seed) and pinned on the instance.  Objects that cannot carry the
    attribute fall back to their real canonical bytes, which satisfies
    the same contract: equal input object, equal output bytes.
    """
    global _token_counter
    d = getattr(value, "__dict__", None)
    if d is not None:
        token = d.get(_TOKEN_ATTR)
        if token is not None:
            return token
    _token_counter += 1
    token = _token_counter.to_bytes(8, "big")
    try:
        object.__setattr__(value, _TOKEN_ATTR, token)
    except (AttributeError, TypeError):
        return canonical_fragment(value).encode("ascii")
    return token


def strip_memo(value: Any) -> None:
    """Recursively delete cached fragments from an object graph.

    Benchmark support: measuring the cold encoder requires an actually
    cold object (``copy.deepcopy`` copies the memo attributes along
    with everything else).
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        try:
            object.__delattr__(value, _MEMO_ATTR)
        except AttributeError:
            pass
        for f in dataclasses.fields(value):
            strip_memo(getattr(value, f.name))
    elif isinstance(value, (tuple, list)):
        for item in value:
            strip_memo(item)
    elif isinstance(value, dict):
        for item in value.values():
            strip_memo(item)
