"""Signature providers: the interface protocols sign and verify through.

Two interchangeable implementations:

* :class:`RealSignatureProvider` executes the from-scratch RSA/DSA code
  — used by functional tests and the ``real_crypto`` example, where an
  actual forgery attempt must actually fail;
* :class:`SimulatedSignatureProvider` issues dealer-keyed MAC tokens —
  unforgeable by construction (a Byzantine process does not hold other
  processes' secrets), constant-time to create, and sized like the real
  scheme's signatures so wire-size accounting stays faithful.  The
  *time* cost of signing/verifying is charged separately through
  :class:`~repro.crypto.costs.CryptoCostModel`.

Both satisfy the paper's Assumption 2: a non-faulty process' signature
cannot be forged and tampering is detected.
"""

from __future__ import annotations

import hashlib
import hmac
import random
from dataclasses import dataclass

from repro.crypto import dsa, rsa
from repro.crypto.keys import DsaParameters
from repro.crypto.schemes import CryptoScheme
from repro.errors import ConfigError, CryptoError


@dataclass(frozen=True)
class Signature:
    """One signature: who signed, under which scheme, and the raw value."""

    signer: str
    scheme: str
    value: bytes

    @property
    def size_bytes(self) -> int:
        return len(self.value)


class SignatureProvider:
    """Interface: sign bytes as a named process, verify claimed signatures."""

    scheme: CryptoScheme

    def sign(self, signer: str, data: bytes) -> Signature:
        """Produce ``signer``'s signature over ``data``."""
        raise NotImplementedError

    def verify(self, signature: Signature, data: bytes, claimed_signer: str) -> bool:
        """True iff ``signature`` is ``claimed_signer``'s valid signature
        over ``data`` under this provider's scheme."""
        raise NotImplementedError

    @property
    def signature_bytes(self) -> int:
        """Nominal wire size of one signature."""
        return self.scheme.signature_bytes


class SimulatedSignatureProvider(SignatureProvider):
    """Dealer-keyed MAC tokens standing in for public-key signatures.

    The provider plays the trusted dealer's key store: it holds one
    secret per process and only mints tokens when asked to sign *as*
    that process.  Byzantine actors may emit garbage
    :class:`Signature` objects, but cannot mint a token that verifies
    for a victim's name — matching the unforgeability assumption.
    """

    def __init__(self, scheme: CryptoScheme, names: list[str], seed: int = 0) -> None:
        self.scheme = scheme
        self._secrets = {
            name: hashlib.sha256(f"dealer/{seed}/{name}".encode()).digest()
            for name in names
        }

    def _token(self, name: str, data: bytes) -> bytes:
        secret = self._secrets[name]
        mac = hmac.new(secret, data, hashlib.sha256).digest()
        width = max(self.scheme.signature_bytes, len(mac))
        return (mac * (width // len(mac) + 1))[:width]

    def sign(self, signer: str, data: bytes) -> Signature:
        if signer not in self._secrets:
            raise CryptoError(f"no key provisioned for {signer!r}")
        return Signature(
            signer=signer, scheme=self.scheme.name, value=self._token(signer, data)
        )

    def verify(self, signature: Signature, data: bytes, claimed_signer: str) -> bool:
        if signature.signer != claimed_signer:
            return False
        if signature.scheme != self.scheme.name:
            return False
        if claimed_signer not in self._secrets:
            return False
        return hmac.compare_digest(signature.value, self._token(claimed_signer, data))

    def forge(self, victim: str, data: bytes) -> Signature:
        """What a Byzantine process can do: fabricate a signature object
        *without* the victim's secret.  Guaranteed not to verify."""
        bogus = hashlib.sha256(b"forged:" + data).digest()
        width = max(self.scheme.signature_bytes, len(bogus))
        value = (bogus * (width // len(bogus) + 1))[:width]
        return Signature(signer=victim, scheme=self.scheme.name, value=value)


class RealSignatureProvider(SignatureProvider):
    """Actual RSA/DSA signatures using the from-scratch implementations.

    Key generation is deterministic in ``seed``.  ``key_bits`` may be
    reduced below the scheme's nominal size to keep test key generation
    fast (the scheme's nominal size is still used for wire accounting).
    """

    def __init__(
        self,
        scheme: CryptoScheme,
        names: list[str],
        seed: int = 0,
        key_bits: int | None = None,
        dsa_params: DsaParameters | None = None,
    ) -> None:
        if scheme.signature not in ("rsa", "dsa"):
            raise ConfigError(f"real provider needs rsa or dsa, got {scheme.signature!r}")
        self.scheme = scheme
        bits = key_bits if key_bits is not None else scheme.key_bits
        rng = random.Random(seed)
        self._keys: dict[str, object] = {}
        if scheme.signature == "rsa":
            for name in names:
                self._keys[name] = rsa.generate_keypair(bits, rng)
        else:
            if dsa_params is None:
                dsa_params = default_dsa_parameters(bits)
            self._dsa_params = dsa_params
            for name in names:
                self._keys[name] = dsa.generate_keypair(dsa_params, rng)

    def sign(self, signer: str, data: bytes) -> Signature:
        key = self._keys.get(signer)
        if key is None:
            raise CryptoError(f"no key provisioned for {signer!r}")
        if self.scheme.signature == "rsa":
            value = rsa.sign(key, data, self.scheme.digest)
        else:
            value = dsa.encode_signature(dsa.sign(key, data, self.scheme.digest))
        return Signature(signer=signer, scheme=self.scheme.name, value=value)

    def verify(self, signature: Signature, data: bytes, claimed_signer: str) -> bool:
        if signature.signer != claimed_signer:
            return False
        if signature.scheme != self.scheme.name:
            return False
        key = self._keys.get(claimed_signer)
        if key is None:
            return False
        if self.scheme.signature == "rsa":
            return rsa.verify(key.public, data, signature.value, self.scheme.digest)
        try:
            decoded = dsa.decode_signature(signature.value)
        except CryptoError:
            return False
        return dsa.verify(key.public, data, decoded, self.scheme.digest)


# ----------------------------------------------------------------------
# Precomputed DSA domain parameters
# ----------------------------------------------------------------------
# Generating fresh 1024-bit DSA parameters takes seconds of big-int
# arithmetic; deployments conventionally share fixed domain parameters.
# These were produced once by ``dsa.generate_parameters`` under seed 2006
# and are revalidated (primality of p and q, order of g) by the tests.
_DSA_PARAM_CACHE: dict[int, DsaParameters] = {}


def default_dsa_parameters(l_bits: int = 1024) -> DsaParameters:
    """Shared DSA domain parameters for the given modulus size.

    Parameters for 1024 bits are precomputed; other sizes are generated
    on first use (deterministically) and cached for the process.
    """
    params = _DSA_PARAM_CACHE.get(l_bits)
    if params is None:
        if l_bits == 1024 and _PRECOMPUTED_1024 is not None:
            params = _PRECOMPUTED_1024
        else:
            params = dsa.generate_parameters(
                l_bits, min(160, l_bits // 2), random.Random(2006)
            )
        _DSA_PARAM_CACHE[l_bits] = params
    return params


_PRECOMPUTED_1024: DsaParameters | None = DsaParameters(
    p=int(
        "f28394dfeaab9063d3e53ec64d9e60c93ca6cfa01623e7ca2be366d0e7fe5b49"
        "99c554efeb7566e9ba390c85954c0d7d3cc0e078c0e7ad560269cacb25336494"
        "84eddb66efa9a00810a4c0766c5d291946b1811c20ce067d2a49f1fb02edb849"
        "1b0a5687d86604e044fb53b95ad6a341667689e6c9364c110e8a5db0a05868f9",
        16,
    ),
    q=int("d0f172bba62eb51d8123af640675fdb9ebb0aa05", 16),
    g=int(
        "47df1d046eab7d93da259149bf21e2ba3e07a16f2eef867206dd61afd055657c"
        "8262184ffaa6a0392c80ef4596d4638bc4fcc803fb96916cf8012a3ff77d232f"
        "ac4363b278d09238cf26fb35294dac2ae3ead11b666993d1c42a1b73726beea0"
        "bc665f3ad6d02a4305ec8ef2014298ca87b2650e3c2b454a633815abd7c1f813",
        16,
    ),
)
