"""Canonical byte encoding for signing and digesting.

Signatures must cover a deterministic byte string.  ``canonical_bytes``
maps the message dataclasses (and plain containers) to a stable,
injective-enough encoding: JSON with sorted keys, where dataclasses are
tagged with their class name and ``bytes`` values are hex-tagged.  Two
structurally different messages therefore never encode equally, and the
encoding of a message never changes across runs or platforms.

The actual encoding work is done by the fast single-pass encoder in
:mod:`repro.crypto.canon`; the recursive ``_jsonable`` construction
below is kept as the executable *specification* of the format —
:func:`reference_canonical_bytes` is the oracle the property tests
compare the fast path against, byte for byte.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

from repro.crypto.canon import encode_canonical
from repro.errors import CryptoError


def _jsonable(value: Any) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            field.name: _jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
        return {"__dc__": type(value).__name__, **fields}
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        converted = {}
        for key, item in value.items():
            if not isinstance(key, (str, int)):
                raise CryptoError(f"unencodable dict key type {type(key).__name__}")
            converted[str(key)] = _jsonable(item)
        return converted
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise CryptoError(f"unencodable value of type {type(value).__name__}")


def canonical_bytes(value: Any) -> bytes:
    """Deterministic byte encoding of ``value`` for signing/hashing.

    >>> canonical_bytes({"b": 1, "a": 2})
    b'{"a":2,"b":1}'
    """
    return encode_canonical(value)


def reference_canonical_bytes(value: Any) -> bytes:
    """The from-first-principles encoding (slow, recursive).

    Kept as the oracle: :func:`canonical_bytes` must produce exactly
    these bytes for every encodable value.
    """
    return json.dumps(
        _jsonable(value), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
