"""Signed-message wrapper: single and sequential (doubly-) signatures.

The paper's **doubly-signed** construction (Section 3): signature ``i``
covers the canonical bytes of ``(body, signatures[0..i-1])``, so a
countersignature vouches for both the content and the signature(s)
before it.  The trusted dealer, the order protocols and the BFT
baseline all share this wrapper.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.crypto import canon as _canon
from repro.crypto.canon import identity_token, memoized_fragment
from repro.crypto.encoding import canonical_bytes
from repro.crypto.signing import Signature, SignatureProvider
from repro.errors import VerificationError


@dataclass(frozen=True)
class SignedMessage:
    """A body plus one or more signatures applied in sequence."""

    body: Any
    signatures: tuple[Signature, ...]

    @property
    def signers(self) -> tuple[str, ...]:
        return tuple(sig.signer for sig in self.signatures)

    @property
    def signature_bytes(self) -> int:
        return sum(sig.size_bytes for sig in self.signatures)


def _signing_bytes_uncached(body: Any, prior: tuple[Signature, ...]) -> bytes:
    return canonical_bytes(
        {"body": body, "prior": [(s.signer, s.value) for s in prior]}
    )


# Signing bytes are pure in (body, prior) and the same prefix is
# re-encoded by every sign / countersign / verify along a signature
# chain (a doubly-signed order is verified at each receiver), so a
# bounded cache removes most encodings.  Keyed on object *identity*
# (never equality: Python's `True == 1 == 1.0` would alias entries for
# values that encode differently) and written only when the canonical
# encoder certified the body deeply immutable, so an entry can neither
# alias nor go stale.  Entries hold the keyed objects, keeping their
# ids valid for the entry's lifetime.
_SIGNING_CACHE_MAX = 8192
_signing_cache: OrderedDict[tuple[int, ...], tuple] = OrderedDict()


def signing_bytes(body: Any, prior: tuple[Signature, ...]) -> bytes:
    """Canonical bytes covered by the next signature over ``body``.

    In fast-crypto mode (``repro.crypto.costs.fast_crypto``) the
    canonical encoding is replaced by identity tokens; sign and verify
    both come through here, so chains still verify — and forgeries
    still fail — exactly as with real bytes.
    """
    if _canon._fast_tokens:
        if prior:
            return identity_token(body) + b"".join(identity_token(s) for s in prior)
        return identity_token(body)
    key = (id(body), *(id(s) for s in prior))
    entry = _signing_cache.get(key)
    if entry is not None:
        _signing_cache.move_to_end(key)
        return entry[2]
    data = _signing_bytes_uncached(body, prior)
    if memoized_fragment(body) is not None:
        _signing_cache[key] = (body, tuple(prior), data)
        if len(_signing_cache) > _SIGNING_CACHE_MAX:
            _signing_cache.popitem(last=False)
    return data


def sign_message(provider: SignatureProvider, signer: str, body: Any) -> SignedMessage:
    """Create a singly-signed message."""
    signature = provider.sign(signer, signing_bytes(body, ()))
    return SignedMessage(body=body, signatures=(signature,))


def countersign(
    provider: SignatureProvider, signer: str, message: SignedMessage
) -> SignedMessage:
    """Add the next signature in sequence (endorsement)."""
    signature = provider.sign(signer, signing_bytes(message.body, message.signatures))
    return SignedMessage(body=message.body, signatures=(*message.signatures, signature))


def verify_signed(
    provider: SignatureProvider,
    message: SignedMessage,
    expected_signers: tuple[str, ...] | None = None,
) -> bool:
    """Check every signature in sequence.

    ``expected_signers``, when given, must match the signature chain
    exactly — used to pin a doubly-signed order to a specific pair.
    """
    if expected_signers is not None and message.signers != tuple(expected_signers):
        return False
    for i, signature in enumerate(message.signatures):
        data = signing_bytes(message.body, message.signatures[:i])
        if not provider.verify(signature, data, signature.signer):
            return False
    return True


def require_signed(
    provider: SignatureProvider,
    message: SignedMessage,
    expected_signers: tuple[str, ...] | None = None,
) -> None:
    """Raise :class:`VerificationError` unless the chain verifies."""
    if not verify_signed(provider, message, expected_signers):
        raise VerificationError(
            f"signature chain {message.signers} failed verification"
        )
