"""The trusted dealer of Assumption 2.

"We assume that a trusted dealer initializes the system and the nodes
with cryptographic keys and hash functions."  The dealer provisions a
:class:`~repro.crypto.signing.SignatureProvider` covering every process
and pre-signs the **fail-signal blanks**: Section 3.2 has each paired
process supplied, at initialisation, with a fail-signal message already
signed by its counterpart, so that emitting a doubly-signed fail-signal
requires only the local signature.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.schemes import CryptoScheme
from repro.crypto.signed import signing_bytes
from repro.crypto.signing import (
    RealSignatureProvider,
    Signature,
    SignatureProvider,
    SimulatedSignatureProvider,
)
from repro.errors import ConfigError


@dataclass(frozen=True)
class FailSignalBody:
    """Content of a fail-signal blank (pre-signed by the dealer).

    ``first_signer`` is the process whose signature the dealer applied;
    the *counterpart* holds the blank and later double-signs it to emit
    the pair's fail-signal.
    """

    pair: int
    first_signer: str


def fail_signal_body(pair_index: int, first_signer: str) -> FailSignalBody:
    """Canonical content of a pre-signed fail-signal blank."""
    return FailSignalBody(pair=pair_index, first_signer=first_signer)


class TrustedDealer:
    """Provisions keys and pre-signed fail-signal blanks.

    Parameters
    ----------
    scheme:
        Crypto configuration for the deployment.
    mode:
        ``"simulated"`` (dealer-keyed MACs; the default for performance
        studies) or ``"real"`` (actual RSA/DSA).
    seed:
        Determinises key material.
    key_bits:
        Optional override of the real-mode key size (small keys make
        functional tests fast).
    """

    def __init__(
        self,
        scheme: CryptoScheme,
        mode: str = "simulated",
        seed: int = 0,
        key_bits: int | None = None,
    ) -> None:
        if mode not in ("simulated", "real"):
            raise ConfigError(f"unknown dealer mode {mode!r}")
        if mode == "real" and scheme.signature == "none":
            raise ConfigError("the plain scheme has no real signatures")
        self.scheme = scheme
        self.mode = mode
        self.seed = seed
        self.key_bits = key_bits

    def provision(self, names: list[str]) -> SignatureProvider:
        """Create the signature provider covering ``names``."""
        if len(set(names)) != len(names):
            raise ConfigError("duplicate process names in provisioning list")
        if self.mode == "simulated":
            return SimulatedSignatureProvider(self.scheme, names, seed=self.seed)
        return RealSignatureProvider(
            self.scheme, names, seed=self.seed, key_bits=self.key_bits
        )

    def issue_fail_signal_blanks(
        self, provider: SignatureProvider, pair_index: int, first: str, second: str
    ) -> dict[str, tuple[FailSignalBody, Signature]]:
        """Pre-signed fail-signal blanks for one pair.

        Returns ``{holder: (body, counterpart_signature)}`` — each pair
        member holds a blank signed by the *other* member.
        """
        blanks: dict[str, tuple[FailSignalBody, Signature]] = {}
        for holder, signer in ((first, second), (second, first)):
            body = fail_signal_body(pair_index, signer)
            signature = provider.sign(signer, signing_bytes(body, ()))
            blanks[holder] = (body, signature)
        return blanks
