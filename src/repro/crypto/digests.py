"""Digest registry.

``digest(name, data)`` dispatches to :mod:`hashlib` by default: the
simulator charges digest *time* through the calibrated cost model
(:mod:`repro.crypto.costs`), so the backend computing the digest value
only has to be bit-identical and fast — a profile of a representative
sweep showed the from-scratch MD5 alone eating ~16% of harness wall
time while contributing nothing to any simulated metric.

The from-scratch implementations (:mod:`repro.crypto.md5`,
:mod:`repro.crypto.sha1`) remain the *reference*: they are what a
deployment without OpenSSL would run, the equivalence tests exercise
them against hashlib bit for bit, and ``use_stdlib=False`` selects
them explicitly.
"""

from __future__ import annotations

import hashlib

from repro.crypto.md5 import md5
from repro.crypto.sha1 import sha1
from repro.errors import CryptoError

_SIZES = {"md5": 16, "sha1": 20, "none": 8}


def digest(name: str, data: bytes, use_stdlib: bool = True) -> bytes:
    """Compute the named digest of ``data``.

    ``use_stdlib=False`` forces the from-scratch implementations
    (bit-identical, ~50x slower — the equivalence tests run both).

    ``"none"`` is the degenerate digest used by the crash-tolerant (CT)
    baseline, which the paper runs without cryptographic techniques: a
    truncated non-cryptographic fingerprint that still lets replicas
    match requests to orders.
    """
    if name == "md5":
        if use_stdlib:
            return hashlib.md5(data).digest()
        return md5(data)
    if name == "sha1":
        if use_stdlib:
            return hashlib.sha1(data).digest()
        return sha1(data)
    if name == "none":
        # Non-cryptographic: good enough to identify requests among
        # non-malicious peers, which is all CT assumes.
        return hashlib.blake2b(data, digest_size=8).digest()
    raise CryptoError(f"unknown digest {name!r}")


def digest_size(name: str) -> int:
    """Digest length in bytes for wire-size accounting."""
    try:
        return _SIZES[name]
    except KeyError:
        raise CryptoError(f"unknown digest {name!r}") from None
