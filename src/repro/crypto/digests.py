"""Digest registry.

``digest(name, data)`` dispatches to the from-scratch implementations
(:mod:`repro.crypto.md5`, :mod:`repro.crypto.sha1`).  Passing
``use_stdlib=True`` switches to :mod:`hashlib` — bit-identical output
(tested), useful when hashing megabytes in property tests.
"""

from __future__ import annotations

import hashlib

from repro.crypto.md5 import md5
from repro.crypto.sha1 import sha1
from repro.errors import CryptoError

_SIZES = {"md5": 16, "sha1": 20, "none": 8}


def digest(name: str, data: bytes, use_stdlib: bool = False) -> bytes:
    """Compute the named digest of ``data``.

    ``"none"`` is the degenerate digest used by the crash-tolerant (CT)
    baseline, which the paper runs without cryptographic techniques: a
    truncated non-cryptographic fingerprint that still lets replicas
    match requests to orders.
    """
    if name == "md5":
        if use_stdlib:
            return hashlib.md5(data).digest()
        return md5(data)
    if name == "sha1":
        if use_stdlib:
            return hashlib.sha1(data).digest()
        return sha1(data)
    if name == "none":
        # Non-cryptographic: good enough to identify requests among
        # non-malicious peers, which is all CT assumes.
        return hashlib.blake2b(data, digest_size=8).digest()
    raise CryptoError(f"unknown digest {name!r}")


def digest_size(name: str) -> int:
    """Digest length in bytes for wire-size accounting."""
    try:
        return _SIZES[name]
    except KeyError:
        raise CryptoError(f"unknown digest {name!r}") from None
