"""Number-theoretic primitives for RSA and DSA.

Pure-Python, no external dependencies.  Primality testing uses
deterministic Miller–Rabin bases for small inputs and random witnesses
(from a caller-supplied stream) beyond that, so key generation remains
reproducible under a fixed seed.
"""

from __future__ import annotations

import random

from repro.errors import CryptoError

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
)

# Deterministic witness set: correct for every n < 3,317,044,064,679,887,385,961,981
# (Sorenson & Webster 2015).
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
_DETERMINISTIC_LIMIT = 3_317_044_064_679_887_385_961_981


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: returns ``(g, x, y)`` with ``a*x + b*y == g``.

    >>> egcd(240, 46)
    (2, -9, 47)
    """
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
    return old_r, old_x, old_y


def modinv(a: int, m: int) -> int:
    """Multiplicative inverse of ``a`` modulo ``m``.

    >>> modinv(3, 11)
    4
    """
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise CryptoError(f"{a} has no inverse modulo {m} (gcd={g})")
    return x % m


def _miller_rabin_round(n: int, d: int, r: int, a: int) -> bool:
    """One Miller–Rabin round; True means "possibly prime"."""
    x = pow(a, d, n)
    if x in (1, n - 1):
        return True
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return True
    return False


def is_probable_prime(n: int, rng: random.Random | None = None, rounds: int = 24) -> bool:
    """Miller–Rabin primality test.

    Deterministic (and exact) below ``_DETERMINISTIC_LIMIT``; otherwise
    runs the deterministic witnesses plus ``rounds`` random ones.

    >>> is_probable_prime(2**127 - 1)
    True
    >>> is_probable_prime(2**127 - 3)
    False
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _DETERMINISTIC_WITNESSES:
        if not _miller_rabin_round(n, d, r, a):
            return False
    if n < _DETERMINISTIC_LIMIT:
        return True
    if rng is None:
        rng = random.Random(n & 0xFFFFFFFF)  # still deterministic per n
    for _ in range(rounds):
        a = rng.randrange(2, n - 2)
        if not _miller_rabin_round(n, d, r, a):
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """Random prime with exactly ``bits`` bits (top two bits set).

    Forcing the top two bits guarantees that the product of two such
    primes has exactly twice as many bits, which RSA key generation
    relies on.
    """
    if bits < 8:
        raise CryptoError(f"prime size too small: {bits} bits")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_probable_prime(candidate, rng):
            return candidate


def generate_prime_in_range(
    lo: int, hi: int, rng: random.Random, max_tries: int = 200_000
) -> int:
    """Random prime in ``[lo, hi)``."""
    if hi <= lo:
        raise CryptoError(f"empty range [{lo}, {hi})")
    for _ in range(max_tries):
        candidate = rng.randrange(lo, hi) | 1
        if is_probable_prime(candidate, rng):
            return candidate
    raise CryptoError(f"no prime found in [{lo}, {hi}) after {max_tries} tries")
