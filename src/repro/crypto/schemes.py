"""Crypto scheme descriptors: the paper's three configurations plus CT's none.

Section 5 of the paper evaluates three combinations of digest and
signature scheme:

* MD5 digests with RSA signatures, 1024-bit keys;
* MD5 digests with RSA signatures, 1536-bit keys;
* SHA-1 digests with DSA signatures, 1024-bit keys.

The crash-tolerant baseline (CT) runs with no cryptography at all,
represented by :data:`PLAIN`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CryptoError


@dataclass(frozen=True)
class CryptoScheme:
    """A digest + signature configuration.

    ``signature_bytes`` is the wire size of one signature and feeds the
    message-size accounting (RSA signatures are as long as the modulus;
    DSA signatures are two 160-bit integers).
    """

    name: str
    digest: str
    signature: str
    key_bits: int

    @property
    def signature_bytes(self) -> int:
        if self.signature == "rsa":
            return self.key_bits // 8
        if self.signature == "dsa":
            return 40
        if self.signature == "none":
            return 0
        raise CryptoError(f"unknown signature algorithm {self.signature!r}")


MD5_RSA_1024 = CryptoScheme("md5-rsa1024", "md5", "rsa", 1024)
MD5_RSA_1536 = CryptoScheme("md5-rsa1536", "md5", "rsa", 1536)
SHA1_DSA_1024 = CryptoScheme("sha1-dsa1024", "sha1", "dsa", 1024)
PLAIN = CryptoScheme("plain", "none", "none", 0)

#: The three schemes of Figures 4-6, in the paper's presentation order.
PAPER_SCHEMES = (MD5_RSA_1024, MD5_RSA_1536, SHA1_DSA_1024)

_BY_NAME = {s.name: s for s in (*PAPER_SCHEMES, PLAIN)}


def scheme_by_name(name: str) -> CryptoScheme:
    """Look up a scheme by its registry name.

    >>> scheme_by_name("md5-rsa1024").key_bits
    1024
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        raise CryptoError(
            f"unknown scheme {name!r}; known: {sorted(_BY_NAME)}"
        ) from None
