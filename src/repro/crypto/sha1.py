"""SHA-1 message digest, implemented from FIPS 180-1.

The paper pairs SHA-1 with DSA for its third crypto configuration.
Verified against :mod:`hashlib` by unit and property tests.
"""

from __future__ import annotations

import struct

_MASK = 0xFFFFFFFF

_INIT = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)


def _rotl(x: int, c: int) -> int:
    return ((x << c) | (x >> (32 - c))) & _MASK


def _pad(length: int) -> bytes:
    pad_len = (56 - (length + 1)) % 64
    return b"\x80" + b"\x00" * pad_len + struct.pack(">Q", 8 * length)


def _compress(state: tuple[int, ...], block: bytes) -> tuple[int, ...]:
    w = list(struct.unpack(">16I", block))
    for i in range(16, 80):
        w.append(_rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1))
    a, b, c, d, e = state
    for i in range(80):
        if i < 20:
            f = (b & c) | (~b & d & _MASK)
            k = 0x5A827999
        elif i < 40:
            f = b ^ c ^ d
            k = 0x6ED9EBA1
        elif i < 60:
            f = (b & c) | (b & d) | (c & d)
            k = 0x8F1BBCDC
        else:
            f = b ^ c ^ d
            k = 0xCA62C1D6
        temp = (_rotl(a, 5) + (f & _MASK) + e + k + w[i]) & _MASK
        e, d, c, b, a = d, c, _rotl(b, 30), a, temp
    return tuple((s + v) & _MASK for s, v in zip(state, (a, b, c, d, e)))


def sha1(data: bytes) -> bytes:
    """20-byte SHA-1 digest of ``data``.

    >>> sha1(b"abc").hex()
    'a9993e364706816aba3e25717850c26c9cd0d89d'
    """
    message = bytes(data) + _pad(len(data))
    state = _INIT
    for offset in range(0, len(message), 64):
        state = _compress(state, message[offset : offset + 64])
    return struct.pack(">5I", *state)


def sha1_hex(data: bytes) -> str:
    """Hex-encoded SHA-1 digest."""
    return sha1(data).hex()
