"""MD5 message digest, implemented from RFC 1321.

The paper pairs MD5 with RSA for two of its three evaluated crypto
configurations.  This implementation is pure Python and is verified
against :mod:`hashlib` by unit and property tests.  (MD5 is long broken
for collision resistance; we reproduce the paper's 2006 configuration,
we do not endorse it.)
"""

from __future__ import annotations

import math
import struct

_MASK = 0xFFFFFFFF

_SHIFTS = (
    [7, 12, 17, 22] * 4
    + [5, 9, 14, 20] * 4
    + [4, 11, 16, 23] * 4
    + [6, 10, 15, 21] * 4
)
_SINES = [int(abs(math.sin(i + 1)) * 2**32) & _MASK for i in range(64)]

_INIT = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476)


def _rotl(x: int, c: int) -> int:
    return ((x << c) | (x >> (32 - c))) & _MASK


def _pad(length: int) -> bytes:
    """MD5 padding for a message of ``length`` bytes."""
    pad_len = (56 - (length + 1)) % 64
    return (
        b"\x80" + b"\x00" * pad_len + struct.pack("<Q", (8 * length) & 0xFFFFFFFFFFFFFFFF)
    )


def _compress(state: tuple[int, int, int, int], block: bytes) -> tuple[int, int, int, int]:
    m = struct.unpack("<16I", block)
    a, b, c, d = state
    for i in range(64):
        if i < 16:
            f = (b & c) | (~b & d)
            g = i
        elif i < 32:
            f = (d & b) | (~d & c)
            g = (5 * i + 1) % 16
        elif i < 48:
            f = b ^ c ^ d
            g = (3 * i + 5) % 16
        else:
            f = c ^ (b | (~d & _MASK))
            g = (7 * i) % 16
        f = (f + a + _SINES[i] + m[g]) & _MASK
        a, d, c = d, c, b
        b = (b + _rotl(f, _SHIFTS[i])) & _MASK
    return (
        (state[0] + a) & _MASK,
        (state[1] + b) & _MASK,
        (state[2] + c) & _MASK,
        (state[3] + d) & _MASK,
    )


def md5(data: bytes) -> bytes:
    """16-byte MD5 digest of ``data``.

    >>> md5(b"abc").hex()
    '900150983cd24fb0d6963f7d28e17f72'
    """
    message = bytes(data) + _pad(len(data))
    state = _INIT
    for offset in range(0, len(message), 64):
        state = _compress(state, message[offset : offset + 64])
    return struct.pack("<4I", *state)


def md5_hex(data: bytes) -> str:
    """Hex-encoded MD5 digest."""
    return md5(data).hex()
