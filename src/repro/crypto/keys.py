"""Key containers shared by the RSA and DSA modules."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RsaPublicKey:
    """RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()


@dataclass(frozen=True)
class RsaKeyPair:
    """RSA key pair with CRT acceleration fields.

    ``dp = d mod (p-1)``, ``dq = d mod (q-1)``, ``qinv = q^-1 mod p``.
    """

    public: RsaPublicKey
    d: int
    p: int
    q: int
    dp: int
    dq: int
    qinv: int


@dataclass(frozen=True)
class DsaParameters:
    """DSA domain parameters ``(p, q, g)``; shared across a deployment."""

    p: int
    q: int
    g: int

    @property
    def bits(self) -> int:
        return self.p.bit_length()


@dataclass(frozen=True)
class DsaPublicKey:
    """DSA public key: domain parameters plus ``y = g^x mod p``."""

    params: DsaParameters
    y: int


@dataclass(frozen=True)
class DsaKeyPair:
    """DSA key pair (private exponent ``x``)."""

    public: DsaPublicKey
    x: int
