"""Calibrated CPU costs of cryptographic operations.

The simulator does not execute 1024-bit RSA for every simulated message
(pure-Python big-int math would make parameter sweeps take hours);
instead protocol actors charge their node's CPU with the *time the
paper's testbed would have spent*.  The ``p4_2006`` profile encodes the
relative costs that drive the paper's findings:

* RSA and DSA **signing** times are similar (stated explicitly in
  Section 5);
* RSA **verification** is much faster than signing (small public
  exponent), while DSA verification is *slower* than DSA signing (two
  modular exponentiations) — the source of the widening SC/BFT gap in
  Figure 4(c);
* RSA-1536 costs roughly ``(1536/1024)^3 ≈ 3.4×`` RSA-1024 for private-
  key operations (cubic in modulus size), and about double for
  public-key operations.

Absolute values approximate a 2.8 GHz Pentium IV running Java 1.5 JCE
(the paper's machines); they are deliberately exposed as plain data so
studies can re-calibrate.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.crypto import canon as _canon
from repro.crypto.schemes import CryptoScheme
from repro.errors import ConfigError


def fast_crypto_enabled() -> bool:
    """Whether cost-model-only ("fast crypto") mode is active."""
    return _canon.fast_tokens_enabled()


@contextmanager
def fast_crypto(enabled: bool = True) -> Iterator[None]:
    """Run a block in cost-model-only crypto mode (opt-in).

    Inside the block, signing and digesting skip byte-level canonical
    encoding and hashing in favour of per-object identity tokens (see
    :mod:`repro.crypto.canon`).  CPU *costs* are still charged from
    :class:`OpCosts` — the mode trades the harness's wall-clock work,
    never the simulated timings — so metrics are identical whenever no
    consumer reads actual digest/signature bytes.  Probes declare that
    need via ``needs_digests``; the harness falls back to default mode
    automatically when such a probe is selected.

    The previous mode is restored on exit, so nesting is safe.
    """
    previous = _canon.fast_tokens_enabled()
    _canon.set_fast_tokens(enabled)
    try:
        yield
    finally:
        _canon.set_fast_tokens(previous)


@dataclass(frozen=True)
class OpCosts:
    """Per-operation CPU seconds for one crypto scheme."""

    sign: float
    verify: float
    digest_base: float
    digest_per_kb: float

    def digest_cost(self, size_bytes: int) -> float:
        """Cost of digesting ``size_bytes`` of input."""
        return self.digest_base + self.digest_per_kb * (size_bytes / 1024.0)


_ZERO = OpCosts(sign=0.0, verify=0.0, digest_base=0.0, digest_per_kb=0.0)


class CryptoCostModel:
    """Maps scheme names to :class:`OpCosts`.

    >>> model = CryptoCostModel.p4_2006()
    >>> model.costs("md5-rsa1024").verify < model.costs("sha1-dsa1024").verify
    True
    """

    def __init__(self, table: dict[str, OpCosts]) -> None:
        self._table = dict(table)

    def costs(self, scheme_name: str) -> OpCosts:
        """Costs for a scheme; the no-crypto scheme is always free."""
        if scheme_name == "plain":
            return _ZERO
        try:
            return self._table[scheme_name]
        except KeyError:
            raise ConfigError(
                f"no cost calibration for scheme {scheme_name!r}"
            ) from None

    def for_scheme(self, scheme: CryptoScheme) -> OpCosts:
        """Convenience accessor taking a scheme object."""
        return self.costs(scheme.name)

    @classmethod
    def p4_2006(cls) -> "CryptoCostModel":
        """Calibration for the paper's testbed (P4 2.8 GHz, Java 1.5)."""
        return cls(
            {
                # RSA-1024: private op ~7.5 ms; public op (e=65537) ~1 ms
                # under 2006-era Java BigInteger arithmetic.
                "md5-rsa1024": OpCosts(
                    sign=7.5e-3, verify=1.0e-3, digest_base=4e-6, digest_per_kb=9e-6
                ),
                # RSA-1536: ~3.4x private, ~2x public.
                "md5-rsa1536": OpCosts(
                    sign=25.0e-3, verify=1.8e-3, digest_base=4e-6, digest_per_kb=9e-6
                ),
                # DSA-1024: signing comparable to RSA-1024 signing; verify
                # needs two modular exponentiations (vs RSA's one with a
                # small public exponent), so it is several times slower
                # than RSA verification — the asymmetry behind Figure 4(c).
                "sha1-dsa1024": OpCosts(
                    sign=6.0e-3, verify=6.5e-3, digest_base=5e-6, digest_per_kb=11e-6
                ),
            }
        )

    @classmethod
    def free(cls) -> "CryptoCostModel":
        """All operations cost zero (functional tests, CT baseline)."""
        return cls(
            {
                "md5-rsa1024": _ZERO,
                "md5-rsa1536": _ZERO,
                "sha1-dsa1024": _ZERO,
            }
        )
