"""Cryptographic substrate, built from scratch.

The paper's protocols lean on three cryptographic ingredients
(Assumption 2): unforgeable signatures, collision-resistant digests and
a trusted dealer that provisions keys.  This package implements all of
them in pure Python:

* :mod:`~repro.crypto.numtheory` — Miller–Rabin, modular inverses,
  prime generation;
* :mod:`~repro.crypto.md5` / :mod:`~repro.crypto.sha1` — the two digest
  functions the paper evaluates, verified bit-for-bit against
  ``hashlib`` in the test suite;
* :mod:`~repro.crypto.rsa` / :mod:`~repro.crypto.dsa` — the two
  signature schemes (RSA-1024/1536, DSA-1024);
* :mod:`~repro.crypto.signing` — the provider interface protocols use,
  with a *real* provider (actual RSA/DSA) and a *simulated* provider
  (dealer-keyed MACs) that is unforgeable by construction and fast
  enough for large performance sweeps;
* :mod:`~repro.crypto.costs` — the calibrated per-operation CPU cost
  model charged inside the simulator (RSA sign ≈ DSA sign, DSA verify
  ≫ RSA verify — the asymmetry behind Figure 4(c));
* :mod:`~repro.crypto.dealer` — the trusted dealer of Assumption 2.
"""

from repro.crypto.canon import encode_canonical
from repro.crypto.costs import CryptoCostModel, OpCosts
from repro.crypto.dealer import TrustedDealer
from repro.crypto.digests import digest, digest_size
from repro.crypto.encoding import canonical_bytes, reference_canonical_bytes
from repro.crypto.schemes import (
    MD5_RSA_1024,
    MD5_RSA_1536,
    PLAIN,
    SHA1_DSA_1024,
    CryptoScheme,
    scheme_by_name,
)
from repro.crypto.signing import (
    RealSignatureProvider,
    Signature,
    SignatureProvider,
    SimulatedSignatureProvider,
)

__all__ = [
    "CryptoCostModel",
    "CryptoScheme",
    "MD5_RSA_1024",
    "MD5_RSA_1536",
    "OpCosts",
    "PLAIN",
    "RealSignatureProvider",
    "SHA1_DSA_1024",
    "Signature",
    "SignatureProvider",
    "SimulatedSignatureProvider",
    "TrustedDealer",
    "canonical_bytes",
    "digest",
    "digest_size",
    "encode_canonical",
    "reference_canonical_bytes",
    "scheme_by_name",
]
