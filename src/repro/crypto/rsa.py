"""RSA signatures (RSASSA-PKCS1-v1_5 style), from scratch.

Key generation, signing with CRT acceleration, and verification.  The
padding follows EMSA-PKCS1-v1_5 with the standard DER ``DigestInfo``
prefixes for MD5 and SHA-1, so signatures have the same structure (and
wire size) as the Java JCE signatures the paper's testbed produced.
"""

from __future__ import annotations

import random

from repro.crypto.digests import digest
from repro.crypto.keys import RsaKeyPair, RsaPublicKey
from repro.crypto.numtheory import generate_prime, modinv
from repro.errors import CryptoError

PUBLIC_EXPONENT = 65537

# DER DigestInfo prefixes (RFC 8017, section 9.2 notes).
_DIGEST_INFO_PREFIX = {
    "md5": bytes.fromhex("3020300c06082a864886f70d020505000410"),
    "sha1": bytes.fromhex("3021300906052b0e03021a05000414"),
}


def generate_keypair(bits: int, rng: random.Random) -> RsaKeyPair:
    """Generate an RSA key pair with an exactly ``bits``-bit modulus.

    Deterministic given the ``rng`` state, so test fixtures and the
    trusted dealer can reproduce keys from a seed.
    """
    if bits < 128:
        raise CryptoError(f"modulus too small: {bits} bits")
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        if phi % PUBLIC_EXPONENT == 0:
            continue
        d = modinv(PUBLIC_EXPONENT, phi)
        return RsaKeyPair(
            public=RsaPublicKey(n=n, e=PUBLIC_EXPONENT),
            d=d,
            p=p,
            q=q,
            dp=d % (p - 1),
            dq=d % (q - 1),
            qinv=modinv(q, p),
        )


def _emsa_pkcs1_v15(data: bytes, digest_name: str, em_len: int) -> bytes:
    """EMSA-PKCS1-v1_5 encoding of the digest of ``data``."""
    try:
        prefix = _DIGEST_INFO_PREFIX[digest_name]
    except KeyError:
        raise CryptoError(f"RSA signing does not support digest {digest_name!r}") from None
    t = prefix + digest(digest_name, data)
    if em_len < len(t) + 11:
        raise CryptoError(f"modulus too small for {digest_name} DigestInfo")
    padding = b"\xff" * (em_len - len(t) - 3)
    return b"\x00\x01" + padding + b"\x00" + t


def sign(key: RsaKeyPair, data: bytes, digest_name: str) -> bytes:
    """Sign ``data``; returns a signature as long as the modulus."""
    em_len = (key.public.n.bit_length() + 7) // 8
    em = int.from_bytes(_emsa_pkcs1_v15(data, digest_name, em_len), "big")
    # CRT: two half-size exponentiations instead of one full-size.
    s1 = pow(em % key.p, key.dp, key.p)
    s2 = pow(em % key.q, key.dq, key.q)
    h = (key.qinv * (s1 - s2)) % key.p
    s = s2 + h * key.q
    return s.to_bytes(em_len, "big")


def verify(public: RsaPublicKey, data: bytes, signature: bytes, digest_name: str) -> bool:
    """Check a signature.  Returns False on any mismatch (never raises
    for bad signatures; raises :class:`CryptoError` only for malformed
    inputs such as an oversized signature)."""
    em_len = (public.n.bit_length() + 7) // 8
    if len(signature) != em_len:
        return False
    s = int.from_bytes(signature, "big")
    if s >= public.n:
        return False
    em = pow(s, public.e, public.n).to_bytes(em_len, "big")
    try:
        expected = _emsa_pkcs1_v15(data, digest_name, em_len)
    except CryptoError:
        return False
    return em == expected
