"""DSA signatures (FIPS 186 style), from scratch.

Domain-parameter generation, key generation, deterministic-nonce
signing and verification.  The nonce ``k`` is derived from the private
key and the message digest (in the spirit of RFC 6979) so that signing
is reproducible and never reuses a nonce across distinct messages — the
classic DSA foot-gun.

Verification costs two modular exponentiations against signing's one;
that asymmetry (slow verify, comparable sign) is exactly why the paper
concludes "DSA is generally not suited for Byzantine order protocols".
"""

from __future__ import annotations

import hashlib
import random

from repro.crypto.digests import digest
from repro.crypto.keys import DsaKeyPair, DsaParameters, DsaPublicKey
from repro.crypto.numtheory import generate_prime, is_probable_prime, modinv
from repro.errors import CryptoError


def generate_parameters(l_bits: int, n_bits: int, rng: random.Random) -> DsaParameters:
    """Generate DSA domain parameters with ``|p| = l_bits, |q| = n_bits``.

    Draws random ``l_bits`` candidates and rounds them down onto the
    arithmetic progression ``p ≡ 1 (mod 2q)`` until a prime appears.
    """
    if n_bits >= l_bits:
        raise CryptoError(f"need n_bits < l_bits, got {n_bits} >= {l_bits}")
    q = generate_prime(n_bits, rng)
    two_q = 2 * q
    while True:
        x = rng.getrandbits(l_bits) | (1 << (l_bits - 1))
        p = x - (x % two_q) + 1
        if p.bit_length() != l_bits:
            continue
        if not is_probable_prime(p, rng):
            continue
        exponent = (p - 1) // q
        for h in range(2, 100):
            g = pow(h, exponent, p)
            if g > 1:
                return DsaParameters(p=p, q=q, g=g)


def generate_keypair(params: DsaParameters, rng: random.Random) -> DsaKeyPair:
    """Generate a DSA key pair under the given domain parameters."""
    x = rng.randrange(1, params.q)
    y = pow(params.g, x, params.p)
    return DsaKeyPair(public=DsaPublicKey(params=params, y=y), x=x)


def _digest_int(data: bytes, digest_name: str, q: int) -> int:
    """Leftmost-bits digest of ``data`` reduced into Z_q (FIPS 186)."""
    h = digest(digest_name, data)
    value = int.from_bytes(h, "big")
    excess = value.bit_length() - q.bit_length()
    if excess > 0:
        value >>= excess
    return value


def _derive_nonce(key: DsaKeyPair, h: int) -> int:
    """Deterministic per-(key, message) nonce in ``[1, q-1]``."""
    q = key.public.params.q
    counter = 0
    while True:
        material = (
            key.x.to_bytes((key.x.bit_length() + 7) // 8 or 1, "big")
            + h.to_bytes((h.bit_length() + 7) // 8 or 1, "big")
            + counter.to_bytes(4, "big")
        )
        k = int.from_bytes(hashlib.sha256(material).digest(), "big") % q
        if 1 <= k <= q - 1:
            return k
        counter += 1


def sign(key: DsaKeyPair, data: bytes, digest_name: str) -> tuple[int, int]:
    """Sign ``data``; returns the pair ``(r, s)``."""
    params = key.public.params
    h = _digest_int(data, digest_name, params.q)
    k = _derive_nonce(key, h)
    while True:
        r = pow(params.g, k, params.p) % params.q
        if r == 0:
            k = _derive_nonce(key, h + 1)
            continue
        s = (modinv(k, params.q) * (h + key.x * r)) % params.q
        if s == 0:
            k = _derive_nonce(key, h + 2)
            continue
        return r, s


def verify(
    public: DsaPublicKey, data: bytes, signature: tuple[int, int], digest_name: str
) -> bool:
    """Check a signature pair ``(r, s)``; False on any mismatch."""
    params = public.params
    r, s = signature
    if not (0 < r < params.q and 0 < s < params.q):
        return False
    h = _digest_int(data, digest_name, params.q)
    w = modinv(s, params.q)
    u1 = (h * w) % params.q
    u2 = (r * w) % params.q
    v = ((pow(params.g, u1, params.p) * pow(public.y, u2, params.p)) % params.p) % params.q
    return v == r


def encode_signature(signature: tuple[int, int]) -> bytes:
    """Fixed-width wire encoding (two 160-bit integers)."""
    r, s = signature
    return r.to_bytes(20, "big") + s.to_bytes(20, "big")


def decode_signature(blob: bytes) -> tuple[int, int]:
    """Inverse of :func:`encode_signature`."""
    if len(blob) != 40:
        raise CryptoError(f"DSA signature must be 40 bytes, got {len(blob)}")
    return int.from_bytes(blob[:20], "big"), int.from_bytes(blob[20:], "big")
