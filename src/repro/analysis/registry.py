"""The invariant-checker registry.

Maps checker codes (``RPR001``...) to
:class:`~repro.analysis.base.Checker` *classes* (instances are
per-run), mirroring the protocol, executor and probe registries.  The
five built-in invariants register on package import; a new invariant
registers with :func:`register` and is immediately selectable from
``repro lint --select`` and listed by ``repro lint --list``.
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.analysis.base import Checker
from repro.errors import AnalysisError

_REGISTRY: dict[str, type[Checker]] = {}

_CODE_RE = re.compile(r"^[A-Z]{2,8}[0-9]{3}$")


def register(checker: type[Checker], *, replace: bool = False) -> type[Checker]:
    """Add a checker class under its ``code``; returns it, so it can be
    used as a decorator.  Duplicate codes are an error unless
    ``replace=True`` (shadowing a builtin in tests)."""
    if not checker.code or not _CODE_RE.match(checker.code):
        raise AnalysisError(
            f"checker class {checker!r} needs a code like 'RPR001'"
        )
    if checker.code in _REGISTRY and not replace:
        raise AnalysisError(
            f"checker {checker.code!r} is already registered; "
            f"pass replace=True to override"
        )
    _REGISTRY[checker.code] = checker
    return checker


def unregister(code: str) -> None:
    """Remove a checker (primarily for test teardown)."""
    _REGISTRY.pop(code, None)


def get(code: str) -> type[Checker]:
    """Look up a checker class by code."""
    try:
        return _REGISTRY[code]
    except KeyError:
        raise AnalysisError(
            f"unknown checker {code!r}; known: {names()}"
        ) from None


def names() -> tuple[str, ...]:
    """Registered checker codes, in registration order."""
    return tuple(_REGISTRY)


def all_checkers() -> tuple[type[Checker], ...]:
    """Every registered checker class, in registration order."""
    return tuple(_REGISTRY.values())


def validate_codes(selected: Iterable[str]) -> tuple[str, ...]:
    """Check every code resolves and none repeats; returns the tuple."""
    selected = tuple(selected)
    duplicates = sorted({code for code in selected if selected.count(code) > 1})
    if duplicates:
        raise AnalysisError(f"checker selection repeats {duplicates}")
    for code in selected:
        get(code)
    return selected
