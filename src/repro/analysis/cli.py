"""``python -m repro lint`` — the invariant linter's command line.

Text mode prints one finding per line (``path:line:col: CODE message``)
plus a per-code summary; ``--format json`` emits the stable payload
documented in the README for CI trend jobs and future tooling,
mirroring the ``perf --json`` record style.  Exit 0 when no *active*
finding remains, 1 otherwise, 2 on usage errors (via the shared
:class:`~repro.errors.ReproError` handling).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis import registry
from repro.analysis.engine import LintReport, lint_paths
from repro.errors import ReproError


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", metavar="PATHS",
        help="files or directories to check (default: src/ and tests/ "
             "under the repository root)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is the stable machine schema)",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODE[,CODE]",
        help="report only these checker codes",
    )
    parser.add_argument(
        "--ignore", default=None, metavar="CODE[,CODE]",
        help="drop these checker codes from the report",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="suppression baseline (default: lint-baseline.txt at the "
             "repository root)",
    )
    parser.add_argument(
        "--root", default=None, metavar="DIR",
        help="repository root for relative paths and the default "
             "baseline (default: nearest ancestor with pyproject.toml)",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_checkers",
        help="list registered checkers and exit",
    )


def _split(value: str | None) -> tuple[str, ...] | None:
    if value is None:
        return None
    return tuple(code.strip() for code in value.split(",") if code.strip())


def _default_paths(root: Path) -> list[str]:
    paths = [str(root / name) for name in ("src", "tests") if (root / name).is_dir()]
    return paths or [str(root)]


def _list_checkers() -> int:
    for checker_cls in registry.all_checkers():
        checker = checker_cls()
        scope = ", ".join(checker.scope) or "everything"
        print(f"{checker.code}  {checker.name}")
        print(f"    {checker.description}")
        print(f"    scope: {scope}")
    return 0


def _render_text(report: LintReport) -> None:
    for finding in report.findings:
        print(finding.render())
    for entry in report.stale_baseline:
        print(
            f"{entry.path}: stale baseline entry {entry.code} "
            f"({entry.reason}) — remove it"
        )
    counts = report.counts()
    if counts:
        print()
        for code, states in counts.items():
            parts = [f"{n} {state}" for state, n in states.items() if n]
            print(f"{code}: {', '.join(parts)}")
    active = len(report.active())
    checked = report.files_checked
    verdict = "clean" if not active else f"{active} active finding(s)"
    print(f"repro lint: {checked} files checked — {verdict}")


def cmd_lint(args: argparse.Namespace) -> int:
    if args.list_checkers:
        return _list_checkers()
    root = Path(args.root).resolve() if args.root else None
    paths = list(args.paths)
    if not paths:
        from repro.analysis.engine import _default_root

        base = root or _default_root([Path.cwd()])
        root = root or base
        paths = _default_paths(base)
    report = lint_paths(
        paths,
        root=root,
        select=_split(args.select),
        ignore=_split(args.ignore),
        baseline=args.baseline,
    )
    if args.format == "json":
        json.dump(report.to_json(), sys.stdout, indent=2, sort_keys=False)
        print()
    else:
        _render_text(report)
    return report.exit_code


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="statically enforce the determinism, dispatch, "
                    "trace-kind, wire-safety and async-hygiene invariants",
    )
    add_lint_arguments(parser)
    try:
        return cmd_lint(parser.parse_args(argv))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
