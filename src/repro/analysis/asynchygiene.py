"""RPR005 — async hygiene: nothing blocks the live event loop.

The live runtime (:mod:`repro.live`) multiplexes every replica's
channels, heartbeats and the controller protocol on one asyncio loop
per process.  A single blocking call inside an ``async def`` — a
``time.sleep``, a blocking-socket framing helper, a synchronous dial —
stalls *every* connection on that loop, which reads as false
suspicions and spurious fail-overs in the very protocols under test.

The checker flags, inside ``async def`` bodies under ``repro/live``:

* ``time.sleep`` (use ``asyncio.sleep``);
* the blocking-socket framing helpers (``send_msg`` / ``recv_msg`` /
  ``recv_exact`` / ``connect_with_retry`` / ``deliver_challenge`` /
  ``answer_challenge`` — each has an asyncio twin in
  :mod:`repro.net.framing`);
* synchronous dials and subprocess waits
  (``socket.create_connection``, ``subprocess.run``, ...);
* blocking file I/O via bare ``open()`` (stage it before the loop, or
  hand it to ``asyncio.to_thread`` and pragma the call).

A synchronous ``def`` nested inside an ``async def`` is not flagged:
it runs wherever it is called from.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.astutil import import_map, resolve_call, walk_with_async_context
from repro.analysis.base import Checker, Finding, SourceFile
from repro.analysis.registry import register

#: Canonical dotted names that block, with the non-blocking move.
BLOCKING_CALLS: dict[str, str] = {
    "time.sleep": "await asyncio.sleep(...)",
    "socket.create_connection": "asyncio.open_connection / "
                                "open_connection_with_retry",
    "subprocess.run": "await asyncio.create_subprocess_exec(...)",
    "subprocess.check_output": "await asyncio.create_subprocess_exec(...)",
    "subprocess.check_call": "await asyncio.create_subprocess_exec(...)",
}

#: Blocking framing helpers (bare or attribute calls) with asyncio twins.
BLOCKING_HELPERS: dict[str, str] = {
    "send_msg": "write_frame + await drain",
    "recv_msg": "await read_frame(...)",
    "recv_exact": "await reader.readexactly(...)",
    "connect_with_retry": "await open_connection_with_retry(...)",
    "deliver_challenge": "await deliver_challenge_async(...)",
    "answer_challenge": "await answer_challenge_async(...)",
}


@register
class AsyncHygieneChecker(Checker):
    code = "RPR005"
    name = "async-hygiene"
    description = (
        "no time.sleep, blocking sockets or blocking file I/O inside "
        "async def in repro/live"
    )
    scope = ("repro/live/",)

    def check_file(self, file: SourceFile) -> Iterable[Finding]:
        imports = import_map(file.tree)
        for node, in_async in walk_with_async_context(file.tree):
            if not in_async or not isinstance(node, ast.Call):
                continue
            origin = resolve_call(node, imports)
            if origin in BLOCKING_CALLS:
                yield self.finding(
                    file, node,
                    f"blocking `{origin}()` inside async def stalls the "
                    f"whole event loop; use {BLOCKING_CALLS[origin]}",
                )
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if name in BLOCKING_HELPERS:
                yield self.finding(
                    file, node,
                    f"blocking framing helper `{name}()` inside async def; "
                    f"use {BLOCKING_HELPERS[name]}",
                )
            elif isinstance(func, ast.Name) and func.id == "open":
                yield self.finding(
                    file, node,
                    "blocking file open() inside async def; stage the I/O "
                    "outside the loop or hand it to asyncio.to_thread",
                )
