"""The lint engine: discover sources, run every checker, suppress,
report.

Two entry points: :func:`lint_paths` (the CLI's, walking real
directories against a repository root) and :func:`lint_sources` (the
fixture-test surface: in-memory ``(relpath, text)`` pairs through the
identical pipeline).  Both return a :class:`LintReport` whose
:meth:`~LintReport.to_json` payload is the documented stable schema of
``repro lint --format json``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis import registry
from repro.analysis.base import (
    PRAGMA_CODE,
    Finding,
    SourceFile,
    apply_suppressions,
)
from repro.analysis.baseline import (
    BASELINE_NAME,
    BaselineEntry,
    load_baseline,
    parse_baseline,
    unused_entries,
    waivers,
)
from repro.errors import AnalysisError

#: Version of the ``--format json`` payload.  Bump only with the
#: schema documented in the README; consumers pin on it.
JSON_SCHEMA_VERSION = 1

#: Directory names never descended into during discovery.
SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})


@dataclass(frozen=True)
class LintReport:
    """The outcome of one lint pass.

    ``findings`` carries every finding with its suppression state
    (``active`` / ``pragma`` / ``baseline``) after ``--select`` /
    ``--ignore`` filtering; only ``active`` findings gate.
    """

    findings: tuple[Finding, ...]
    files_checked: int
    codes_run: tuple[str, ...]
    stale_baseline: tuple[BaselineEntry, ...] = ()

    def active(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.state == "active")

    @property
    def exit_code(self) -> int:
        # Stale baseline entries gate too: the baseline may only shrink.
        return 1 if self.active() or self.stale_baseline else 0

    def counts(self) -> dict[str, dict[str, int]]:
        """Per-code finding counts by suppression state."""
        out: dict[str, dict[str, int]] = {}
        for finding in self.findings:
            per_code = out.setdefault(
                finding.code, {"active": 0, "pragma": 0, "baseline": 0}
            )
            per_code[finding.state] += 1
        return dict(sorted(out.items()))

    def to_json(self) -> dict:
        """The stable machine-readable payload (see README)."""
        return {
            "schema_version": JSON_SCHEMA_VERSION,
            "tool": "repro-lint",
            "files_checked": self.files_checked,
            "codes_run": list(self.codes_run),
            "counts": self.counts(),
            "findings": [
                {
                    "code": f.code,
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "message": f.message,
                    "state": f.state,
                }
                for f in self.findings
            ],
            "stale_baseline": [
                {"code": e.code, "path": e.path, "reason": e.reason}
                for e in self.stale_baseline
            ],
            "exit_code": self.exit_code,
        }


def normalize_relpath(path: Path, root: Path) -> str:
    """Repository-relative posix path with the ``src/`` layer stripped,
    so checker scopes match the import layout (``repro/sim/...``)."""
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = path
    posix = rel.as_posix()
    if posix.startswith("src/"):
        posix = posix[len("src/"):]
    return posix


def discover(paths: Sequence[Path], root: Path) -> list[SourceFile]:
    """Every ``*.py`` under ``paths`` as :class:`SourceFile` values."""
    seen: set[str] = set()
    files: list[SourceFile] = []
    for base in paths:
        if not base.exists():
            raise AnalysisError(f"no such path: {base}")
        candidates = [base] if base.is_file() else sorted(
            p for p in base.rglob("*.py")
            if not any(part in SKIP_DIRS for part in p.parts)
        )
        for path in candidates:
            relpath = normalize_relpath(path, root)
            if relpath in seen:
                continue
            seen.add(relpath)
            files.append(SourceFile(
                relpath=relpath,
                text=path.read_text(encoding="utf-8"),
                path=path,
            ))
    return files


def _validate_filter(codes: Iterable[str] | None) -> tuple[str, ...] | None:
    if codes is None:
        return None
    known = set(registry.names()) | {PRAGMA_CODE}
    out = tuple(codes)
    for code in out:
        if code not in known:
            raise AnalysisError(
                f"unknown checker {code!r}; known: "
                f"{tuple(sorted(known))}"
            )
    return out


def run_checkers(files: Sequence[SourceFile]) -> list[Finding]:
    """Every registered checker over the file set (unsuppressed)."""
    findings: list[Finding] = []
    for checker_cls in registry.all_checkers():
        findings.extend(checker_cls().run(files))
    return findings


def lint_files(
    files: Sequence[SourceFile],
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    baseline_entries: list[BaselineEntry] | None = None,
) -> LintReport:
    """The full pipeline over already-loaded sources.

    All checkers always run (pragma staleness needs the complete
    picture); ``select``/``ignore`` filter what is *reported*, and the
    gate only counts what is reported.
    """
    select_codes = _validate_filter(select)
    ignore_codes = _validate_filter(ignore) or ()
    entries = baseline_entries or []
    findings = apply_suppressions(
        run_checkers(files), files, waivers(entries)
    )
    suppressed = {
        (f.code, f.path) for f in findings if f.state == "baseline"
    }
    reported = tuple(
        f for f in findings
        if (select_codes is None or f.code in select_codes)
        and f.code not in ignore_codes
    )
    return LintReport(
        findings=reported,
        files_checked=len(files),
        codes_run=registry.names(),
        stale_baseline=tuple(unused_entries(entries, suppressed)),
    )


def lint_sources(
    sources: Sequence[tuple[str, str]],
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    baseline_text: str = "",
) -> LintReport:
    """Lint in-memory ``(relpath, text)`` pairs — the fixture surface."""
    files = [SourceFile(relpath=relpath, text=text) for relpath, text in sources]
    entries = parse_baseline(baseline_text) if baseline_text else []
    return lint_files(
        files, select=select, ignore=ignore, baseline_entries=entries
    )


def lint_paths(
    paths: Sequence[str | Path],
    *,
    root: str | Path | None = None,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    baseline: str | Path | None = None,
) -> LintReport:
    """Lint real paths against a repository root (the CLI's pipeline)."""
    root_path = Path(root) if root is not None else _default_root(paths)
    baseline_path = (
        Path(baseline) if baseline is not None else root_path / BASELINE_NAME
    )
    files = discover([Path(p) for p in paths], root_path)
    return lint_files(
        files,
        select=select,
        ignore=ignore,
        baseline_entries=load_baseline(baseline_path),
    )


def _default_root(paths: Sequence[str | Path]) -> Path:
    """The nearest ancestor of the first path holding a ``pyproject.toml``
    (else the current directory) — where the baseline lives."""
    start = Path(paths[0]).resolve() if paths else Path.cwd()
    if start.is_file():
        start = start.parent
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return Path.cwd()
