"""The committed suppression baseline.

A baseline entry waives one checker code for one whole file — the
escape hatch for intentional exceptions too broad for a line pragma.
The file lives at the repository root (``lint-baseline.txt``), is
committed, and every entry must carry a one-line justification; the
policy is to keep it near-empty and fix violations instead.

Format — one entry per line::

    # comments and blank lines are ignored
    RPR001 repro/somewhere/module.py  # why this file is exempt

Entries that no longer waive anything are reported by ``repro lint``
so the baseline shrinks as violations are fixed.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.errors import AnalysisError

#: Default baseline filename, resolved against the lint root.
BASELINE_NAME = "lint-baseline.txt"


@dataclass(frozen=True)
class BaselineEntry:
    code: str
    path: str
    reason: str
    line: int


def parse_baseline(text: str, *, source: str = BASELINE_NAME) -> list[BaselineEntry]:
    """Parse entries; :class:`AnalysisError` on a malformed line."""
    entries: list[BaselineEntry] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        if not stripped or stripped.startswith("#"):
            continue
        body, sep, reason = stripped.partition("#")
        fields = body.split()
        if len(fields) != 2 or not sep or not reason.strip():
            raise AnalysisError(
                f"{source}:{lineno}: baseline entries are "
                f"`CODE path  # justification`, got {stripped!r}"
            )
        code, path = fields
        entries.append(BaselineEntry(
            code=code, path=path, reason=reason.strip(), line=lineno
        ))
    return entries


def load_baseline(path: Path) -> list[BaselineEntry]:
    """Entries from ``path``; an absent file is an empty baseline."""
    if not path.exists():
        return []
    return parse_baseline(path.read_text(encoding="utf-8"), source=str(path))


def waivers(entries: list[BaselineEntry]) -> set[tuple[str, str]]:
    """The ``(code, path)`` pairs the entries suppress."""
    return {(entry.code, entry.path) for entry in entries}


def unused_entries(
    entries: list[BaselineEntry], suppressed: set[tuple[str, str]]
) -> list[BaselineEntry]:
    """Entries that waived nothing in this run (candidates to delete)."""
    return [
        entry for entry in entries
        if (entry.code, entry.path) not in suppressed
    ]
