"""Small AST helpers shared by the checkers.

The central tool is import-aware call resolution: a checker that wants
to forbid ``time.monotonic()`` must also catch ``from time import
monotonic`` and ``import time as t``; :func:`import_map` +
:func:`resolve_call` normalise all three spellings to the canonical
dotted name ``"time.monotonic"``.
"""

from __future__ import annotations

import ast
from typing import Iterator


def import_map(tree: ast.AST) -> dict[str, str]:
    """Local name -> canonical dotted origin, from every import.

    ``import random as r`` maps ``r -> random``; ``from random import
    Random as R`` maps ``R -> random.Random``.  Relative imports and
    star imports are ignored (nothing in this tree uses them).
    """
    mapping: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                mapping[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                mapping[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return mapping


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolve_call(node: ast.Call, imports: dict[str, str]) -> str | None:
    """Canonical dotted name of the called object, import-aware.

    Returns ``None`` for calls whose base is not a module-level import
    (method calls on locals, ``self`` attributes, subscripts...).
    """
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    origin = imports.get(head)
    if origin is None:
        return None
    return f"{origin}.{rest}" if rest else origin


def str_const(node: ast.AST | None) -> str | None:
    """The value of a string-literal node, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def walk_with_async_context(
    tree: ast.AST,
) -> Iterator[tuple[ast.AST, bool]]:
    """Yield ``(node, inside_async_def)`` over the whole module.

    A nested synchronous ``def`` inside an ``async def`` resets the
    flag: its body runs wherever it is called, and flagging it would
    punish helper closures for their lexical position.
    """

    def visit(node: ast.AST, in_async: bool) -> Iterator[tuple[ast.AST, bool]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.AsyncFunctionDef):
                yield (child, True)
                yield from visit(child, True)
            elif isinstance(child, (ast.FunctionDef, ast.Lambda)):
                yield (child, False)
                yield from visit(child, False)
            else:
                yield (child, in_async)
                yield from visit(child, in_async)

    yield from visit(tree, False)


def enclosing_function_nodes(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    """Map every node to its nearest enclosing function def (or the
    module when at top level)."""
    owner: dict[ast.AST, ast.AST] = {}

    def visit(node: ast.AST, current: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            nxt = current
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nxt = child
            owner[child] = nxt
            visit(child, nxt)

    visit(tree, tree)
    return owner
