"""RPR001 — determinism: no ambient randomness or wall clock in
simulation and protocol code.

Byte-identical BENCH artifacts and bit-identical sim-vs-live replays
only hold if every random draw flows through a named
:class:`~repro.sim.rng.RngRegistry` stream and no simulated component
ever reads the host clock.  Two tiers:

* the **deterministic zone** (``repro/sim``, ``repro/protocols``,
  ``repro/core``, ``repro/baselines``, ``repro/failures``,
  ``repro/crypto``, and the workload/population engines) forbids
  module-level ``random.*`` calls, unseeded ``random.Random()``,
  ``os.urandom``/``secrets``/``uuid.uuid4`` and every wall-clock read;
* the **harness clock tier** (the rest of ``repro/harness``) forbids
  only direct wall-clock reads — telemetry belongs behind
  :mod:`repro.harness.telemetry`, the one module allowed to touch the
  host clock, so "how long did this take" never leaks into "what did
  the experiment compute".

Intentional exceptions carry ``# repro: allow[RPR001] reason``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.astutil import import_map, resolve_call
from repro.analysis.base import Checker, Finding, SourceFile
from repro.analysis.registry import register

#: Wall-clock reads, forbidden in both tiers.
CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.thread_time", "time.thread_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Ambient entropy, forbidden in the deterministic zone.
ENTROPY_CALLS = frozenset({
    "os.urandom",
    "uuid.uuid4", "uuid.uuid1",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbelow", "secrets.choice", "secrets.randbits",
})

#: The module whose helpers are the sanctioned clock boundary.
TELEMETRY_MODULE = "repro/harness/telemetry.py"

#: Full-rule zone: everything that feeds the deterministic simulation
#: or the protocol state machines.
DETERMINISTIC_SCOPE = (
    "repro/sim/",
    "repro/protocols/",
    "repro/core/",
    "repro/baselines/",
    "repro/failures/",
    "repro/crypto/",
    "repro/harness/workload.py",
    "repro/harness/population.py",
)


def _is_random_module(origin: str) -> bool:
    return origin == "random" or origin.startswith("random.")


@register
class DeterminismChecker(Checker):
    code = "RPR001"
    name = "determinism"
    description = (
        "no ambient randomness (random.*, os.urandom, secrets, uuid4) or "
        "wall-clock reads in sim/protocol code; harness telemetry reads "
        "the clock only through repro.harness.telemetry"
    )
    scope = DETERMINISTIC_SCOPE + ("repro/harness/",)

    def check_file(self, file: SourceFile) -> Iterable[Finding]:
        if file.relpath == TELEMETRY_MODULE:
            return
        full_rules = any(
            file.relpath.startswith(p) if p.endswith("/") else file.relpath == p
            for p in DETERMINISTIC_SCOPE
        )
        imports = import_map(file.tree)
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = resolve_call(node, imports)
            if origin is None:
                continue
            if origin in CLOCK_CALLS:
                where = (
                    "deterministic code must take times from the simulator"
                    if full_rules
                    else "route wall-time telemetry through repro.harness.telemetry"
                )
                yield self.finding(
                    file, node, f"wall-clock read `{origin}()`; {where}"
                )
            elif full_rules and origin in ENTROPY_CALLS:
                yield self.finding(
                    file, node,
                    f"ambient entropy `{origin}()`; draw from a named "
                    f"RngRegistry stream instead",
                )
            elif full_rules and origin == "random.Random" and not (
                node.args or node.keywords
            ):
                yield self.finding(
                    file, node,
                    "unseeded random.Random(); seed it or take a named "
                    "RngRegistry stream",
                )
            elif (
                full_rules
                and _is_random_module(origin)
                and origin not in ("random.Random", "random")
            ):
                yield self.finding(
                    file, node,
                    f"module-level `{origin}()` draws from the shared global "
                    f"RNG; use a named RngRegistry stream",
                )
