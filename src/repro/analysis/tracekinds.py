"""RPR003 — trace-kind consistency: probes and emitters agree.

The probe registry derives the tracer keep-filter from the *declared*
kinds of the selected probes, and hot-path emitters guard expensive
field construction with :meth:`~repro.sim.trace.Tracer.wants`.  Both
conventions are string-keyed, so nothing but this checker notices
when they drift:

* a probe declaring a kind **no emitter ever produces** measures
  silence (a typo'd kind yields zero samples, not an error);
* an **unguarded emit of a scale-only kind** evaluates its field
  kwargs on every event even when no probe subscribed — exactly the
  per-event cost the ``Tracer.wants()`` guard exists to avoid.

The checker statically collects every literal-kind emission
(``tracer.emit(t, "kind", ...)``, the ``Process.trace("kind", ...)``
wrapper, and direct ``TraceRecord(...)`` construction), every probe
class's ``kinds`` declaration (with its ``scale_only`` marker), and
every ``wants("kind")`` guard, then cross-checks the three.  It needs
the whole-tree view: the cross-checks only run when the analyzed set
includes the tracer and the probe registry modules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.astutil import str_const
from repro.analysis.base import Checker, Finding, SourceFile
from repro.analysis.registry import register

#: Files whose presence marks a whole-tree run (the cross-checks are
#: meaningless over a partial file set).
ANCHOR_FILES = ("repro/sim/trace.py", "repro/harness/probes/base.py")

#: Call-attribute names that emit a trace record with a literal kind in
#: their second positional argument (``emit(time, kind, ...)``).
EMIT_ATTRS = frozenset({"emit"})

#: Call names whose *first* argument is the kind (the ``Process.trace``
#: wrapper and any future ``record(kind, ...)`` helpers).
KIND_FIRST_ATTRS = frozenset({"trace", "record"})


@dataclass
class _EmitSite:
    file: SourceFile
    node: ast.Call
    kind: str
    guarded: bool


@dataclass
class _ProbeDecl:
    file: SourceFile
    node: ast.ClassDef
    name: str
    kinds: frozenset[str]
    scale_only: bool


@dataclass
class _Collected:
    emits: list[_EmitSite] = field(default_factory=list)
    probes: list[_ProbeDecl] = field(default_factory=list)


def _guard_kinds(test: ast.AST) -> set[str]:
    """Kind literals asserted by ``wants("...")`` calls in an if-test."""
    kinds: set[str] = set()
    for node in ast.walk(test):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "wants"
            and node.args
        ):
            kind = str_const(node.args[0])
            if kind is not None:
                kinds.add(kind)
    return kinds


class _EmitCollector(ast.NodeVisitor):
    """Walks one module tracking the ``wants()`` guards in scope."""

    def __init__(self, file: SourceFile, out: _Collected) -> None:
        self.file = file
        self.out = out
        self._guards: list[set[str]] = []

    def visit_If(self, node: ast.If) -> None:
        self._guards.append(_guard_kinds(node.test))
        for child in node.body:
            self.visit(child)
        self._guards.pop()
        for child in node.orelse:
            self.visit(child)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        decl = _probe_decl(self.file, node)
        if decl is not None:
            self.out.probes.append(decl)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        kind = _emitted_kind(node)
        if kind is not None:
            guarded = any(kind in kinds for kinds in self._guards)
            self.out.emits.append(_EmitSite(self.file, node, kind, guarded))
        self.generic_visit(node)


def _emitted_kind(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Attribute):
        if func.attr in EMIT_ATTRS and len(node.args) >= 2:
            return str_const(node.args[1])
        if func.attr in KIND_FIRST_ATTRS and node.args:
            return str_const(node.args[0])
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    if name == "TraceRecord":
        for keyword in node.keywords:
            if keyword.arg == "kind":
                return str_const(keyword.value)
        if len(node.args) >= 2:
            return str_const(node.args[1])
    return None


def _probe_decl(file: SourceFile, node: ast.ClassDef) -> _ProbeDecl | None:
    """A probe declaration, recognised by a literal ``kinds =
    frozenset({...})`` class attribute."""
    kinds: frozenset[str] | None = None
    scale_only = False
    for stmt in node.body:
        target = None
        value = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target, value = stmt.target, stmt.value
        if not isinstance(target, ast.Name) or value is None:
            continue
        if target.id == "kinds":
            kinds = _literal_kind_set(value)
        elif target.id == "scale_only":
            scale_only = isinstance(value, ast.Constant) and value.value is True
    if kinds is None:
        return None
    return _ProbeDecl(file, node, node.name, kinds, scale_only)


def _literal_kind_set(value: ast.AST) -> frozenset[str] | None:
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id == "frozenset"
    ):
        if not value.args:
            return frozenset()
        inner = value.args[0]
        if isinstance(inner, (ast.Set, ast.Tuple, ast.List)):
            kinds = [str_const(elt) for elt in inner.elts]
            if all(kind is not None for kind in kinds):
                return frozenset(kinds)  # type: ignore[arg-type]
    return None


@register
class TraceKindChecker(Checker):
    code = "RPR003"
    name = "trace-kinds"
    description = (
        "every probe-declared trace kind has an emitter, and scale-only "
        "kinds are emitted behind a Tracer.wants() guard"
    )
    scope = ("repro/",)

    def run(self, files: Sequence[SourceFile]) -> list[Finding]:
        in_scope = [f for f in files if self.applies_to(f.relpath)]
        present = {f.relpath for f in in_scope}
        if not all(anchor in present for anchor in ANCHOR_FILES):
            return []  # partial run: the cross-file checks would lie
        collected = _Collected()
        for file in in_scope:
            _EmitCollector(file, collected).visit(file.tree)
        emitted = {site.kind for site in collected.emits}
        findings: list[Finding] = []
        for probe in collected.probes:
            for kind in sorted(probe.kinds - emitted):
                findings.append(self.finding(
                    probe.file, probe.node,
                    f"probe {probe.name} subscribes to kind {kind!r} but no "
                    f"emitter in the tree produces it",
                ))
        scale_kinds = set().union(
            *(p.kinds for p in collected.probes if p.scale_only)
        ) if any(p.scale_only for p in collected.probes) else set()
        always_kinds = set().union(
            *(p.kinds for p in collected.probes if not p.scale_only and p.kinds)
        ) if any(not p.scale_only and p.kinds for p in collected.probes) else set()
        guard_required = scale_kinds - always_kinds
        for site in collected.emits:
            if site.kind in guard_required and not site.guarded:
                findings.append(self.finding(
                    site.file, site.node,
                    f"unguarded hot-path emit of scale-only kind "
                    f"{site.kind!r}; wrap in `if tracer.wants({site.kind!r}):` "
                    f"so unmeasured runs never build its fields",
                ))
        return findings
