"""RPR004 — wire safety: unpickling stays inside the framing module
and every frame reader is bounded.

Pickle is code execution for whoever can reach the socket, so the
hardened handshake of PR 7 only means something while two properties
hold tree-wide:

* ``pickle.loads`` appears **only** in ``repro/net/framing.py`` —
  the single audited choke point where frames are read post-handshake
  (local journal files use ``pickle.load`` on streams and are out of
  scope; test fixtures that unpickle deliberately carry a pragma);
* every function in the framing module that unpickles, and every raw
  length-prefixed read helper near the wire, must consult a byte
  bound (``MAX_FRAME_BYTES`` / ``_HANDSHAKE_MAX``) before allocating
  — a length header is attacker-controlled until authentication, and
  after it, a bug shield.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.astutil import (
    enclosing_function_nodes,
    import_map,
    resolve_call,
)
from repro.analysis.base import Checker, Finding, SourceFile
from repro.analysis.registry import register

FRAMING_MODULE = "repro/net/framing.py"

#: Names that read ``n`` bytes for a caller-supplied ``n``; inside the
#: framing module their enclosing function must reference a bound.
RAW_READERS = frozenset({"recv_exact", "readexactly"})

BOUND_NAMES = frozenset({"MAX_FRAME_BYTES", "_HANDSHAKE_MAX"})


def _references_bound(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and node.id in BOUND_NAMES:
            return True
        if isinstance(node, ast.Attribute) and node.attr in BOUND_NAMES:
            return True
    return False


def _is_pickle_loads(node: ast.Call, imports: dict[str, str]) -> bool:
    return resolve_call(node, imports) == "pickle.loads"


@register
class WireSafetyChecker(Checker):
    code = "RPR004"
    name = "wire-safety"
    description = (
        "pickle.loads only inside repro/net/framing.py, and every "
        "length-prefixed frame reader bounds against MAX_FRAME_BYTES"
    )
    scope = ("repro/", "tests/")

    def check_file(self, file: SourceFile) -> Iterable[Finding]:
        imports = import_map(file.tree)
        in_framing = file.relpath == FRAMING_MODULE
        owners = enclosing_function_nodes(file.tree) if in_framing else {}
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            if _is_pickle_loads(node, imports):
                if not in_framing:
                    yield self.finding(
                        file, node,
                        "pickle.loads outside repro/net/framing.py; read "
                        "frames through the framing codec (recv_msg / "
                        "read_frame) so the byte bound and the handshake "
                        "discipline apply",
                    )
                    continue
                owner = owners.get(node)
                if owner is None or not _references_bound(owner):
                    yield self.finding(
                        file, node,
                        "unpickling in a function that never consults "
                        "MAX_FRAME_BYTES; bound the frame length before "
                        "allocating",
                    )
            elif in_framing:
                func = node.func
                name = func.attr if isinstance(func, ast.Attribute) else (
                    func.id if isinstance(func, ast.Name) else None
                )
                if name in RAW_READERS and node.args:
                    length = node.args[-1]
                    if isinstance(length, ast.Constant):
                        continue  # fixed-size header read
                    if isinstance(length, ast.Attribute) and length.attr == "size":
                        continue  # struct header size
                    owner = owners.get(node)
                    if owner is None or not _references_bound(owner):
                        yield self.finding(
                            file, node,
                            f"length-prefixed read via {name}() in a function "
                            f"that never consults MAX_FRAME_BYTES / "
                            f"_HANDSHAKE_MAX",
                        )
