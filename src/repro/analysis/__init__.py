"""Static analysis of the tree's determinism and safety invariants.

The fourth plugin registry (after protocols, execution backends and
measurement probes): a :class:`~repro.analysis.base.Checker` is one
machine-enforced invariant, registered by code and run by ``python -m
repro lint``.  Five ship built in —

* ``RPR001`` determinism — no ambient randomness or wall-clock reads
  in sim/protocol code; harness telemetry goes through
  :mod:`repro.harness.telemetry`;
* ``RPR002`` registry dispatch — no protocol string dispatch and no
  concrete plugin-class imports outside the owning packages;
* ``RPR003`` trace-kind consistency — probe ``kinds`` declarations,
  emit sites and ``Tracer.wants()`` guards agree;
* ``RPR004`` wire safety — ``pickle.loads`` only in the framing
  module, every frame reader bounded by ``MAX_FRAME_BYTES``;
* ``RPR005`` async hygiene — nothing blocks the live event loop.

Suppression is explicit and reviewable: ``# repro: allow[CODE]
reason`` line pragmas, plus the committed near-empty baseline
(:mod:`~repro.analysis.baseline`).  The CI job ``lint-invariants``
gates ``repro lint --format json src tests`` on every push.
"""

from repro.analysis.base import Checker, Finding, SourceFile
from repro.analysis.engine import (
    JSON_SCHEMA_VERSION,
    LintReport,
    lint_files,
    lint_paths,
    lint_sources,
)
from repro.analysis.registry import (
    all_checkers,
    get,
    names,
    register,
    unregister,
)

# Importing the checker modules registers them.
from repro.analysis.determinism import DeterminismChecker
from repro.analysis.dispatch import DispatchChecker
from repro.analysis.tracekinds import TraceKindChecker
from repro.analysis.wire import WireSafetyChecker
from repro.analysis.asynchygiene import AsyncHygieneChecker

__all__ = [
    "AsyncHygieneChecker",
    "Checker",
    "DeterminismChecker",
    "DispatchChecker",
    "Finding",
    "JSON_SCHEMA_VERSION",
    "LintReport",
    "SourceFile",
    "TraceKindChecker",
    "WireSafetyChecker",
    "all_checkers",
    "get",
    "lint_files",
    "lint_paths",
    "lint_sources",
    "names",
    "register",
    "unregister",
]
