"""RPR002 — registry dispatch: plugin axes stay behind their
registries.

PR 2/4/5 turned protocols, executors and probes into registries so a
new plugin is one module, not a harness edit.  That only stays true if
nothing outside the owning packages re-grows ``if protocol == "sc"``
chains or imports a concrete backend class around the registry.  Two
rules, over ``src/repro`` only (tests may poke concrete classes):

* no string-literal dispatch on a protocol-ish value (``== "sc"``,
  ``in ("sc", "bft")``, ``.startswith("sc")``) outside
  ``repro/protocols/``;
* no imports of concrete plugin classes from the executor, probe or
  protocol implementation modules outside their owning packages —
  callers go through ``register/get/names``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.astutil import dotted_name, str_const
from repro.analysis.base import Checker, Finding, SourceFile
from repro.analysis.registry import register

#: Implementation modules whose classes are registry-only outside the
#: owning package (the package ``__init__`` re-exports are the public
#: face and register the plugins as a side effect).
PLUGIN_MODULES = {
    "repro.harness.exec": ("serial", "pool", "sockets"),
    "repro.harness.probes": ("paper", "recovery", "scale"),
    "repro.protocols": ("sc", "scr", "bft", "ct"),
}

_PROTOCOLISH = re.compile(r"(^|_)protocol$")


def _owning_prefix(package: str) -> str:
    return package.replace(".", "/") + "/"


def _protocolish(node: ast.AST) -> bool:
    """Whether an expression names a protocol value (``protocol``,
    ``spec.protocol``, ``order_protocol``...)."""
    if isinstance(node, ast.Attribute):
        return bool(_PROTOCOLISH.search(node.attr))
    if isinstance(node, ast.Name):
        return bool(_PROTOCOLISH.search(node.id))
    return False


def _literal_strings(node: ast.AST) -> bool:
    if str_const(node) is not None:
        return True
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)) and node.elts:
        return all(str_const(elt) is not None for elt in node.elts)
    return False


@register
class DispatchChecker(Checker):
    code = "RPR002"
    name = "registry-dispatch"
    description = (
        "no string dispatch on protocol names and no concrete plugin-class "
        "imports outside the owning registry packages"
    )
    scope = ("repro/",)

    def check_file(self, file: SourceFile) -> Iterable[Finding]:
        in_protocols = file.relpath.startswith("repro/protocols/")
        for node in ast.walk(file.tree):
            if isinstance(node, ast.ImportFrom):
                yield from self._check_import(file, node)
            elif in_protocols:
                continue
            elif isinstance(node, ast.Compare):
                yield from self._check_compare(file, node)
            elif isinstance(node, ast.Call):
                yield from self._check_startswith(file, node)

    def _check_compare(
        self, file: SourceFile, node: ast.Compare
    ) -> Iterable[Finding]:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq, ast.In, ast.NotIn)):
                continue
            pair = ((left, right), (right, left))
            for value, literal in pair:
                if _protocolish(value) and _literal_strings(literal):
                    yield self.finding(
                        file, node,
                        "string dispatch on a protocol name; resolve through "
                        "the repro.protocols registry (get/names) or the "
                        "plugin's own attributes",
                    )
                    break

    def _check_startswith(
        self, file: SourceFile, node: ast.Call
    ) -> Iterable[Finding]:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "startswith"
            and _protocolish(func.value)
            and node.args
            and _literal_strings(node.args[0])
        ):
            yield self.finding(
                file, node,
                "prefix dispatch on a protocol name; ask the registered "
                "plugin instead of pattern-matching its name",
            )

    def _check_import(
        self, file: SourceFile, node: ast.ImportFrom
    ) -> Iterable[Finding]:
        if node.level or not node.module:
            return
        for package, submodules in PLUGIN_MODULES.items():
            if file.relpath.startswith(_owning_prefix(package)):
                continue
            if node.module not in {f"{package}.{sub}" for sub in submodules}:
                continue
            classes = [
                alias.name for alias in node.names
                if alias.name[:1].isupper()
            ]
            if classes:
                yield self.finding(
                    file, node,
                    f"direct plugin-class import ({', '.join(classes)} from "
                    f"{node.module}) bypasses the {package} registry; use "
                    f"register/get/names",
                )
