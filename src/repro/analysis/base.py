"""The :class:`Checker` protocol and the static-analysis value types.

A checker is one *invariant* over the source tree, identified by a
stable code (``RPR001``...).  It declares the paths it patrols
(:attr:`Checker.scope`, prefixes of repository-relative paths with the
``src/`` layer stripped, so ``repro/sim/`` matches both the installed
and the in-repo form) and turns :class:`SourceFile` ASTs into
:class:`Finding` values.  Checkers are classes registered by code
(:mod:`~repro.analysis.registry`), mirroring the protocol, executor
and probe registries; instances are per-run.

Suppression happens in two layers, both recorded on the finding so
``--format json`` consumers can tell them apart:

* an inline pragma ``# repro: allow[RPR001] reason`` on the offending
  line (or alone on the line above it) waives exactly the named codes
  there — the reason is mandatory;
* a committed baseline file waives one code for one whole file, for
  intentional exceptions too broad for a line pragma
  (:mod:`~repro.analysis.baseline`).
"""

from __future__ import annotations

import ast
import re
from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import AnalysisError

#: The one pragma form the pass honours.  ``reason`` is mandatory: a
#: waiver nobody can justify in half a line should not exist.
PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<codes>[A-Z0-9,\s]+)\]\s*(?P<reason>.*)$"
)

#: Code reserved for findings the *engine* emits about the suppression
#: machinery itself (malformed or stale pragmas) rather than any
#: registered checker.
PRAGMA_CODE = "RPR000"


@dataclass(frozen=True)
class Finding:
    """One invariant violation at one source location.

    ``state`` is the suppression outcome: ``"active"`` findings gate,
    ``"pragma"`` and ``"baseline"`` findings are reported (JSON always
    carries them; text mode summarises) but never fail the run.
    """

    code: str
    path: str
    line: int
    message: str
    col: int = 0
    state: str = "active"

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def render(self) -> str:
        suffix = "" if self.state == "active" else f"  [{self.state}]"
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}{suffix}"


@dataclass(frozen=True)
class Pragma:
    """One parsed ``# repro: allow[...]`` comment."""

    line: int
    codes: tuple[str, ...]
    reason: str
    #: Lines this pragma waives: its own, plus the next line when the
    #: pragma stands alone (so a wrapped call can carry the waiver
    #: immediately above it).
    applies_to: tuple[int, ...] = ()


@dataclass
class SourceFile:
    """One parsed module presented to the checkers.

    ``relpath`` is repository-relative with a leading ``src/``
    stripped, so scope prefixes are written once (``repro/sim/``) and
    match wherever the tree is checked out.
    """

    relpath: str
    text: str
    path: Path | None = None
    _tree: ast.AST | None = field(default=None, repr=False)
    _pragmas: dict[int, Pragma] | None = field(default=None, repr=False)
    _pragma_errors: list[Finding] | None = field(default=None, repr=False)

    @property
    def tree(self) -> ast.AST:
        """The module AST; :class:`AnalysisError` on a syntax error."""
        if self._tree is None:
            try:
                self._tree = ast.parse(self.text, filename=self.relpath)
            except SyntaxError as exc:
                raise AnalysisError(
                    f"cannot parse {self.relpath}: {exc.msg} (line {exc.lineno})"
                ) from None
        return self._tree

    @property
    def lines(self) -> list[str]:
        return self.text.splitlines()

    def _comments(self) -> Iterable[tuple[int, str, bool]]:
        """Real comment tokens as ``(line, text, standalone)`` — a
        pragma-looking string inside a docstring is not a pragma."""
        import io
        import tokenize

        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.text).readline)
            for token in tokens:
                if token.type == tokenize.COMMENT:
                    standalone = token.line.strip().startswith("#")
                    yield token.start[0], token.string, standalone
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return

    def _scan_pragmas(self) -> None:
        if self._pragmas is not None:
            return
        pragmas: dict[int, Pragma] = {}
        errors: list[Finding] = []
        for lineno, raw, standalone in self._comments():
            if "repro:" not in raw:
                continue
            match = PRAGMA_RE.search(raw)
            if match is None:
                if re.search(r"#\s*repro:\s*allow", raw):
                    errors.append(Finding(
                        code=PRAGMA_CODE, path=self.relpath, line=lineno,
                        message="malformed pragma; the form is "
                                "`# repro: allow[CODE] reason`",
                    ))
                continue
            codes = tuple(
                code.strip() for code in match.group("codes").split(",")
                if code.strip()
            )
            reason = match.group("reason").strip()
            if not codes or not reason:
                errors.append(Finding(
                    code=PRAGMA_CODE, path=self.relpath, line=lineno,
                    message="pragma needs both a code list and a reason: "
                            "`# repro: allow[CODE] reason`",
                ))
                continue
            applies = (lineno, lineno + 1) if standalone else (lineno,)
            pragmas[lineno] = Pragma(
                line=lineno, codes=codes, reason=reason, applies_to=applies
            )
        self._pragmas = pragmas
        self._pragma_errors = errors

    @property
    def pragmas(self) -> dict[int, Pragma]:
        self._scan_pragmas()
        assert self._pragmas is not None
        return self._pragmas

    @property
    def pragma_errors(self) -> list[Finding]:
        self._scan_pragmas()
        assert self._pragma_errors is not None
        return self._pragma_errors

    def pragma_for(self, code: str, line: int) -> Pragma | None:
        """The pragma waiving ``code`` at ``line``, if any."""
        for pragma in self.pragmas.values():
            if line in pragma.applies_to and code in pragma.codes:
                return pragma
        return None


class Checker(ABC):
    """One machine-enforced invariant over the source tree.

    Subclasses set :attr:`code` (registry key, also the finding code),
    :attr:`name` (human slug), :attr:`description` and :attr:`scope`.
    Per-file checkers implement :meth:`check_file`; whole-tree checkers
    (cross-file state, e.g. trace-kind consistency) override
    :meth:`run` instead.
    """

    #: Registry key and finding code (``RPR001``); subclasses override.
    code: str = ""
    #: Short slug for listings (``determinism``).
    name: str = ""
    #: One-line description for ``repro lint --list``.
    description: str = ""
    #: Path prefixes this checker patrols.  A directory scope ends in
    #: ``/``; a file scope names the file.  Empty means every file.
    scope: tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        if not self.scope:
            return True
        return any(
            relpath.startswith(prefix) if prefix.endswith("/") else relpath == prefix
            for prefix in self.scope
        )

    def run(self, files: Sequence[SourceFile]) -> list[Finding]:
        """Findings over the whole file set (default: per-file scan)."""
        findings: list[Finding] = []
        for file in files:
            if self.applies_to(file.relpath):
                findings.extend(self.check_file(file))
        return findings

    def check_file(self, file: SourceFile) -> Iterable[Finding]:
        """Findings for one in-scope file (per-file checkers)."""
        return ()

    def finding(
        self, file: SourceFile, node: ast.AST, message: str
    ) -> Finding:
        """A :class:`Finding` of this checker's code at ``node``."""
        return Finding(
            code=self.code,
            path=file.relpath,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def apply_suppressions(
    findings: Iterable[Finding],
    files: Sequence[SourceFile],
    baseline_waivers: set[tuple[str, str]],
) -> list[Finding]:
    """Mark each finding's suppression state and flag stale pragmas.

    A pragma that waives nothing is itself a defect (the invariant it
    excused no longer exists there) and comes back as an active
    :data:`PRAGMA_CODE` finding, so waivers cannot quietly outlive
    their reasons.  Baseline entries are matched on ``(code, path)``;
    unused ones are reported by the engine, not here.
    """
    by_path = {file.relpath: file for file in files}
    used_pragmas: set[tuple[str, int]] = set()
    out: list[Finding] = []
    for finding in findings:
        file = by_path.get(finding.path)
        pragma = file.pragma_for(finding.code, finding.line) if file else None
        if pragma is not None:
            used_pragmas.add((finding.path, pragma.line))
            out.append(replace(finding, state="pragma"))
        elif (finding.code, finding.path) in baseline_waivers:
            out.append(replace(finding, state="baseline"))
        else:
            out.append(finding)
    for file in files:
        out.extend(file.pragma_errors)
        for pragma in file.pragmas.values():
            if (file.relpath, pragma.line) not in used_pragmas:
                out.append(Finding(
                    code=PRAGMA_CODE, path=file.relpath, line=pragma.line,
                    message=f"stale pragma: allow[{','.join(pragma.codes)}] "
                            f"suppresses nothing on this line — remove it",
                ))
    return sorted(out, key=Finding.sort_key)
