"""Failure injection: crash, Byzantine and timing faults.

The paper's evaluation injects a single value-domain fault and measures
fail-over; the protocol design additionally tolerates crashes, timing
failures and (for less than one third of processes) arbitrary Byzantine
behaviour.  This package provides scripted fault *plans* that protocol
actors consult at their decision points, plus an injector that arms
plans at virtual times.
"""

from repro.failures.faults import (
    CrashFault,
    EquivocationFault,
    FaultPlan,
    ForgeSignatureFault,
    MutateEndorsementFault,
    WithholdOrdersFault,
    WrongDigestFault,
)
from repro.failures.injector import FaultInjector

__all__ = [
    "CrashFault",
    "EquivocationFault",
    "FaultInjector",
    "FaultPlan",
    "ForgeSignatureFault",
    "MutateEndorsementFault",
    "WithholdOrdersFault",
    "WrongDigestFault",
]
