"""Fault plans: what a faulty process does once its fault activates.

A plan is attached to one process and consulted at the protocol's
decision points.  Before ``active_from`` the process behaves correctly;
afterwards the plan's hooks fire.  All hooks default to correct
behaviour so each plan overrides only what it corrupts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class FaultPlan:
    """Base plan: a correct process (no-op hooks).

    Attributes
    ----------
    active_from:
        Virtual time at which the fault switches on.
    """

    active_from: float = 0.0

    def active(self, now: float) -> bool:
        """Whether the fault is in effect at virtual time ``now``."""
        return now >= self.active_from

    # Hook points --------------------------------------------------------
    def drops_message(self, now: float, payload: Any, dest: str) -> bool:
        """True if the process should silently not send this message."""
        return False

    def is_crashed(self, now: float) -> bool:
        """True if the process has crashed (no sends, no processing)."""
        return False

    def mutate_order_digest(self, now: float, digest: bytes) -> bytes:
        """Possibly corrupt a digest the coordinator is about to sign."""
        return digest

    def withholds_orders(self, now: float) -> bool:
        """True if the coordinator silently stops ordering requests."""
        return False

    def equivocates(self, now: float) -> bool:
        """True if the coordinator proposes conflicting orders."""
        return False

    def forges(self, now: float) -> bool:
        """True if the process attempts signature forgery."""
        return False

    def mutates_endorsement(self, now: float) -> bool:
        """True if a shadow alters an order before endorsing it."""
        return False


@dataclass
class CrashFault(FaultPlan):
    """Silent crash: the process stops sending and processing."""

    def is_crashed(self, now: float) -> bool:
        return self.active(now)


@dataclass
class WrongDigestFault(FaultPlan):
    """Value-domain fault: the coordinator signs orders with a corrupted
    request digest.  Its shadow detects the mismatch and fail-signals.
    This is the fault the paper injects for the Figure 6 measurements."""

    corruption: bytes = b"\xde\xad"

    def mutate_order_digest(self, now: float, digest: bytes) -> bytes:
        if not self.active(now):
            return digest
        return (self.corruption * (len(digest) // len(self.corruption) + 1))[: len(digest)]


@dataclass
class WithholdOrdersFault(FaultPlan):
    """Time-domain fault: the coordinator stops assigning orders.  Its
    shadow notices the missing outputs and fail-signals."""

    def withholds_orders(self, now: float) -> bool:
        return self.active(now)


@dataclass
class EquivocationFault(FaultPlan):
    """The coordinator proposes two different batches for the same
    sequence number (to its shadow, or — for BFT — to different
    replica subsets)."""

    def equivocates(self, now: float) -> bool:
        return self.active(now)


@dataclass
class ForgeSignatureFault(FaultPlan):
    """The process emits messages carrying forged signatures of a victim."""

    victim: str = ""

    def forges(self, now: float) -> bool:
        return self.active(now)


@dataclass
class MutateEndorsementFault(FaultPlan):
    """A Byzantine shadow alters the order it was asked to endorse; the
    paired replica observes the corrupted multicast and fail-signals."""

    corruption: bytes = b"\x66"

    def mutates_endorsement(self, now: float) -> bool:
        return self.active(now)


@dataclass
class DelaySurgeFault(FaultPlan):
    """Timing fault for SCR studies: not attached to a process but to a
    pair link, inflating delays during ``[active_from, until)`` so that
    delay estimates become temporarily inaccurate (assumption 3(b)(i))."""

    until: float = field(default=0.0)
    factor: float = 10.0
