"""Arms fault plans on processes and delay surges on links.

Besides the direct object API (:meth:`FaultInjector.inject` /
:meth:`FaultInjector.surge_link`), the injector understands the
*declarative* form scenario specs use: a fault kind name, a target
("coordinator" resolves through the protocol plugin registry, plain
names address processes, ``"pair:<rank>"`` addresses a pair link) and
an activation time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import ConfigError
from repro.failures.faults import (
    CrashFault,
    DelaySurgeFault,
    EquivocationFault,
    FaultPlan,
    ForgeSignatureFault,
    MutateEndorsementFault,
    WithholdOrdersFault,
    WrongDigestFault,
)
from repro.net.delay import SurgeableDelay
from repro.sim.kernel import Simulator

if TYPE_CHECKING:
    from repro.harness.cluster import Cluster

#: Declarative fault vocabulary (scenario specs name these kinds).
FAULT_KINDS: dict[str, type[FaultPlan]] = {
    "crash": CrashFault,
    "wrong_digest": WrongDigestFault,
    "withhold_orders": WithholdOrdersFault,
    "equivocate": EquivocationFault,
    "forge_signature": ForgeSignatureFault,
    "mutate_endorsement": MutateEndorsementFault,
    "delay_surge": DelaySurgeFault,
}


def fault_kinds() -> tuple[str, ...]:
    """The fault kind names scenario specs may use."""
    return tuple(FAULT_KINDS)


class FaultInjector:
    """Schedules faults into a running simulation.

    Process faults are attached directly (``process.fault = plan``);
    the process consults the plan's hooks.  Link faults require the
    link's delay model to be a :class:`SurgeableDelay`.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.injected: list[tuple[str, FaultPlan]] = []

    def inject(self, process: Any, plan: FaultPlan) -> None:
        """Attach ``plan`` to ``process`` (anything with a ``fault`` slot)."""
        if not hasattr(process, "fault"):
            raise ConfigError(f"{process!r} does not accept fault plans")
        process.fault = plan
        self.injected.append((getattr(process, "name", repr(process)), plan))
        self.sim.trace.emit(
            self.sim.now,
            "fault_injected",
            target=getattr(process, "name", "?"),
            fault=type(plan).__name__,
            active_from=plan.active_from,
        )

    def surge_link(self, link: SurgeableDelay, plan: DelaySurgeFault) -> None:
        """Schedule a delay surge on a (pair) link."""
        if plan.until <= plan.active_from:
            raise ConfigError("surge window is empty")
        link.add_surge(plan.active_from, plan.until, factor=plan.factor)
        self.sim.trace.emit(
            self.sim.now,
            "surge_injected",
            start=plan.active_from,
            end=plan.until,
            factor=plan.factor,
        )

    # ------------------------------------------------------------------
    # Declarative injection (scenario specs)
    # ------------------------------------------------------------------
    def inject_named(
        self,
        cluster: "Cluster",
        kind: str,
        target: str = "coordinator",
        at: float = 0.0,
        **params: Any,
    ) -> FaultPlan:
        """Build a fault plan from its kind name and arm it.

        ``target`` is a process name, ``"coordinator"`` (resolved to
        the cluster protocol's initial coordinator via the plugin
        registry), or ``"pair:<rank>"`` for a pair-link delay surge.
        Extra ``params`` are forwarded to the plan constructor (e.g.
        ``until``/``factor`` for ``delay_surge``).
        """
        try:
            plan_cls = FAULT_KINDS[kind]
        except KeyError:
            raise ConfigError(
                f"unknown fault kind {kind!r}; known: {fault_kinds()}"
            ) from None
        try:
            plan = plan_cls(active_from=at, **params)
        except TypeError as exc:
            raise ConfigError(f"bad parameters for fault {kind!r}: {exc}") from None

        if isinstance(plan, DelaySurgeFault):
            self.surge_link(self._resolve_link(cluster, target), plan)
        else:
            self.inject(self._resolve_process(cluster, target), plan)
        return plan

    def _resolve_process(self, cluster: "Cluster", target: str) -> Any:
        name = cluster.coordinator_name if target == "coordinator" else target
        try:
            return cluster.process(name)
        except KeyError:
            raise ConfigError(
                f"fault target {target!r} names no process; deployed: "
                f"{cluster.process_names}"
            ) from None

    def _resolve_link(self, cluster: "Cluster", target: str) -> SurgeableDelay:
        if not target.startswith("pair:"):
            raise ConfigError(
                f"delay_surge targets a pair link, e.g. 'pair:1'; got {target!r}"
            )
        try:
            rank = int(target.split(":", 1)[1])
        except ValueError:
            raise ConfigError(f"bad pair-link target {target!r}") from None
        try:
            return cluster.pair_links[rank]
        except KeyError:
            raise ConfigError(
                f"no pair link with rank {rank}; protocol {cluster.protocol!r} "
                f"deploys links {tuple(cluster.pair_links)}"
            ) from None
