"""Arms fault plans on processes and delay surges on links."""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigError
from repro.failures.faults import DelaySurgeFault, FaultPlan
from repro.net.delay import SurgeableDelay
from repro.sim.kernel import Simulator


class FaultInjector:
    """Schedules faults into a running simulation.

    Process faults are attached directly (``process.fault = plan``);
    the process consults the plan's hooks.  Link faults require the
    link's delay model to be a :class:`SurgeableDelay`.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.injected: list[tuple[str, FaultPlan]] = []

    def inject(self, process: Any, plan: FaultPlan) -> None:
        """Attach ``plan`` to ``process`` (anything with a ``fault`` slot)."""
        if not hasattr(process, "fault"):
            raise ConfigError(f"{process!r} does not accept fault plans")
        process.fault = plan
        self.injected.append((getattr(process, "name", repr(process)), plan))
        self.sim.trace.emit(
            self.sim.now,
            "fault_injected",
            target=getattr(process, "name", "?"),
            fault=type(plan).__name__,
            active_from=plan.active_from,
        )

    def surge_link(self, link: SurgeableDelay, plan: DelaySurgeFault) -> None:
        """Schedule a delay surge on a (pair) link."""
        if plan.until <= plan.active_from:
            raise ConfigError("surge window is empty")
        link.surge_factor = plan.factor
        link.add_surge(plan.active_from, plan.until)
        self.sim.trace.emit(
            self.sim.now,
            "surge_injected",
            start=plan.active_from,
            end=plan.until,
            factor=plan.factor,
        )
