"""The PBFT replica.

Normal case (Figure 3(b) of the paper):

1. **pre-prepare (1 → n)** — the primary assigns sequence numbers to a
   batch, signs a PrePrepare and multicasts it;
2. **prepare (n → n)** — each backup validates the proposal, signs a
   Prepare and multicasts it; a replica is *prepared* once it holds the
   pre-prepare and ``2f`` matching prepares from distinct backups;
3. **commit (n → n)** — prepared replicas multicast signed Commits; a
   batch commits locally at ``2f + 1`` matching commits.

Per batch, every replica therefore receives ~``2n`` messages and
verifies ~``2n`` signatures, against SC's 2 order copies + ``n − 1``
acks — this receive/verify asymmetry is the mechanism behind BFT's
higher latency and earlier saturation in Figures 4 and 5.

The view change is the standard one (view-change messages carrying
prepared proofs; the new primary re-issues pre-prepares in a NewView).
It exists for failure tests and completeness; the paper's measurements
only exercise BFT's failure-free path.
"""

from __future__ import annotations

from typing import Any

from repro.calibration import CalibrationProfile
from repro.baselines.bft.messages import (
    BftNewView,
    BftViewChange,
    Commit,
    PrePrepare,
    Prepare,
    PreparedProof,
)
from repro.core.batching import Batcher
from repro.core.checkpoint import Checkpoint as SmrCheckpoint
from repro.core.checkpoint import CheckpointTracker
from repro.core.config import ProtocolConfig
from repro.core.messages import OrderBatch, OrderEntry, SignedMessage, payload_size
from repro.core.replies import Reply, result_digest
from repro.core.process import OrderProcessBase
from repro.core.requests import ClientRequest
from repro.core.service import ReplicatedStateMachine
from repro.crypto.digests import digest
from repro.crypto.encoding import canonical_bytes
from repro.crypto.signing import SignatureProvider
from repro.net.addresses import base_index, replica_name
from repro.net.network import Network
from repro.sim.kernel import Simulator


class _BatchState:
    """Per-(view, seq) agreement state at one replica."""

    __slots__ = (
        "pre_prepare",
        "batch",
        "digest",
        "prepares",
        "prepare_msgs",
        "commits",
        "sent_prepare",
        "sent_commit",
        "committed",
    )

    def __init__(self) -> None:
        self.pre_prepare: SignedMessage | None = None
        self.batch: OrderBatch | None = None
        self.digest: bytes | None = None
        self.prepares: set[str] = set()
        self.prepare_msgs: dict[str, SignedMessage] = {}
        self.commits: set[str] = set()
        self.sent_prepare = False
        self.sent_commit = False
        self.committed = False


class BftReplica(OrderProcessBase):
    """One replica of the signature-based PBFT baseline."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        network: Network,
        config: ProtocolConfig,
        provider: SignatureProvider,
        calibration: CalibrationProfile,
    ) -> None:
        super().__init__(sim, name, network, provider, calibration)
        self.config = config
        self.f = config.f
        self.n = 3 * config.f + 1
        self.index = base_index(name)
        self.view = 1
        self.machine = ReplicatedStateMachine(name)
        self.states: dict[tuple[int, int], _BatchState] = {}
        self.committed_seqs: dict[int, OrderBatch] = {}  # first_seq -> batch
        self._exec_next = 1
        self.unordered: list[ClientRequest] = []
        self.ordered_keys: set[tuple[str, int]] = set()
        self.next_assign_seq = 1
        self.batch_counter = 0
        self._batch_timer_armed = False
        # view change state
        self.in_view_change = False
        self.pending_view: int | None = None
        self._view_changes: dict[int, dict[str, SignedMessage]] = {}
        self._voted_views: set[int] = set()
        self.view_timeout = config.view_timeout
        self._liveness_armed = False
        self.last_progress = 0.0
        self.checkpoints = CheckpointTracker(config.f)
        self._last_checkpoint_seq = 0

    # ------------------------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        return tuple(replica_name(i) for i in range(1, self.n + 1))

    @property
    def others(self) -> tuple[str, ...]:
        return tuple(n for n in self.names if n != self.name)

    def primary_of(self, view: int) -> str:
        return replica_name(((view - 1) % self.n) + 1)

    @property
    def primary(self) -> str:
        return self.primary_of(self.view)

    @property
    def is_primary(self) -> bool:
        return self.name == self.primary and not self.in_view_change

    def start(self) -> None:
        self.last_progress = self.sim.now
        if self.is_primary:
            self._arm_batch_timer()
        self._arm_liveness_timer()

    # ------------------------------------------------------------------
    # Receive-cost model: one signature per protocol message
    # ------------------------------------------------------------------
    def verification_service(self, payload: Any, size_bytes: int) -> float:
        if isinstance(payload, ClientRequest):
            return 0.0
        if isinstance(payload, SignedMessage):
            body = payload.body
            if isinstance(body, PrePrepare):
                return self.verify_cost(1, size_bytes)
            if isinstance(body, (Prepare, Commit)):
                state = self.states.get((body.view, body.seq))
                if state is not None and state.committed:
                    return 0.0  # agreement done: discard without verifying
                return self.verify_cost(1, size_bytes)
            if isinstance(body, BftViewChange):
                return self.verify_cost(1, size_bytes)
            if isinstance(body, SmrCheckpoint):
                return self.verify_cost(1, size_bytes)
            if isinstance(body, BftNewView):
                n_inner = len(body.view_changes) + len(body.pre_prepares)
                return self.verify_cost(1 + n_inner, size_bytes)
        return 0.0

    # ------------------------------------------------------------------
    def handle(self, sender: str, payload: Any) -> None:
        if isinstance(payload, ClientRequest):
            self._on_request(payload)
            return
        if not isinstance(payload, SignedMessage):
            return
        body = payload.body
        if isinstance(body, PrePrepare):
            self._on_pre_prepare(sender, payload)
        elif isinstance(body, Prepare):
            self._on_prepare(sender, payload)
        elif isinstance(body, Commit):
            self._on_commit(sender, payload)
        elif isinstance(body, BftViewChange):
            self._on_view_change(sender, payload)
        elif isinstance(body, BftNewView):
            self._on_new_view(sender, payload)
        elif isinstance(body, SmrCheckpoint):
            if sender == body.process and self.check_signed(payload, (body.process,)):
                self._note_checkpoint(body)

    # ------------------------------------------------------------------
    # Primary: batching and pre-prepare
    # ------------------------------------------------------------------
    def _on_request(self, request: ClientRequest) -> None:
        if not self.note_request(request):
            return
        if self.is_primary and request.key not in self.ordered_keys:
            self.unordered.append(request)

    def _arm_batch_timer(self) -> None:
        if self._batch_timer_armed:
            return
        self._batch_timer_armed = True
        self.set_timer(self.config.batching_interval, self._batch_tick)

    def _batch_tick(self) -> None:
        self._batch_timer_armed = False
        if not self.is_primary or self.crashed:
            return
        trace = self.sim.trace
        if trace.wants("queue_depth"):
            trace.emit(self.sim.now, "queue_depth", actor=self.name,
                       depth=len(self.unordered))
        if self.unordered and not self.fault.withholds_orders(self.sim.now):
            self._propose_batch()
        self._arm_batch_timer()

    def _propose_batch(self) -> None:
        batcher = Batcher(self.config.batch_size_bytes)
        requests = batcher.take(self.unordered)
        del self.unordered[: len(requests)]
        self.batch_counter += 1
        batch = batcher.make_batch(
            rank=self.view,
            batch_id=self.batch_counter,
            first_seq=self.next_assign_seq,
            requests=requests,
            digest_name=self.config.scheme.digest,
        )
        self.next_assign_seq = batch.last_seq + 1
        for request in requests:
            self.ordered_keys.add(request.key)
        batch = self._apply_order_faults(batch)
        self.trace(
            "batch_formed",
            batch_id=batch.batch_id,
            rank=self.view,
            first_seq=batch.first_seq,
            n_requests=len(batch.entries),
        )
        trace = self.sim.trace
        if trace.wants("batch_requests"):
            trace.emit(
                self.sim.now, "batch_requests", actor=self.name,
                rank=self.view, batch_id=batch.batch_id,
                keys=tuple((e.client, e.req_id) for e in batch.entries),
            )
        pre = PrePrepare(view=self.view, seq=batch.first_seq, batch=batch)
        signed = self.make_signed(pre)
        if self.fault.equivocates(self.sim.now):
            twin_batch = self._equivocating_twin(batch)
            twin = self.make_signed(
                PrePrepare(view=self.view, seq=batch.first_seq, batch=twin_batch)
            )
            half = len(self.others) // 2
            self.multicast_payload(self.others[:half], signed)
            self.multicast_payload(self.others[half:], twin)
        else:
            self.multicast_payload(self.others, signed)
        self._accept_pre_prepare(signed)

    def _apply_order_faults(self, batch: OrderBatch) -> OrderBatch:
        mutated = tuple(
            OrderEntry(
                seq=e.seq,
                req_digest=self.fault.mutate_order_digest(self.sim.now, e.req_digest),
                client=e.client,
                req_id=e.req_id,
            )
            for e in batch.entries
        )
        if mutated == batch.entries:
            return batch
        return OrderBatch(rank=batch.rank, batch_id=batch.batch_id, entries=mutated)

    def _equivocating_twin(self, batch: OrderBatch) -> OrderBatch:
        entries = tuple(
            OrderEntry(
                seq=e.seq,
                req_digest=digest(self.config.scheme.digest, b"equiv" + e.req_digest),
                client=e.client,
                req_id=e.req_id,
            )
            for e in batch.entries
        )
        return OrderBatch(rank=batch.rank, batch_id=-batch.batch_id, entries=entries)

    # ------------------------------------------------------------------
    # Three-phase agreement
    # ------------------------------------------------------------------
    def _state(self, view: int, seq: int) -> _BatchState:
        state = self.states.get((view, seq))
        if state is None:
            state = _BatchState()
            self.states[(view, seq)] = state
        return state

    def _batch_digest(self, batch: OrderBatch) -> bytes:
        return digest(self.config.scheme.digest, canonical_bytes(batch))

    def _on_pre_prepare(self, sender: str, signed: SignedMessage) -> None:
        pre: PrePrepare = signed.body
        if pre.view != self.view or self.in_view_change:
            return
        if sender != self.primary_of(pre.view):
            return
        if not self.check_signed(signed, (self.primary_of(pre.view),)):
            return
        self._accept_pre_prepare(signed)

    def _accept_pre_prepare(self, signed: SignedMessage) -> None:
        pre: PrePrepare = signed.body
        state = self._state(pre.view, pre.seq)
        batch_digest = self._batch_digest(pre.batch)
        if state.pre_prepare is not None:
            return  # only the first pre-prepare for a slot is accepted
        state.pre_prepare = signed
        state.batch = pre.batch
        state.digest = batch_digest
        if self.name != self.primary_of(pre.view):
            prepare = Prepare(
                view=pre.view, seq=pre.seq, batch_digest=batch_digest, replica=self.name
            )
            signed_prepare = self.make_signed(prepare)
            state.prepares.add(self.name)
            state.prepare_msgs[self.name] = signed_prepare
            state.sent_prepare = True
            self.multicast_payload(self.others, signed_prepare)
        self._maybe_prepared(pre.view, pre.seq)

    def _on_prepare(self, sender: str, signed: SignedMessage) -> None:
        prepare: Prepare = signed.body
        if sender != prepare.replica or prepare.view != self.view or self.in_view_change:
            return
        if sender == self.primary_of(prepare.view):
            return  # the primary never prepares
        if not self.check_signed(signed, (prepare.replica,)):
            return
        state = self._state(prepare.view, prepare.seq)
        if state.digest is not None and prepare.batch_digest != state.digest:
            return  # conflicting prepare; ignore (primary equivocated)
        state.prepares.add(prepare.replica)
        state.prepare_msgs[prepare.replica] = signed
        self._maybe_prepared(prepare.view, prepare.seq)

    def _maybe_prepared(self, view: int, seq: int) -> None:
        state = self._state(view, seq)
        if state.sent_commit or state.pre_prepare is None:
            return
        if len(state.prepares) < 2 * self.f:
            return
        state.sent_commit = True
        commit = Commit(view=view, seq=seq, batch_digest=state.digest, replica=self.name)
        signed_commit = self.make_signed(commit)
        state.commits.add(self.name)
        self.multicast_payload(self.others, signed_commit)
        self._maybe_committed(view, seq)

    def _on_commit(self, sender: str, signed: SignedMessage) -> None:
        commit: Commit = signed.body
        if sender != commit.replica or commit.view != self.view or self.in_view_change:
            return
        if not self.check_signed(signed, (commit.replica,)):
            return
        state = self._state(commit.view, commit.seq)
        if state.digest is not None and commit.batch_digest != state.digest:
            return
        state.commits.add(commit.replica)
        self._maybe_committed(commit.view, commit.seq)

    def _maybe_committed(self, view: int, seq: int) -> None:
        state = self._state(view, seq)
        if state.committed or state.batch is None:
            return
        if len(state.commits) < 2 * self.f + 1:
            return
        state.committed = True
        self.committed_seqs[seq] = state.batch
        self.last_progress = self.sim.now
        self.trace(
            "order_committed",
            batch_id=state.batch.batch_id,
            rank=view,
            first_seq=seq,
            n_requests=len(state.batch.entries),
        )
        self._execute_ready()

    def _execute_ready(self) -> None:
        progressed = False
        while self._exec_next in self.committed_seqs:
            batch = self.committed_seqs[self._exec_next]
            for entry in batch.entries:
                self.machine.apply(entry)
                if self.config.send_replies and self.network.has_actor(entry.client):
                    self.send_payload(
                        entry.client,
                        Reply(
                            replier=self.name,
                            client=entry.client,
                            req_id=entry.req_id,
                            seq=entry.seq,
                            result_digest=result_digest(entry),
                        ),
                    )
            self._exec_next = batch.last_seq + 1
            progressed = True
        if progressed:
            self._maybe_emit_checkpoint()

    def _maybe_emit_checkpoint(self) -> None:
        interval = self.config.checkpoint_interval
        if interval <= 0:
            return
        applied = self.machine.applied_seq
        if applied - self._last_checkpoint_seq < interval:
            return
        self._last_checkpoint_seq = applied
        claim = SmrCheckpoint(
            process=self.name, seq=applied, state_digest=self.machine.state_digest()
        )
        signed = self.make_signed(claim)
        self._note_checkpoint(claim)
        self.multicast_payload(self.others, signed)

    def _note_checkpoint(self, claim: SmrCheckpoint) -> None:
        if self.checkpoints.note(claim):
            stable = self.checkpoints.stable_seq
            victims = [
                key
                for key, state in self.states.items()
                if state.committed and state.batch is not None
                and state.batch.last_seq <= stable
            ]
            for key in victims:
                del self.states[key]
            executed = [
                seq
                for seq, batch in self.committed_seqs.items()
                if batch.last_seq <= stable and seq < self._exec_next
            ]
            for seq in executed:
                del self.committed_seqs[seq]
            self.trace("checkpoint_stable", seq=stable, dropped=len(victims))

    # ------------------------------------------------------------------
    # View change
    # ------------------------------------------------------------------
    def _arm_liveness_timer(self) -> None:
        if self._liveness_armed:
            return
        self._liveness_armed = True
        self.set_timer(self.view_timeout / 2, self._liveness_tick)

    def _liveness_tick(self) -> None:
        self._liveness_armed = False
        if self.crashed:
            return
        stalled = self.sim.now - self.last_progress > self.view_timeout
        waiting = any(k not in self.ordered_keys for k in self.pending) or any(
            not s.committed and s.pre_prepare is not None for s in self.states.values()
        )
        if stalled and waiting and not self.is_primary:
            self._call_view_change(self.view + 1)
        self._arm_liveness_timer()

    def _call_view_change(self, new_view: int) -> None:
        if new_view in self._voted_views or new_view <= self.view:
            return
        self._voted_views.add(new_view)
        self.in_view_change = True
        self.pending_view = max(self.pending_view or 0, new_view)
        prepared: list[PreparedProof] = []
        for (view, seq), state in sorted(self.states.items()):
            if state.committed or state.pre_prepare is None:
                continue
            if len(state.prepares) >= 2 * self.f:
                proofs = tuple(
                    state.prepare_msgs[name]
                    for name in sorted(state.prepare_msgs)
                )[: 2 * self.f]
                prepared.append(
                    PreparedProof(pre_prepare=state.pre_prepare, prepares=proofs)
                )
        body = BftViewChange(
            new_view=new_view,
            replica=self.name,
            last_committed=self._exec_next - 1,
            committed_proof=None,
            prepared=tuple(prepared),
        )
        signed = self.make_signed(body)
        self.trace("view_change_sent", view=new_view)
        if self.name == self.primary_of(new_view):
            self._note_view_change(signed)
        self.multicast_payload(self.others, signed)

    def _on_view_change(self, sender: str, signed: SignedMessage) -> None:
        vc: BftViewChange = signed.body
        if sender != vc.replica or not self.check_signed(signed, (vc.replica,)):
            return
        if vc.new_view <= self.view:
            return
        if vc.new_view not in self._voted_views:
            self._call_view_change(vc.new_view)
        self._note_view_change(signed)

    def _note_view_change(self, signed: SignedMessage) -> None:
        vc: BftViewChange = signed.body
        votes = self._view_changes.setdefault(vc.new_view, {})
        votes[vc.replica] = signed
        if self.name != self.primary_of(vc.new_view):
            return
        if len(votes) < 2 * self.f + 1:
            return
        self._emit_new_view(vc.new_view)

    def _emit_new_view(self, new_view: int) -> None:
        if self.view >= new_view:
            return
        votes = self._view_changes[new_view]
        chosen = tuple(votes[name] for name in sorted(votes))[: 2 * self.f + 1]
        # Re-issue pre-prepares for every prepared batch reported.
        by_seq: dict[int, SignedMessage] = {}
        for signed_vc in chosen:
            vc: BftViewChange = signed_vc.body
            for proof in vc.prepared:
                pre: PrePrepare = proof.pre_prepare.body
                if pre.seq not in by_seq and pre.seq not in self.committed_seqs:
                    by_seq[pre.seq] = proof.pre_prepare
        reissued = []
        for seq in sorted(by_seq):
            old: PrePrepare = by_seq[seq].body
            reissued.append(
                self.make_signed(PrePrepare(view=new_view, seq=seq, batch=old.batch))
            )
        body = BftNewView(
            new_view=new_view, view_changes=chosen, pre_prepares=tuple(reissued)
        )
        signed = self.make_signed(body)
        self.trace("new_view_sent", view=new_view)
        self.multicast_payload(self.others, signed)
        self._enter_view(new_view, tuple(reissued))

    def _on_new_view(self, sender: str, signed: SignedMessage) -> None:
        nv: BftNewView = signed.body
        if nv.new_view <= self.view:
            return
        if sender != self.primary_of(nv.new_view):
            return
        if not self.check_signed(signed, (self.primary_of(nv.new_view),)):
            return
        if len(nv.view_changes) < 2 * self.f + 1:
            return
        self._enter_view(nv.new_view, nv.pre_prepares)

    def _enter_view(self, new_view: int, pre_prepares: tuple[SignedMessage, ...]) -> None:
        self.view = new_view
        self.in_view_change = False
        self.pending_view = None
        self.last_progress = self.sim.now
        self.trace("view_installed", view=new_view)
        max_seq = self._exec_next - 1
        for signed_pre in pre_prepares:
            pre: PrePrepare = signed_pre.body
            max_seq = max(max_seq, pre.batch.last_seq)
            self._accept_pre_prepare(signed_pre)
        if self.is_primary:
            self.next_assign_seq = max(self.next_assign_seq, max_seq + 1)
            self._rebuild_unordered()
            self._arm_batch_timer()

    def _rebuild_unordered(self) -> None:
        sequenced: set[tuple[str, int]] = set()
        for state in self.states.values():
            if state.batch is None:
                continue
            for entry in state.batch.entries:
                sequenced.add((entry.client, entry.req_id))
        self.unordered = [
            request
            for key, request in sorted(self.pending.items())
            if key not in sequenced
        ]
        self.ordered_keys = set(sequenced) | {r.key for r in self.unordered}
