"""PBFT message types (signature-based variant, as the paper evaluates)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.messages import HEADER_BYTES, CommitProof, OrderBatch, SignedMessage


@dataclass(frozen=True)
class PrePrepare:
    """Primary's proposal: the batch with its assigned sequence."""

    view: int
    seq: int  # first sequence number of the batch
    batch: OrderBatch

    def payload_bytes(self) -> int:
        return HEADER_BYTES + self.batch.payload_bytes()


@dataclass(frozen=True)
class Prepare:
    """A backup's agreement to (view, seq, digest)."""

    view: int
    seq: int
    batch_digest: bytes
    replica: str

    def payload_bytes(self) -> int:
        return HEADER_BYTES + len(self.batch_digest)


@dataclass(frozen=True)
class Commit:
    """A replica's commit vote for (view, seq, digest)."""

    view: int
    seq: int
    batch_digest: bytes
    replica: str

    def payload_bytes(self) -> int:
        return HEADER_BYTES + len(self.batch_digest)


@dataclass(frozen=True)
class PreparedProof:
    """Evidence that a batch prepared at a replica: the pre-prepare and
    ``2f`` matching prepares (carried inside view-change messages)."""

    pre_prepare: SignedMessage  # SignedMessage[PrePrepare]
    prepares: tuple[SignedMessage, ...]  # SignedMessage[Prepare]

    def payload_bytes(self) -> int:
        size = self.pre_prepare.body.payload_bytes() + self.pre_prepare.signature_bytes
        for prepare in self.prepares:
            size += prepare.body.payload_bytes() + prepare.signature_bytes
        return size


@dataclass(frozen=True)
class BftViewChange:
    """A replica's vote to move to ``new_view``."""

    new_view: int
    replica: str
    last_committed: int
    committed_proof: CommitProof | None
    prepared: tuple[PreparedProof, ...]

    def payload_bytes(self) -> int:
        size = HEADER_BYTES
        if self.committed_proof is not None:
            size += self.committed_proof.payload_bytes()
        for proof in self.prepared:
            size += proof.payload_bytes()
        return size


@dataclass(frozen=True)
class BftNewView:
    """New primary's installation message: the view-change quorum it
    collected and the pre-prepares it re-issues."""

    new_view: int
    view_changes: tuple[SignedMessage, ...]  # SignedMessage[BftViewChange]
    pre_prepares: tuple[SignedMessage, ...]  # SignedMessage[PrePrepare]

    def payload_bytes(self) -> int:
        size = HEADER_BYTES
        for vc in self.view_changes:
            size += vc.body.payload_bytes() + vc.signature_bytes
        for pp in self.pre_prepares:
            size += pp.body.payload_bytes() + pp.signature_bytes
        return size
