"""Castro–Liskov-style BFT baseline (the paper's comparator).

Signature-based PBFT with the classic three-phase normal case
(pre-prepare, prepare, commit) over ``n = 3f + 1`` replicas, plus a
view change for crash/withholding primaries.  The paper's Figure 3(b)
depicts exactly this message pattern: 1 → n, n → n, n → n.
"""

from repro.baselines.bft.replica import BftReplica
from repro.baselines.bft.messages import Commit, PrePrepare, Prepare

__all__ = ["BftReplica", "Commit", "PrePrepare", "Prepare"]
