"""CT: the crash-tolerant baseline (Section 5).

"CT is simply derived from SC, with no process being paired and no
cryptographic techniques used.  Specifically, the shadow processes are
excluded from the system (hence n = 2f+1), the coordinator process
directly sends its order message to all other processes, and an order
message is committed in the same way as SC."

So the phases are: **1 → n** (coordinator to all) and **n → n** (acks),
with commit at ``n − f`` distinct ack-or-order evidence.  The paper
uses CT to show how much switching from crash to Byzantine fault
tolerance costs BFT and SC; its steady-state latency (~10 ms on the
2006 testbed) anchors the calibration.

Crash fail-over (not measured by the paper but needed for a usable
library): processes detect coordinator silence with a simple timeout
and deterministically move to the next replica in index order,
exchanging the same BackLog/Start shapes as SC — minus all signatures.
"""

from __future__ import annotations

from typing import Any

from repro.calibration import CalibrationProfile
from repro.core.batching import Batcher
from repro.core.checkpoint import Checkpoint, CheckpointTracker
from repro.core.config import ProtocolConfig
from repro.core.install import BacklogView, compute_new_backlog
from repro.core.log import OrderLog
from repro.core.replies import Reply, result_digest
from repro.core.messages import (
    Ack,
    BackLog,
    OrderBatch,
    SignedMessage,
    Start,
    payload_size,
)
from repro.core.process import OrderProcessBase
from repro.core.requests import ClientRequest
from repro.core.sc import INSTALL_CLIENT, make_install_batch
from repro.core.service import ReplicatedStateMachine
from repro.crypto.signing import SignatureProvider
from repro.net.addresses import base_index, replica_name
from repro.net.network import Network
from repro.sim.kernel import Simulator


def _plain(body: Any) -> SignedMessage:
    """CT carries no signatures; wrap bodies in an empty chain so the
    shared message/log machinery applies unchanged."""
    return SignedMessage(body=body, signatures=())


class CtProcess(OrderProcessBase):
    """One order process of the crash-tolerant baseline."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        network: Network,
        config: ProtocolConfig,
        provider: SignatureProvider,
        calibration: CalibrationProfile,
    ) -> None:
        super().__init__(sim, name, network, provider, calibration)
        self.config = config
        self.index = base_index(name)
        self.c = 1
        self.n = config.replica_count
        self.quorum = self.n - config.f
        self.log = OrderLog(self.quorum)
        self.machine = ReplicatedStateMachine(name)
        self.next_expected = 1
        self._exec_next = 1
        self.parked: dict[int, SignedMessage] = {}
        self.unordered: list[ClientRequest] = []
        self.ordered_keys: set[tuple[str, int]] = set()
        self.sequenced_keys: set[tuple[str, int]] = set()
        self.next_assign_seq = 1
        self.batch_counter = 0
        self._batch_timer_armed = False
        # fail-over state
        self.installing = False
        self.install_target: int | None = None
        self.backlogs: dict[str, SignedMessage] = {}
        self._start_done: set[int] = set()
        self.last_heard_from_coordinator = 0.0
        self._liveness_armed = False
        self.crash_timeout = 10 * config.batching_interval
        self.checkpoints = CheckpointTracker(config.f)
        self._last_checkpoint_seq = 0

    # ------------------------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        return self.config.replica_names

    @property
    def others(self) -> tuple[str, ...]:
        return tuple(n for n in self.names if n != self.name)

    @property
    def coordinator(self) -> str:
        return replica_name(self.c)

    @property
    def is_coordinator(self) -> bool:
        return self.index == self.c and not self.installing

    def start(self) -> None:
        self.last_heard_from_coordinator = self.sim.now
        if self.is_coordinator:
            self._arm_batch_timer()
        else:
            self._arm_liveness_timer()

    # ------------------------------------------------------------------
    # Costs: no crypto; just marshalling and handling
    # ------------------------------------------------------------------
    def verification_service(self, payload: Any, size_bytes: int) -> float:
        return 0.0

    # ------------------------------------------------------------------
    def handle(self, sender: str, payload: Any) -> None:
        if sender == self.coordinator:
            self.last_heard_from_coordinator = self.sim.now
        if isinstance(payload, ClientRequest):
            self._on_request(payload)
        elif isinstance(payload, SignedMessage):
            body = payload.body
            if isinstance(body, OrderBatch):
                self._on_order(sender, payload)
            elif isinstance(body, Ack):
                self._on_ack(sender, payload)
            elif isinstance(body, BackLog):
                self._on_backlog(sender, payload)
            elif isinstance(body, Start):
                self._on_start(sender, payload)
            elif isinstance(body, Checkpoint):
                if sender == body.process:
                    self._note_checkpoint(body)

    # ------------------------------------------------------------------
    # Coordinator: batch and disseminate (1 -> n)
    # ------------------------------------------------------------------
    def _on_request(self, request: ClientRequest) -> None:
        if not self.note_request(request):
            return
        if self.is_coordinator and request.key not in self.ordered_keys:
            self.unordered.append(request)

    def _arm_batch_timer(self) -> None:
        if self._batch_timer_armed:
            return
        self._batch_timer_armed = True
        self.set_timer(self.config.batching_interval, self._batch_tick)

    def _batch_tick(self) -> None:
        self._batch_timer_armed = False
        if not self.is_coordinator or self.crashed:
            return
        trace = self.sim.trace
        if trace.wants("queue_depth"):
            trace.emit(self.sim.now, "queue_depth", actor=self.name,
                       depth=len(self.unordered))
        if self.unordered and not self.fault.withholds_orders(self.sim.now):
            batcher = Batcher(self.config.batch_size_bytes)
            requests = batcher.take(self.unordered)
            del self.unordered[: len(requests)]
            self.batch_counter += 1
            batch = batcher.make_batch(
                rank=self.c,
                batch_id=self.batch_counter,
                first_seq=self.next_assign_seq,
                requests=requests,
                digest_name=self.config.scheme.digest,
            )
            self.next_assign_seq = batch.last_seq + 1
            for request in requests:
                self.ordered_keys.add(request.key)
            self.trace(
                "batch_formed",
                batch_id=batch.batch_id,
                rank=batch.rank,
                first_seq=batch.first_seq,
                n_requests=len(batch.entries),
            )
            if trace.wants("batch_requests"):
                trace.emit(
                    self.sim.now, "batch_requests", actor=self.name,
                    rank=batch.rank, batch_id=batch.batch_id,
                    keys=tuple((e.client, e.req_id) for e in batch.entries),
                )
            order = _plain(batch)
            self.multicast_payload(self.others, order)
            self._process_order(order)
        self._arm_batch_timer()

    # ------------------------------------------------------------------
    # Normal part (same commit rule as SC)
    # ------------------------------------------------------------------
    def _on_order(self, sender: str, signed: SignedMessage) -> None:
        batch: OrderBatch = signed.body
        if batch.entries and batch.entries[0].client == INSTALL_CLIENT:
            return
        if batch.rank != self.c or self.installing:
            return
        if sender != self.coordinator:
            return
        self._process_order(signed)

    def _process_order(self, signed: SignedMessage) -> None:
        batch: OrderBatch = signed.body
        if batch.first_seq > self.next_expected:
            self.parked.setdefault(batch.first_seq, signed)
            return
        slot = self.log.slots.get(batch.first_seq)
        if slot is not None and slot.acked:
            return
        self._ack_order(signed)
        while self.next_expected in self.parked:
            self._ack_order(self.parked.pop(self.next_expected))

    def _ack_order(self, signed: SignedMessage) -> None:
        batch: OrderBatch = signed.body
        slot = self.log.note_order(signed)
        if slot.acked:
            return
        slot.acked = True
        for entry in batch.entries:
            self.sequenced_keys.add((entry.client, entry.req_id))
        self.next_expected = max(self.next_expected, batch.last_seq + 1)
        # The coordinator's own order message already stands as its
        # contribution; every process adds its ack.
        slot.support.add(self.coordinator)
        ack = _plain(Ack(acker=self.name, order=signed))
        self.log.note_ack(self.name, signed, ack)
        self.multicast_payload(self.others, ack)
        self._maybe_commit(batch.first_seq)

    def _on_ack(self, sender: str, signed_ack: SignedMessage) -> None:
        ack: Ack = signed_ack.body
        if sender != ack.acker:
            return
        body = ack.order.body
        if not isinstance(body, OrderBatch):
            return
        slot = self.log.slots.get(body.first_seq)
        if (slot is None or slot.order is None) and body.rank == self.c:
            if not self.installing:
                if body.entries and body.entries[0].client == INSTALL_CLIENT:
                    pass
                else:
                    self._process_order(ack.order)
        self.log.note_ack(ack.acker, ack.order, signed_ack)
        self._maybe_commit(body.first_seq)

    def _maybe_commit(self, first_seq: int) -> None:
        slot = self.log.slots.get(first_seq)
        if slot is None or slot.committed or slot.order is None:
            return
        if not self.log.quorum_reached(slot):
            return
        batch: OrderBatch = slot.order.body
        self.log.commit(slot, self.sim.now)
        if batch.entries and batch.entries[0].client == INSTALL_CLIENT:
            self.trace("install_committed", rank=batch.rank, start_seq=batch.first_seq)
        else:
            self.trace(
                "order_committed",
                batch_id=batch.batch_id,
                rank=batch.rank,
                first_seq=batch.first_seq,
                n_requests=len(batch.entries),
            )
        self._execute_ready()

    def _execute_ready(self) -> None:
        progressed = False
        while True:
            slot = self.log.slots.get(self._exec_next)
            if slot is None or not slot.committed or slot.order is None:
                break
            batch: OrderBatch = slot.order.body
            for entry in batch.entries:
                self.machine.apply(entry)
                if (
                    self.config.send_replies
                    and entry.client != INSTALL_CLIENT
                    and self.network.has_actor(entry.client)
                ):
                    self.send_payload(
                        entry.client,
                        Reply(
                            replier=self.name,
                            client=entry.client,
                            req_id=entry.req_id,
                            seq=entry.seq,
                            result_digest=result_digest(entry),
                        ),
                    )
            self._exec_next = batch.last_seq + 1
            progressed = True
        if progressed:
            self._maybe_emit_checkpoint()

    def _maybe_emit_checkpoint(self) -> None:
        interval = self.config.checkpoint_interval
        if interval <= 0:
            return
        applied = self.machine.applied_seq
        if applied - self._last_checkpoint_seq < interval:
            return
        self._last_checkpoint_seq = applied
        claim = Checkpoint(
            process=self.name, seq=applied, state_digest=self.machine.state_digest()
        )
        self._note_checkpoint(claim)
        self.multicast_payload(self.others, _plain(claim))

    def _note_checkpoint(self, claim: Checkpoint) -> None:
        if self.checkpoints.note(claim):
            dropped = self.log.truncate_below(self.checkpoints.stable_seq)
            self.trace(
                "checkpoint_stable", seq=self.checkpoints.stable_seq, dropped=dropped
            )

    # ------------------------------------------------------------------
    # Crash fail-over (timeout-driven; CT tolerates crashes only)
    # ------------------------------------------------------------------
    def _arm_liveness_timer(self) -> None:
        if self._liveness_armed:
            return
        self._liveness_armed = True
        self.set_timer(self.crash_timeout, self._liveness_tick)

    def _liveness_tick(self) -> None:
        self._liveness_armed = False
        if self.crashed or self.is_coordinator:
            return
        silent = self.sim.now - self.last_heard_from_coordinator
        if not self.installing and silent > self.crash_timeout and self.unassigned_work():
            self._begin_install()
        self._arm_liveness_timer()

    def unassigned_work(self) -> bool:
        """Only suspect a silent coordinator when work is pending:
        a known request that no order we have seen covers, or an order
        stuck short of its commit quorum."""
        return any(key not in self.sequenced_keys for key in self.pending) or bool(
            self.log.uncommitted_orders()
        )

    def _begin_install(self) -> None:
        self.installing = True
        target = self.c + 1
        if target > self.n:
            return
        self.install_target = target
        self.trace("install_started", target=target)
        backlog = BackLog(
            sender=self.name,
            new_rank=target,
            fail_signal=_plain(None),
            max_committed=self.log.max_committed_proof(),
            uncommitted=self.log.uncommitted_orders(),
        )
        signed = _plain(backlog)
        if self.index == target:
            self.backlogs[self.name] = signed
            self._maybe_start()
        self.multicast_payload(self.others, signed)

    def _on_backlog(self, sender: str, signed: SignedMessage) -> None:
        backlog: BackLog = signed.body
        if sender != backlog.sender:
            return
        if backlog.new_rank <= self.c:
            return  # stale: that installation already completed here
        if not self.installing:
            # A peer started fail-over; join it.
            self.installing = True
            self.install_target = backlog.new_rank
            self._begin_install_join(backlog.new_rank)
        if backlog.new_rank == self.install_target:
            self.backlogs[backlog.sender] = signed
            if self.index == backlog.new_rank:
                self._maybe_start()

    def _begin_install_join(self, target: int) -> None:
        backlog = BackLog(
            sender=self.name,
            new_rank=target,
            fail_signal=_plain(None),
            max_committed=self.log.max_committed_proof(),
            uncommitted=self.log.uncommitted_orders(),
        )
        signed = _plain(backlog)
        if self.index == target:
            self.backlogs[self.name] = signed
        self.multicast_payload(self.others, signed)

    def _maybe_start(self) -> None:
        target = self.install_target
        if target is None or target in self._start_done or self.index != target:
            return
        if len(self.backlogs) < self.quorum:
            return
        self._start_done.add(target)
        views = [
            BacklogView(
                sender=s.body.sender,
                max_committed=s.body.max_committed,
                uncommitted=s.body.uncommitted,
            )
            for s in self.backlogs.values()
        ][: self.quorum]
        result = compute_new_backlog(views, self.config.f)
        new_backlog = result.new_backlog
        if result.base_proof is not None:
            new_backlog = (result.base_proof.order, *new_backlog)
        start = Start(new_rank=target, start_seq=result.start_seq, new_backlog=new_backlog)
        signed = _plain(start)
        self.trace("failover_complete", target=target, start_seq=start.start_seq)
        self.multicast_payload(self.others, signed)
        self._adopt_start(signed)

    def _on_start(self, sender: str, signed: SignedMessage) -> None:
        start: Start = signed.body
        if sender != replica_name(start.new_rank) or start.new_rank <= self.c:
            return
        self._adopt_start(signed)

    def _adopt_start(self, signed: SignedMessage) -> None:
        start: Start = signed.body
        self.c = start.new_rank
        self.installing = False
        self.install_target = None
        self.backlogs = {}
        self.trace("coordinator_installed", rank=self.c, start_seq=start.start_seq)
        self.log.drop_uncommitted_from(start.start_seq)
        self.next_expected = min(self.next_expected, start.start_seq)
        for signed_order in start.new_backlog:
            self.log.force_commit(signed_order, self.sim.now)
        pseudo = make_install_batch(signed, self.config.scheme.digest)
        pseudo_signed = SignedMessage(body=pseudo, signatures=())
        self.next_expected = max(self.next_expected, start.start_seq)
        self._process_order(pseudo_signed)
        self._execute_ready()
        if self.is_coordinator:
            self.next_assign_seq = start.start_seq + 1
            self._rebuild_unordered()
            self._arm_batch_timer()
        self.last_heard_from_coordinator = self.sim.now
        self._arm_liveness_timer()

    def _rebuild_unordered(self) -> None:
        sequenced: set[tuple[str, int]] = set()
        for slot in self.log.slots.values():
            if slot.order is None:
                continue
            batch: OrderBatch = slot.order.body
            for entry in batch.entries:
                sequenced.add((entry.client, entry.req_id))
        self.unordered = [
            request
            for key, request in sorted(self.pending.items())
            if key not in sequenced
        ]
        self.ordered_keys = set(sequenced) | {r.key for r in self.unordered}
