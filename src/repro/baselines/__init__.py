"""Baseline protocols the paper compares against.

* :mod:`repro.baselines.ct` — the crash-tolerant protocol CT, derived
  from SC by removing pairs and all cryptography (Section 5);
* :mod:`repro.baselines.bft` — a Castro–Liskov-style three-phase
  Byzantine fault-tolerant protocol (pre-prepare / prepare / commit),
  the comparator of Figures 4 and 5.
"""

from repro.baselines.ct import CtProcess
from repro.baselines.bft.replica import BftReplica

__all__ = ["BftReplica", "CtProcess"]
