"""Baseline protocols the paper compares against.

* :mod:`repro.baselines.ct` — the crash-tolerant protocol CT, derived
  from SC by removing pairs and all cryptography (Section 5);
* :mod:`repro.baselines.bft` — a Castro–Liskov-style three-phase
  Byzantine fault-tolerant protocol (pre-prepare / prepare / commit),
  the comparator of Figures 4 and 5.

These modules hold the process *implementations*; their deployment
rules (replica counts, wiring, scheme resolution) live in the protocol
plugins :class:`repro.protocols.ct.CtPlugin` and
:class:`repro.protocols.bft.BftPlugin`, which is how the harness
reaches them.
"""

from repro.baselines.ct import CtProcess
from repro.baselines.bft.replica import BftReplica

__all__ = ["BftReplica", "CtProcess"]
