"""BFT — the Castro-Liskov-style baseline as a plugin.

The paper's signature-based PBFT comparison point: ``n = 3f + 1``
unpaired replicas running three-phase ordering (pre-prepare, prepare,
commit).  The replica implementation lives in
:mod:`repro.baselines.bft`.
"""

from __future__ import annotations

from repro.baselines.bft.replica import BftReplica
from repro.core.config import ProtocolConfig
from repro.net.addresses import replica_name
from repro.protocols.base import Deployment, OrderProtocol


class BftPlugin(OrderProtocol):
    """Signature-based PBFT baseline, n = 3f+1 unpaired replicas."""

    name = "bft"
    variant = "sc"
    description = "Castro-Liskov-style three-phase BFT baseline, n = 3f+1"

    def n(self, f: int) -> int:
        return 3 * f + 1

    def process_names(self, config: ProtocolConfig) -> tuple[str, ...]:
        return tuple(replica_name(i) for i in range(1, 3 * config.f + 2))

    def build(self, deployment: Deployment) -> None:
        for name in self.process_names(deployment.config):
            deployment.processes[name] = BftReplica(
                deployment.sim, name, deployment.network, deployment.config,
                deployment.provider, deployment.calibration,
            )
