"""SCR — Signal-on-Crash-and-Recovery (Section 4.4) as a plugin.

Deploys ``n = 3f + 2``: every coordinator candidate is a pair
(``p(f+1)`` gains a shadow) and falsely suspected pairs recover
through view changes.  Construction matches SC except that delay
estimates are only *eventually* accurate (assumption 3(b)(i)), so no
suspicion oracles are wired — false suspicions are part of the model.
"""

from __future__ import annotations

from repro.core.scr import ScrProcess
from repro.protocols.base import Deployment
from repro.protocols.sc import ScPlugin


class ScrPlugin(ScPlugin):
    """Signal-on-Crash-and-Recovery: pairs may rejoin after false
    suspicion; only pairs coordinate."""

    name = "scr"
    variant = "scr"
    description = "signal-on-crash with recovery (Section 4.4), n = 3f+2"

    process_class = ScrProcess

    def n(self, f: int) -> int:
        return 3 * f + 2

    def wire(self, deployment: Deployment) -> None:
        # 3(b)(i): estimates are only eventually accurate — suspicions
        # come from observed (possibly surged) delays, not an oracle.
        return None
