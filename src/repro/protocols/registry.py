"""The protocol plugin registry.

Maps protocol names to :class:`~repro.protocols.base.OrderProtocol`
instances.  The four paper protocols register on package import; new
protocols register with :func:`register` (typically at module import
time) and immediately become buildable through
:func:`repro.harness.cluster.build_cluster`, sweepable through the
runner, and addressable from scenario specs.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.protocols.base import OrderProtocol

_REGISTRY: dict[str, OrderProtocol] = {}


def register(protocol: OrderProtocol, *, replace: bool = False) -> OrderProtocol:
    """Add a plugin under its ``name``; returns it for chaining.

    Duplicate names are an error unless ``replace=True`` (useful when
    iterating on a plugin in a REPL or shadowing a builtin in tests).
    """
    if not protocol.name:
        raise ConfigError(f"protocol plugin {protocol!r} has no name")
    if protocol.name in _REGISTRY and not replace:
        raise ConfigError(
            f"protocol {protocol.name!r} is already registered; "
            f"pass replace=True to override"
        )
    _REGISTRY[protocol.name] = protocol
    return protocol


def unregister(name: str) -> None:
    """Remove a plugin (primarily for test teardown)."""
    _REGISTRY.pop(name, None)


def get(name: str) -> OrderProtocol:
    """Look up a plugin by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown protocol {name!r}; known: {names()}"
        ) from None


def names() -> tuple[str, ...]:
    """Registered protocol names, in registration order."""
    return tuple(_REGISTRY)


def all_protocols() -> tuple[OrderProtocol, ...]:
    """Every registered plugin, in registration order."""
    return tuple(_REGISTRY.values())


def failover_capable() -> tuple[str, ...]:
    """Names of protocols the fail-over experiment applies to."""
    return tuple(p.name for p in _REGISTRY.values() if p.supports_failover)
