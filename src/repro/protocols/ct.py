"""CT — the crash-tolerant baseline as a plugin.

A fixed-sequencer atomic broadcast over ``n = 2f + 1`` replicas that
tolerates crash faults only and runs without digests or signatures —
the paper's cheapest comparison point.  The process implementation
lives in :mod:`repro.baselines.ct`.
"""

from __future__ import annotations

from repro.baselines.ct import CtProcess
from repro.core.config import ProtocolConfig
from repro.crypto.schemes import PLAIN, CryptoScheme
from repro.protocols.base import Deployment, OrderProtocol


class CtPlugin(OrderProtocol):
    """Crash-tolerant fixed-sequencer baseline, n = 2f+1, no crypto."""

    name = "ct"
    variant = "sc"
    uses_crypto = False
    description = "crash-tolerant fixed-sequencer baseline, n = 2f+1, no crypto"

    def n(self, f: int) -> int:
        return 2 * f + 1

    def process_names(self, config: ProtocolConfig) -> tuple[str, ...]:
        return config.replica_names

    def resolve_scheme(self, scheme_name: str) -> CryptoScheme:
        # CT orders without digests or signatures whatever the sweep
        # requested; the swept scheme only labels the figure panel.
        return PLAIN

    def reported_scheme(self, scheme_name: str) -> str:
        return "plain"

    def build(self, deployment: Deployment) -> None:
        for name in self.process_names(deployment.config):
            deployment.processes[name] = CtProcess(
                deployment.sim, name, deployment.network, deployment.config,
                deployment.provider, deployment.calibration,
            )
