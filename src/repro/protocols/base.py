"""The protocol plugin interface.

An :class:`OrderProtocol` teaches the harness everything it needs to
deploy and study one total-order protocol: the replica-count rule
``n(f)``, configuration validation, process construction and wiring
(pair links, dealer-issued fail-signal blanks, suspicion oracles),
which crypto scheme a sweep point actually exercises, and where the
initial coordinator/primary sits (the target of fail-over studies).

Plugins register themselves with :mod:`repro.protocols.registry`;
``repro.harness.cluster``, ``repro.harness.experiments``,
``repro.harness.scenario`` and ``repro.failures.injector`` dispatch
exclusively through that registry, so adding a protocol is one new
module — no harness edits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.config import ProtocolConfig
from repro.crypto.schemes import CryptoScheme, scheme_by_name
from repro.errors import ConfigError

if TYPE_CHECKING:
    from repro.calibration import CalibrationProfile
    from repro.crypto.dealer import TrustedDealer
    from repro.crypto.signing import SignatureProvider
    from repro.net.delay import SurgeableDelay
    from repro.net.network import Network
    from repro.sim.kernel import Simulator


@dataclass
class Deployment:
    """Mutable build context a plugin populates.

    The cluster builder prepares the substrate (simulator, network,
    provisioned signature provider, dealer) and hands it to the
    plugin's :meth:`OrderProtocol.build`, which fills ``processes``
    (name -> order process, insertion order = deployment order) and,
    for paired protocols, ``pair_links`` (pair rank -> link model).
    """

    sim: "Simulator"
    network: "Network"
    config: ProtocolConfig
    calibration: "CalibrationProfile"
    provider: "SignatureProvider"
    dealer: "TrustedDealer"
    processes: dict[str, object] = field(default_factory=dict)
    pair_links: dict[int, "SurgeableDelay"] = field(default_factory=dict)


class OrderProtocol:
    """Base class for protocol plugins.

    Subclasses set the class attributes and implement
    :meth:`process_names` and :meth:`build`; everything else has
    sensible defaults.

    Attributes
    ----------
    name:
        Registry key (``"sc"``, ``"bft"``, ...).
    variant:
        The :class:`~repro.core.config.ProtocolConfig` variant this
        protocol requires (``"sc"`` or ``"scr"``) — structural rules
        like pair counts live on the config.
    uses_pairs:
        Whether the deployment contains replica/shadow pairs (and thus
        dedicated pair links and fail-signal blanks).
    supports_failover:
        Whether the fail-over experiment (Figure 6) applies.
    uses_crypto:
        ``False`` for crash-tolerant baselines that run without
        digests/signatures regardless of the swept scheme.
    description:
        One-line summary shown by ``python -m repro protocols``.
    """

    name: str = ""
    variant: str = "sc"
    uses_pairs: bool = False
    supports_failover: bool = False
    uses_crypto: bool = True
    description: str = ""

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def n(self, f: int) -> int:
        """Total order processes deployed for fault tolerance ``f``."""
        raise NotImplementedError

    def process_names(self, config: ProtocolConfig) -> tuple[str, ...]:
        """Names of the order processes, in deployment order."""
        raise NotImplementedError

    def initial_coordinator(self, config: ProtocolConfig) -> str:
        """The process initially coordinating/ordering (rank 1 /
        primary of view 1) — the default target of fault injection."""
        from repro.net.addresses import replica_name

        return replica_name(1)

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def default_config(self, **overrides) -> ProtocolConfig:
        """A config this protocol accepts (``variant`` pre-set)."""
        overrides.setdefault("variant", self.variant)
        return ProtocolConfig(**overrides)

    def configure(
        self, scheme: CryptoScheme | str | None = None, **overrides
    ) -> ProtocolConfig:
        """Build a validated config for this protocol.

        ``scheme`` may be a :class:`CryptoScheme` or a scheme name; it
        is passed through :meth:`resolve_scheme` so baselines that run
        without crypto get their effective scheme regardless of what
        the sweep requested.
        """
        if scheme is not None:
            if isinstance(scheme, str):
                scheme = self.resolve_scheme(scheme)
            overrides["scheme"] = scheme
        config = self.default_config(**overrides)
        self.validate(config)
        return config

    def validate(self, config: ProtocolConfig) -> None:
        """Reject configs this protocol cannot deploy."""
        config.require_variant(self.variant, protocol=self.name)

    def resolve_scheme(self, scheme_name: str) -> CryptoScheme:
        """The crypto scheme a run with ``scheme_name`` exercises."""
        return scheme_by_name(scheme_name)

    def reported_scheme(self, scheme_name: str) -> str:
        """The scheme name results report (baselines without crypto
        report ``"plain"`` whatever the sweep requested)."""
        return scheme_name

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(self, deployment: Deployment) -> None:
        """Construct and wire this protocol's order processes into
        ``deployment`` (fill ``processes`` and ``pair_links``)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


def check_n_rule(protocol: OrderProtocol, config: ProtocolConfig) -> None:
    """Sanity helper: the config's structure must match ``n(f)``."""
    expected = protocol.n(config.f)
    actual = len(protocol.process_names(config))
    if expected != actual:
        raise ConfigError(
            f"protocol {protocol.name!r} deploys {actual} processes for "
            f"f={config.f} but its n(f) rule says {expected}"
        )
