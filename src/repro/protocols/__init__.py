"""Protocol plugins: every total-order protocol the harness can deploy.

The registry decouples the experiment harness from the individual
protocols: :func:`repro.harness.cluster.build_cluster`, the sweep
runner, the fault injector and the scenario API all dispatch through
:func:`get` / :func:`names`, so adding a protocol is one new module
that subclasses :class:`OrderProtocol` and calls :func:`register` —
no ``if protocol ==`` chains anywhere in the harness.

The paper's four protocols register on import, in the order the study
presents them::

    >>> import repro.protocols as protocols
    >>> protocols.names()
    ('sc', 'scr', 'bft', 'ct')
"""

from repro.protocols.base import Deployment, OrderProtocol, check_n_rule
from repro.protocols.bft import BftPlugin
from repro.protocols.ct import CtPlugin
from repro.protocols.registry import (
    all_protocols,
    failover_capable,
    get,
    names,
    register,
    unregister,
)
from repro.protocols.sc import ScPlugin
from repro.protocols.scr import ScrPlugin

register(ScPlugin())
register(ScrPlugin())
register(BftPlugin())
register(CtPlugin())

__all__ = [
    "BftPlugin",
    "CtPlugin",
    "Deployment",
    "OrderProtocol",
    "ScPlugin",
    "ScrPlugin",
    "all_protocols",
    "check_n_rule",
    "failover_capable",
    "get",
    "names",
    "register",
    "unregister",
]
