"""Runtime-agnostic driver surface for the protocol logic.

The order protocols (SC/SCR/BFT/CT) never import the simulation kernel
directly: everything they ask of their environment flows through a
narrow surface this module names explicitly —

* a **clock/timer driver** with ``now``, ``schedule(delay, cb, *args)``
  / ``schedule_at(time, cb, *args)`` returning cancellable handles
  (``.cancel()`` / ``.active``), and a ``trace`` sink
  (:class:`~repro.sim.trace.Tracer`); and
* a **transport** with the :class:`~repro.net.network.Network` surface
  the processes use: ``attach`` / ``has_actor`` / ``set_link`` /
  ``send`` / ``multicast``.

:class:`~repro.sim.kernel.Simulator` + ``Network`` is one
implementation (virtual time); :mod:`repro.live` provides another
(asyncio wall clock + TCP).  This module ships the third, smallest
backend: :class:`StepRuntime` + :class:`LocalTransport`, a kernel-free
single-process harness that can *step* protocol logic against recorded
inputs — the cross-validation tool that proves the protocol code is
genuinely runtime-independent (replaying a simulator recording through
it must reproduce the commit order bit for bit; see
``tests/live/test_replay.py``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.errors import SimulationError
from repro.sim.trace import Tracer


class StepTimer:
    """A pending :class:`StepRuntime` timer.

    Mirrors the :class:`~repro.sim.events.Event` handle contract the
    protocol helpers rely on (:class:`~repro.core.suspicion.
    ExpectationMonitor` cancels via ``.active`` / ``.cancel()``):
    cancelling twice is an error, firing deactivates.
    """

    __slots__ = ("time", "seq", "callback", "args", "_state")

    def __init__(self, time: float, seq: int, callback, args) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self._state = "pending"

    @property
    def active(self) -> bool:
        return self._state == "pending"

    @property
    def cancelled(self) -> bool:
        return self._state == "cancelled"

    def cancel(self) -> None:
        if self._state != "pending":
            raise SimulationError(f"cannot cancel a {self._state} timer")
        self._state = "cancelled"


class StepRuntime:
    """A kernel-free clock: timers fire only when :meth:`run_until`
    advances the clock past them.

    Satisfies the protocol driver surface (``now`` / ``schedule`` /
    ``schedule_at`` / ``trace``) without importing
    :mod:`repro.sim.kernel`; ties in firing time break by scheduling
    order, the kernel's discipline.
    """

    def __init__(self, trace: Tracer | None = None) -> None:
        self.now = 0.0
        self.trace = trace if trace is not None else Tracer()
        self._heap: list[tuple[float, int, StepTimer]] = []
        self._seq = 0

    @property
    def pending(self) -> int:
        return len(self._heap)

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> StepTimer:
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> StepTimer:
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time}: clock already at t={self.now}"
            )
        timer = StepTimer(time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, (time, timer.seq, timer))
        return timer

    def run_until(self, time: float) -> int:
        """Fire every pending timer due at or before ``time``; the
        clock is left at ``time``.  Returns the number fired."""
        if time < self.now:
            raise SimulationError(
                f"cannot rewind the clock to t={time} from t={self.now}"
            )
        fired = 0
        heap = self._heap
        while heap and heap[0][0] <= time:
            _, _, timer = heapq.heappop(heap)
            if not timer.active:
                continue
            self.now = timer.time
            timer._state = "fired"
            timer.callback(*timer.args)
            fired += 1
        self.now = time
        return fired


class LocalTransport:
    """The :class:`~repro.net.network.Network` surface without a wire.

    Actors attach under their names exactly as on the simulated
    network, but nothing is delivered by default: sends to *hosted*
    names (see :meth:`host`) are handed to ``deliver`` (or dispatched
    straight into ``on_message`` when no deliver hook is given), sends
    to anything else go to ``on_remote`` — the seam a real transport
    (:mod:`repro.live`) or a replay harness (drop everything; the
    recording already contains the consequences) plugs into.
    """

    def __init__(
        self,
        runtime: Any,
        on_remote: Callable[[str, str, Any, int], None] | None = None,
    ) -> None:
        self.runtime = runtime
        self.on_remote = on_remote
        self._actors: dict[str, Any] = {}
        self._hosted: set[str] = set()
        self.messages_sent = 0
        self.bytes_sent = 0

    # -- topology (the surface plugin ``build`` touches) ---------------
    def attach(self, actor: Any) -> None:
        if actor.name in self._actors:
            from repro.errors import ConfigError

            raise ConfigError(f"duplicate actor name {actor.name!r}")
        self._actors[actor.name] = actor

    def actor(self, name: str) -> Any:
        return self._actors[name]

    def has_actor(self, name: str) -> bool:
        return name in self._actors

    @property
    def names(self) -> list[str]:
        return list(self._actors)

    def set_link(self, src: str, dst: str, model: Any) -> None:
        """Dedicated links are a delay-model concern; no wire, no-op."""

    def tap(self, callback: Callable[..., None]) -> None:
        """Departure taps observe simulated envelopes; nothing to tap."""

    def host(self, *names: str) -> None:
        """Mark ``names`` as locally served: sends to them dispatch
        into the local actor instead of going remote."""
        self._hosted.update(names)

    # -- transmission ---------------------------------------------------
    def send(
        self,
        sender: str,
        dest: str,
        payload: Any,
        size_bytes: int,
        depart_time: float | None = None,
    ) -> None:
        """Route one message; ``depart_time`` is a simulation-kernel
        concept (CPU-marshalling completion) and is ignored here."""
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        if dest in self._hosted:
            actor = self._actors.get(dest)
            if actor is not None:
                actor.on_message(sender, payload)
        elif self.on_remote is not None:
            self.on_remote(sender, dest, payload, size_bytes)

    def multicast(
        self,
        sender: str,
        dests: Iterable[str],
        payload: Any,
        size_bytes: int,
        depart_time: float | None = None,
    ) -> None:
        for dest in dests:
            self.send(sender, dest, payload, size_bytes, depart_time)


# ----------------------------------------------------------------------
# Dispatch recording and replay
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Dispatch:
    """One handler invocation observed at a process: the time its
    ``on_message`` ran (post receive-service), the sender, and the
    payload object itself."""

    time: float
    sender: str
    payload: Any


@dataclass
class DispatchLog:
    """Per-process handler recordings from one simulated run."""

    dispatches: dict[str, list[Dispatch]] = field(default_factory=dict)
    end_time: float = 0.0

    def for_process(self, name: str) -> list[Dispatch]:
        return self.dispatches.get(name, [])


def record_dispatches(cluster) -> DispatchLog:
    """Wrap every order process of a built (unstarted) cluster so each
    handler invocation is recorded with its dispatch time.

    The wrapped ``on_message`` is an instance attribute, so both the
    direct-call path and the scheduled-delivery path (which binds the
    attribute at scheduling time) observe it; call before
    ``cluster.start()``.
    """
    log = DispatchLog()
    for name, process in cluster.processes.items():
        entries = log.dispatches.setdefault(name, [])

        def recorder(sender, payload, _proc=process, _entries=entries):
            _entries.append(Dispatch(_proc.sim.now, sender, payload))
            type(_proc).on_message(_proc, sender, payload)

        process.on_message = recorder
    return log


def replay_process(
    protocol: str,
    config,
    seed: int,
    name: str,
    dispatches: list[Dispatch],
    end_time: float,
    calibration=None,
):
    """Re-run one process's recorded inputs through a kernel-free
    deployment; returns the replayed process.

    A fresh deployment of ``protocol`` is built against a
    :class:`StepRuntime` + :class:`LocalTransport` (remote sends
    dropped: their consequences are already in the recording), only
    ``name`` is started, and each recorded dispatch is injected after
    advancing the clock to its time — timers due up to that instant
    (batch formation, heartbeats) fire first, as they did in the
    original interleaving.  With the same seed the trusted dealer
    provisions identical keys, so signature checks behave identically.
    """
    import repro.protocols as protocols
    from repro.calibration import paper_testbed
    from repro.crypto.dealer import TrustedDealer
    from repro.protocols.base import Deployment

    plugin = protocols.get(protocol)
    runtime = StepRuntime()
    transport = LocalTransport(runtime)
    names = plugin.process_names(config)
    dealer = TrustedDealer(config.scheme, mode="simulated", seed=seed)
    provider = dealer.provision(list(names))
    deployment = Deployment(
        sim=runtime,
        network=transport,
        config=config,
        calibration=calibration if calibration is not None else paper_testbed(),
        provider=provider,
        dealer=dealer,
    )
    plugin.build(deployment)
    process = deployment.processes[name]
    process.start()
    for dispatch in dispatches:
        runtime.run_until(dispatch.time)
        process.on_message(dispatch.sender, dispatch.payload)
    runtime.run_until(max(end_time, runtime.now))
    return process


# ----------------------------------------------------------------------
# Committed-prefix snapshots (live rejoin + state transfer)
# ----------------------------------------------------------------------
#: The placeholder client name snapshot-replayed entries carry: the
#: original (client, req_id) pairs are not part of the digest chain, so
#: a transferred prefix cannot reconstruct them — and must not trigger
#: replies either.
SNAPSHOT_CLIENT = "∅snapshot"


def replay_history(
    name: str,
    rows: list[tuple[int, bytes]],
    expected_digest: bytes | None = None,
    base=None,
):
    """Replay committed-prefix ``rows`` through a fresh kernel-free
    state machine; returns the machine.

    ``rows`` are ``(seq, req_digest)`` pairs as replicas report them
    (the shape of ``ReplicatedStateMachine.history``).  The replay
    recomputes the digest chain from genesis exactly as the original
    execution did, so a row sequence with gaps, replays or altered
    digests is rejected — either by the machine's own consecutive-seq
    check (:class:`~repro.errors.ProtocolError`) or by the final
    ``expected_digest`` comparison against the digest the snapshot
    provider claimed.  Passing ``base`` continues an already verified
    machine instead of starting from genesis (delta catch-up chunks).
    """
    from repro.core.messages import OrderEntry
    from repro.core.service import ReplicatedStateMachine
    from repro.errors import ProtocolError

    machine = base if base is not None else ReplicatedStateMachine(name)
    for seq, digest in rows:
        if seq <= machine.applied_seq:
            continue  # idempotent: resumed transfers may resend rows
        machine.apply(
            OrderEntry(
                seq=seq,
                req_digest=bytes(digest),
                client=SNAPSHOT_CLIENT,
                req_id=0,
            )
        )
    if expected_digest is not None and machine.state_digest() != expected_digest:
        raise ProtocolError(
            f"{name}: snapshot digest mismatch after replaying "
            f"{len(rows)} row(s) to seq {machine.applied_seq} — "
            f"discarding the transferred prefix"
        )
    return machine


def install_prefix(process, machine) -> int:
    """Adopt a verified replayed ``machine`` as ``process``'s committed
    prefix and fast-forward its execution cursor.

    Returns the adopted ``applied_seq``.  Every order-process flavour
    (SC/SCR/BFT/CT) executes through ``machine`` + ``_exec_next``, so
    this is the whole protocol-side rejoin: subsequent committed slots
    whose ``first_seq`` follows the prefix execute normally.
    """
    process.machine = machine
    process._exec_next = max(process._exec_next, machine.applied_seq + 1)
    return machine.applied_seq
