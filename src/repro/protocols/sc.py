"""SC — the paper's Signal-on-Crash protocol (Section 3) as a plugin.

Deploys ``n = 3f + 1`` order processes: replicas ``p1 .. p(2f+1)`` of
which ``p1 .. pf`` are paired with shadows ``p1' .. pf'``; coordinator
candidates are the ``f`` pairs (ranked first) followed by the unpaired
``p(f+1)``.  Pairs get dealer-issued fail-signal blanks, a dedicated
surgeable link, and — under assumption 3(a)(i) — suspicion oracles
that confirm time-domain suspicions against the counterpart's true
fault state.
"""

from __future__ import annotations

from repro.core.config import ProtocolConfig
from repro.core.messages import FailSignalBody
from repro.core.sc import ScProcess
from repro.net.delay import SurgeableDelay
from repro.net.pairlink import connect_pair
from repro.protocols.base import Deployment, OrderProtocol


class ScPlugin(OrderProtocol):
    """Signal-on-Crash: pairs fail-signal, then go dumb (Section 4.3)."""

    name = "sc"
    variant = "sc"
    uses_pairs = True
    supports_failover = True
    description = "signal-on-crash pairs (paper Section 3), n = 3f+1"

    process_class = ScProcess

    def n(self, f: int) -> int:
        return 3 * f + 1

    def process_names(self, config: ProtocolConfig) -> tuple[str, ...]:
        return config.process_names

    def build(self, deployment: Deployment) -> None:
        sim = deployment.sim
        config = deployment.config
        dealer = deployment.dealer
        provider = deployment.provider
        calibration = deployment.calibration
        names = self.process_names(config)

        blanks: dict[str, tuple[FailSignalBody, object]] = {}
        for rank in config.paired_indices:
            first, second = config.coordinator_members(rank)
            for holder, (body, sig) in dealer.issue_fail_signal_blanks(
                provider, rank, first, second
            ).items():
                blanks[holder] = (body, sig)
        for name in names:
            blank = blanks.get(name)
            deployment.processes[name] = self.process_class(
                sim, name, deployment.network, config, provider, calibration,
                fail_signal_blank=blank,
            )
        for rank in config.paired_indices:
            first, second = config.coordinator_members(rank)
            link = SurgeableDelay(calibration.pair_link())
            connect_pair(deployment.network, first, second, link)
            deployment.pair_links[rank] = link
        self.wire(deployment)

    def wire(self, deployment: Deployment) -> None:
        """Assumption 3(a)(i) made operational: a pair member's
        time-domain suspicion is confirmed against the counterpart's
        true fault state, so correct members never falsely suspect
        each other (the delay estimates are "accurate")."""
        sim = deployment.sim
        config = deployment.config
        for rank in config.paired_indices:
            first, second = config.coordinator_members(rank)
            a, b = deployment.processes[first], deployment.processes[second]

            def oracle_for(other):
                def oracle() -> bool:
                    return other.fault.active(sim.now)

                return oracle

            a.suspicion_oracle = oracle_for(b)
            b.suspicion_oracle = oracle_for(a)
