"""Message envelopes: what travels on the simulated wire."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class Envelope:
    """A payload in flight between two named processes.

    ``size_bytes`` is the estimated wire size (payload plus signatures);
    it drives transmission delay, marshalling cost and the byte counters
    the message-overhead comparison reads.
    """

    msg_id: int
    sender: str
    dest: str
    payload: Any
    size_bytes: int
    depart_time: float
    arrive_time: float

    @property
    def transit_time(self) -> float:
        """Seconds the message spent in flight."""
        return self.arrive_time - self.depart_time
