"""Message envelopes: what travels on the simulated wire."""

from __future__ import annotations

from typing import Any


class Envelope:
    """A payload in flight between two named processes.

    ``size_bytes`` is the estimated wire size (payload plus signatures);
    it drives transmission delay, marshalling cost and the byte counters
    the message-overhead comparison reads.

    A plain ``__slots__`` class rather than a dataclass: the network
    mints one per send — tens of thousands per run — and a frozen
    dataclass pays an ``object.__setattr__`` per field.  Instances are
    immutable by convention; nothing mutates an envelope in flight.
    """

    __slots__ = (
        "msg_id",
        "sender",
        "dest",
        "payload",
        "size_bytes",
        "depart_time",
        "arrive_time",
    )

    def __init__(
        self,
        msg_id: int,
        sender: str,
        dest: str,
        payload: Any,
        size_bytes: int,
        depart_time: float,
        arrive_time: float,
    ) -> None:
        self.msg_id = msg_id
        self.sender = sender
        self.dest = dest
        self.payload = payload
        self.size_bytes = size_bytes
        self.depart_time = depart_time
        self.arrive_time = arrive_time

    @property
    def transit_time(self) -> float:
        """Seconds the message spent in flight."""
        return self.arrive_time - self.depart_time

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Envelope(msg_id={self.msg_id}, {self.sender}->{self.dest}, "
            f"{self.size_bytes}B, t={self.depart_time:.6f}->{self.arrive_time:.6f})"
        )
