"""Wire codec: byte serialisation for protocol messages.

The simulator mostly passes payload *objects* with estimated sizes (the
``payload_bytes`` methods), which keeps sweeps fast.  This codec is the
ground truth behind those estimates: it encodes any protocol payload to
bytes and back, so tests can (a) verify that every message type
round-trips losslessly and (b) anchor the size estimates against real
encoded lengths.  It is also what a socket-backed transport would use.

Format: JSON with two tag conventions — dataclasses as
``{"__dc__": ClassName, ...fields}`` and bytes as ``{"__bytes__": hex}``
— mirroring :mod:`repro.crypto.encoding`'s canonical form, plus a
decode direction.  Decoding only instantiates classes from an explicit
registry (no arbitrary class lookup), and JSON arrays decode to tuples
because every repeated field in the protocol is a tuple.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

from repro.errors import ReproError


class CodecError(ReproError):
    """Encoding or decoding failed structurally."""


def _default_registry() -> dict[str, type]:
    from repro.baselines.bft import messages as bft_messages
    from repro.core import messages as core_messages
    from repro.core.checkpoint import Checkpoint
    from repro.core.replies import Reply
    from repro.core.requests import ClientRequest
    from repro.crypto.dealer import FailSignalBody
    from repro.crypto.signed import SignedMessage
    from repro.crypto.signing import Signature

    classes: list[type] = [
        ClientRequest,
        Signature,
        SignedMessage,
        FailSignalBody,
        Checkpoint,
        Reply,
        core_messages.OrderEntry,
        core_messages.OrderBatch,
        core_messages.Ack,
        core_messages.CommitProof,
        core_messages.BackLog,
        core_messages.Start,
        core_messages.StartSupport,
        core_messages.SupportBundle,
        core_messages.CatchUpRequest,
        core_messages.CatchUpReply,
        core_messages.ViewChange,
        core_messages.Unwilling,
        core_messages.NewView,
        core_messages.PairProposal,
        core_messages.PairStartProposal,
        core_messages.PairForward,
        core_messages.Heartbeat,
        core_messages.PairStatusUp,
        bft_messages.PrePrepare,
        bft_messages.Prepare,
        bft_messages.Commit,
        bft_messages.PreparedProof,
        bft_messages.BftViewChange,
        bft_messages.BftNewView,
    ]
    return {cls.__name__: cls for cls in classes}


_REGISTRY: dict[str, type] | None = None


def registry() -> dict[str, type]:
    """The codec's class registry (built lazily, import-cycle safe)."""
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = _default_registry()
    return _REGISTRY


def _to_jsonable(value: Any) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        if name not in registry():
            raise CodecError(f"unregistered message class {name!r}")
        fields = {
            field.name: _to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
        return {"__dc__": name, **fields}
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise CodecError(f"unencodable value of type {type(value).__name__}")


def _from_jsonable(value: Any) -> Any:
    if isinstance(value, dict):
        if "__bytes__" in value and len(value) == 1:
            return bytes.fromhex(value["__bytes__"])
        if "__dc__" in value:
            name = value["__dc__"]
            cls = registry().get(name)
            if cls is None:
                raise CodecError(f"unknown message class {name!r}")
            kwargs = {
                k: _from_jsonable(v) for k, v in value.items() if k != "__dc__"
            }
            return cls(**kwargs)
        return {k: _from_jsonable(v) for k, v in value.items()}
    if isinstance(value, list):
        return tuple(_from_jsonable(item) for item in value)
    return value


def encode(payload: Any) -> bytes:
    """Serialise a protocol payload to bytes."""
    return json.dumps(
        _to_jsonable(payload), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def decode(data: bytes) -> Any:
    """Inverse of :func:`encode`."""
    try:
        raw = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"undecodable wire data: {exc}") from None
    return _from_jsonable(raw)


def encoded_size(payload: Any) -> int:
    """Actual wire size of a payload under this codec."""
    return len(encode(payload))
