"""Process naming conventions.

The paper denotes the order process on replica node ``i`` as ``p_i`` and
the order process on its shadow node as ``p'_i``.  We keep that notation
almost verbatim in process names:

* ``"p3"`` — the order process on replica node 3;
* ``"p3'"`` — its shadow (only the first ``f`` — or ``f + 1`` for SCR —
  replicas have one);
* ``"c1"`` — a client.

These helpers centralise parsing so no protocol module ever slices
strings itself.
"""

from __future__ import annotations

from repro.errors import ConfigError


def replica_name(index: int) -> str:
    """Name of the order process on replica node ``index`` (1-based)."""
    if index < 1:
        raise ConfigError(f"replica index must be >= 1, got {index}")
    return f"p{index}"


def shadow_name(index: int) -> str:
    """Name of the shadow order process paired with replica ``index``."""
    if index < 1:
        raise ConfigError(f"replica index must be >= 1, got {index}")
    return f"p{index}'"


def is_shadow(name: str) -> bool:
    """True for shadow process names such as ``"p2'"``."""
    return name.endswith("'")


def base_index(name: str) -> int:
    """Replica index behind a process name (``"p3'" -> 3``)."""
    body = name.rstrip("'")
    if not body.startswith("p") or not body[1:].isdigit():
        raise ConfigError(f"not an order-process name: {name!r}")
    return int(body[1:])


def pair_of(name: str) -> str:
    """The counterpart process within a pair (``"p3" <-> "p3'"``)."""
    if is_shadow(name):
        return replica_name(base_index(name))
    return shadow_name(base_index(name))


def client_name(index: int) -> str:
    """Name of client ``index`` (1-based)."""
    if index < 1:
        raise ConfigError(f"client index must be >= 1, got {index}")
    return f"c{index}"


def is_client(name: str) -> bool:
    """True for client names such as ``"c2"``."""
    return name.startswith("c") and name[1:].isdigit()
