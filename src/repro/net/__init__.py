"""Network substrate: reliable asynchronous message transport.

Models the paper's communication fabric:

* a **reliable asynchronous network** (the paper's LAN / "Internet-like"
  fabric) connecting all order processes — every message is delivered
  uncorrupted after a finite but unbounded delay, sampled from a
  configurable :mod:`delay model <repro.net.delay>`;
* a **fast reliable pair link** between the two nodes of a process pair
  (the paper uses RMI over a dedicated connection), installed with
  :func:`~repro.net.pairlink.connect_pair`.

Delivered messages are charged to the receiving node's CPU before the
actor's handler runs, which is how verification and unmarshalling costs
enter the latency measurements.
"""

from repro.net.addresses import (
    base_index,
    is_shadow,
    pair_of,
    replica_name,
    shadow_name,
)
from repro.net.delay import (
    ConstantDelay,
    DelayModel,
    LanDelay,
    SurgeableDelay,
)
from repro.net.codec import CodecError, decode, encode, encoded_size
from repro.net.message import Envelope
from repro.net.network import Network
from repro.net.pairlink import connect_pair, default_pair_link

__all__ = [
    "CodecError",
    "ConstantDelay",
    "DelayModel",
    "Envelope",
    "LanDelay",
    "Network",
    "SurgeableDelay",
    "base_index",
    "connect_pair",
    "decode",
    "default_pair_link",
    "encode",
    "encoded_size",
    "is_shadow",
    "pair_of",
    "replica_name",
    "shadow_name",
]
