"""Length-prefixed pickle framing and the authenticated handshake.

The single wire codec shared by every real-transport component of the
harness: the sweep coordinator and its workers
(:mod:`repro.harness.exec.sockets`) and the live replica runtime
(:mod:`repro.live`).  A frame is a 4-byte big-endian payload length
followed by a pickle; both blocking-socket and asyncio stream variants
are provided so threaded and event-loop code read the same bytes.

Authentication
--------------
Pickle is code execution for whoever can reach the port, so binding a
non-loopback interface requires a pre-shared key
(:func:`require_auth_for_bind`).  The handshake is the HMAC
challenge-response of :mod:`multiprocessing.connection`: the listener
sends ``#CHALLENGE#`` + 20 random bytes, the dialer answers with
``HMAC-SHA256(key, challenge)``, the listener replies ``#WELCOME#`` or
``#FAILURE#``.  Handshake messages travel as *raw* length-prefixed
byte strings with a small hard cap — never through the pickle codec —
so nothing attacker-controlled is unpickled before authentication
succeeds (the same discipline as :mod:`multiprocessing.connection`).
The key comes from ``--auth-key`` or the ``REPRO_AUTH_KEY``
environment variable (:func:`resolve_auth_key`); both sides must
agree or the connection is dropped before any pickle is read.
"""

from __future__ import annotations

import asyncio
import hmac
import ipaddress
import os
import pickle
import random
import socket
import struct
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ConfigError

LEN = struct.Struct(">I")

#: Hard cap on a single frame's payload.  The length header is
#: attacker-controlled on an unauthenticated connection, so without a
#: bound any peer can demand a 4 GiB allocation before the handshake
#: even runs.  Legitimate frames (sweep tasks, protocol messages,
#: node reports) are well under this.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Environment variable carrying the pre-shared cluster key.
AUTH_KEY_ENV = "REPRO_AUTH_KEY"

_CHALLENGE = b"#CHALLENGE#"
_WELCOME = b"#WELCOME#"
_FAILURE = b"#FAILURE#"
_CHALLENGE_BYTES = 20
#: Hard cap on a raw handshake message; every legitimate one
#: (challenge, HMAC digest, verdict) is a few dozen bytes.
_HANDSHAKE_MAX = 256


class PeerLost(ConnectionError):
    """The peer vanished mid-conversation (EOF, reset, or timeout)."""


class AuthenticationError(ConnectionError):
    """The challenge-response handshake failed (wrong or missing key)."""


# ----------------------------------------------------------------------
# Jittered exponential backoff
#
# The one retry cadence every reconnect path in the harness shares: the
# live transport's per-peer channels, the sweep workers' initial dial,
# and the load client's controller fetch.  Jitter decorrelates a fleet
# of peers retrying against the same reborn listener; the budget turns
# "retry forever on a dead peer" into a bounded failure with a
# :class:`PeerLost` whose ``__cause__`` names the last underlying error.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BackoffPolicy:
    """Delays for one reconnect conversation.

    ``first`` doubles via ``multiplier`` up to ``cap``; each delay is
    then jittered to ``uniform(delay * (1 - jitter), delay)``.  A
    ``budget`` bounds the *sum* of delays (and thereby total retry
    time); ``attempts`` bounds their count.  ``None`` means unbounded.
    """

    first: float = 0.05
    cap: float = 1.0
    multiplier: float = 2.0
    jitter: float = 0.5
    budget: float | None = None
    attempts: int | None = None

    def delays(self, rng: random.Random | None = None) -> Iterator[float]:
        """The jittered delay sequence, exhausted when the budget is.

        Pass a seeded ``rng`` for deterministic sequences in tests;
        the default draws from the module-level RNG.
        """
        draw = (rng or random).uniform
        delay = self.first
        spent = 0.0
        emitted = 0
        while True:
            if self.attempts is not None and emitted >= self.attempts:
                return
            jittered = draw(delay * (1.0 - self.jitter), delay) if self.jitter else delay
            if self.budget is not None:
                if spent >= self.budget:
                    return
                jittered = min(jittered, self.budget - spent)
            spent += jittered
            emitted += 1
            yield jittered
            delay = min(delay * self.multiplier, self.cap)


#: Default policy for dialling a peer that should already be up
#: (replica data listeners, an established coordinator).
RECONNECT = BackoffPolicy(first=0.05, cap=1.0, budget=None)

#: Default policy for racing a peer that may still be starting (the
#: load client vs. the serve controller, workers vs. the coordinator):
#: bounded, so a truly absent peer is a clean failure, not a hang.
STARTUP = BackoffPolicy(first=0.1, cap=2.0, budget=20.0)


def connect_with_retry(
    host: str,
    port: int,
    policy: BackoffPolicy = STARTUP,
    rng: random.Random | None = None,
) -> socket.socket:
    """Blocking dial with jittered backoff; the budget caps total wait.

    Raises :class:`PeerLost` chained from the last ``OSError`` when the
    policy's budget runs out.
    """
    import time as _time

    last: Exception | None = None
    for delay in _with_leading_zero(policy, rng):
        if delay:
            _time.sleep(delay)
        try:
            return socket.create_connection((host, port))
        except OSError as exc:
            last = exc
    raise PeerLost(
        f"could not connect to {host}:{port} within the retry budget "
        f"({policy.budget}s)"
    ) from last


async def open_connection_with_retry(
    host: str,
    port: int,
    policy: BackoffPolicy = STARTUP,
    rng: random.Random | None = None,
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Asyncio dial with jittered backoff; :class:`PeerLost` on budget
    exhaustion, chained from the last connection error."""
    last: Exception | None = None
    for delay in _with_leading_zero(policy, rng):
        if delay:
            await asyncio.sleep(delay)
        try:
            return await asyncio.open_connection(host, port)
        except OSError as exc:
            last = exc
    raise PeerLost(
        f"could not connect to {host}:{port} within the retry budget "
        f"({policy.budget}s)"
    ) from last


def _with_leading_zero(
    policy: BackoffPolicy, rng: random.Random | None
) -> Iterator[float]:
    """The policy's delays preceded by an immediate first attempt."""
    yield 0.0
    yield from policy.delays(rng)


# ----------------------------------------------------------------------
# Blocking-socket framing
# ----------------------------------------------------------------------
def send_msg(sock: socket.socket, obj: object) -> None:
    """Write one length-prefixed pickle frame."""
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(LEN.pack(len(data)) + data)


def recv_msg(sock: socket.socket) -> object:
    """Read one frame; :class:`PeerLost` on EOF, timeout, or an
    oversize length header (> :data:`MAX_FRAME_BYTES`)."""
    header = recv_exact(sock, LEN.size)
    (length,) = LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise PeerLost(f"oversize frame header ({length} bytes); dropping peer")
    return pickle.loads(recv_exact(sock, length))


def recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes; :class:`PeerLost` on EOF or timeout."""
    chunks = []
    while n:
        try:
            chunk = sock.recv(n)
        except (socket.timeout, TimeoutError) as exc:
            raise PeerLost(f"timed out awaiting peer: {exc}") from None
        except OSError as exc:
            raise PeerLost(f"connection failed: {exc}") from None
        if not chunk:
            raise PeerLost("peer closed the connection")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


# ----------------------------------------------------------------------
# asyncio framing
# ----------------------------------------------------------------------
def write_frame(writer: asyncio.StreamWriter, obj: object) -> None:
    """Queue one frame on an asyncio stream (caller awaits ``drain``)."""
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    writer.write(LEN.pack(len(data)) + data)


async def read_frame(reader: asyncio.StreamReader) -> object:
    """Read one frame from an asyncio stream; :class:`PeerLost` on EOF
    or an oversize length header (> :data:`MAX_FRAME_BYTES`)."""
    try:
        header = await reader.readexactly(LEN.size)
    except (asyncio.IncompleteReadError, ConnectionError, OSError) as exc:
        raise PeerLost(f"peer closed the connection: {exc!r}") from None
    (length,) = LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise PeerLost(f"oversize frame header ({length} bytes); dropping peer")
    try:
        data = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError, OSError) as exc:
        raise PeerLost(f"peer closed the connection: {exc!r}") from None
    return pickle.loads(data)


# ----------------------------------------------------------------------
# HMAC challenge-response handshake
#
# Handshake messages are raw length-prefixed byte strings, NEVER
# pickle frames: the whole point of the handshake is that nothing
# attacker-controlled is unpickled before the peer proves it holds the
# key.  A tiny hard cap on the length header doubles as the pre-auth
# allocation bound.
# ----------------------------------------------------------------------
def _answer(key: bytes, challenge: bytes) -> bytes:
    return hmac.new(key, challenge, "sha256").digest()


def _send_handshake(sock: socket.socket, data: bytes) -> None:
    sock.sendall(LEN.pack(len(data)) + data)


def _recv_handshake(sock: socket.socket) -> bytes:
    header = recv_exact(sock, LEN.size)
    (length,) = LEN.unpack(header)
    if length > _HANDSHAKE_MAX:
        raise AuthenticationError(
            f"oversize handshake message ({length} bytes)"
        )
    return recv_exact(sock, length)


def _write_handshake(writer: asyncio.StreamWriter, data: bytes) -> None:
    writer.write(LEN.pack(len(data)) + data)


async def _read_handshake(reader: asyncio.StreamReader) -> bytes:
    try:
        header = await reader.readexactly(LEN.size)
    except (asyncio.IncompleteReadError, ConnectionError, OSError) as exc:
        raise PeerLost(f"peer closed the connection: {exc!r}") from None
    (length,) = LEN.unpack(header)
    if length > _HANDSHAKE_MAX:
        raise AuthenticationError(f"oversize handshake message ({length} bytes)")
    try:
        return await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError, OSError) as exc:
        raise PeerLost(f"peer closed the connection: {exc!r}") from None


def deliver_challenge(sock: socket.socket, key: bytes) -> None:
    """Listener side of the handshake over a blocking socket.

    Raises :class:`AuthenticationError` when the dialer's response does
    not match; the caller should close the connection.
    """
    challenge = _CHALLENGE + os.urandom(_CHALLENGE_BYTES)
    _send_handshake(sock, challenge)
    response = _recv_handshake(sock)
    if not hmac.compare_digest(response, _answer(key, challenge)):
        _send_handshake(sock, _FAILURE)
        raise AuthenticationError("peer failed the auth handshake")
    _send_handshake(sock, _WELCOME)


def answer_challenge(sock: socket.socket, key: bytes) -> None:
    """Dialer side of the handshake over a blocking socket."""
    challenge = _recv_handshake(sock)
    if not challenge.startswith(_CHALLENGE):
        raise AuthenticationError("peer did not issue an auth challenge")
    _send_handshake(sock, _answer(key, challenge))
    verdict = _recv_handshake(sock)
    if verdict != _WELCOME:
        raise AuthenticationError("listener rejected our auth key")


async def deliver_challenge_async(
    reader: asyncio.StreamReader, writer: asyncio.StreamWriter, key: bytes
) -> None:
    """Listener side of the handshake over asyncio streams."""
    challenge = _CHALLENGE + os.urandom(_CHALLENGE_BYTES)
    _write_handshake(writer, challenge)
    await writer.drain()
    response = await _read_handshake(reader)
    if not hmac.compare_digest(response, _answer(key, challenge)):
        _write_handshake(writer, _FAILURE)
        await writer.drain()
        raise AuthenticationError("peer failed the auth handshake")
    _write_handshake(writer, _WELCOME)
    await writer.drain()


async def answer_challenge_async(
    reader: asyncio.StreamReader, writer: asyncio.StreamWriter, key: bytes
) -> None:
    """Dialer side of the handshake over asyncio streams."""
    challenge = await _read_handshake(reader)
    if not challenge.startswith(_CHALLENGE):
        raise AuthenticationError("peer did not issue an auth challenge")
    _write_handshake(writer, _answer(key, challenge))
    await writer.drain()
    verdict = await _read_handshake(reader)
    if verdict != _WELCOME:
        raise AuthenticationError("listener rejected our auth key")


# ----------------------------------------------------------------------
# Key resolution and bind gating
# ----------------------------------------------------------------------
def resolve_auth_key(explicit: str | bytes | None = None) -> bytes | None:
    """The cluster key: the explicit value, else ``REPRO_AUTH_KEY``.

    Returns ``None`` when neither is set (loopback-only operation).
    """
    if explicit:
        return explicit if isinstance(explicit, bytes) else explicit.encode("utf-8")
    from_env = os.environ.get(AUTH_KEY_ENV)
    return from_env.encode("utf-8") if from_env else None


def is_loopback(host: str) -> bool:
    """Whether ``host`` names a loopback interface."""
    if host in ("localhost", ""):
        return True
    try:
        return ipaddress.ip_address(host).is_loopback
    except ValueError:
        return False


def require_auth_for_bind(host: str, auth_key: bytes | None) -> None:
    """Refuse a non-loopback bind without a pre-shared key.

    The wire format is pickle; an unauthenticated non-loopback listener
    hands code execution to anyone who can reach the port.
    """
    if auth_key is None and not is_loopback(host):
        raise ConfigError(
            f"refusing to bind non-loopback interface {host!r} without an "
            f"auth key; pass --auth-key or set {AUTH_KEY_ENV} (the same key "
            f"on every host)"
        )
