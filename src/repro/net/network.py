"""The reliable asynchronous network connecting all processes.

Semantics follow the paper's system model: every sent message is
delivered uncorrupted at its destination after a finite delay with no
known bound (the delay model decides the actual value).  There is no
loss, duplication or corruption; Byzantine behaviour lives in the
*processes*, not the wire.

Delivery pipeline for one message::

    sender actor          network                    receiving node
    -----------------     ----------------------     -------------------------
    send(dest, payload,   arrival = depart + delay   service = receive_service
         size, depart) -> schedule at arrival    ->  done = cpu.submit(service)
                                                     on_message at `done`

so a burst of arrivals serialises on the receiver's CPU — the mechanism
behind the saturation regions of Figures 4 and 5.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.errors import ConfigError, SimulationError
from repro.net.delay import DelayModel, LanDelay
from repro.net.message import Envelope
from repro.sim.kernel import Simulator
from repro.sim.process import Actor


class Network:
    """Reliable asynchronous message fabric between named actors.

    Parameters
    ----------
    sim:
        The simulator whose clock and RNG the network uses.
    default_link:
        Delay model used for any (src, dst) without an override.
    """

    def __init__(self, sim: Simulator, default_link: DelayModel | None = None) -> None:
        self.sim = sim
        self.default_link = default_link if default_link is not None else LanDelay()
        self._actors: dict[str, Actor] = {}
        self._links: dict[tuple[str, str], DelayModel] = {}
        self._taps: list[Callable[[Envelope], None]] = []
        self._next_msg_id = 0
        self.messages_sent = 0
        self.bytes_sent = 0
        #: Messages that travelled on a dedicated (overridden) link —
        #: in the paper's architecture, the fast replica-shadow
        #: connections.  ``messages_sent - pair_messages_sent`` is the
        #: load on the shared asynchronous network, the quantity the
        #: paper's message-overhead comparison concerns.
        self.pair_messages_sent = 0
        self.messages_by_sender: dict[str, int] = {}
        self._hold_predicate: Callable[[Envelope], bool] | None = None
        self._held: list[Envelope] = []
        # Per-(src, dst) jitter streams, resolved once: the registry
        # lookup itself is cached, but the hot send path was paying an
        # f-string + two method calls per message to reach it.
        self._stream_cache: dict[tuple[str, str], Any] = {}

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def attach(self, actor: Actor) -> None:
        """Register an actor under its name.  Names must be unique."""
        if actor.name in self._actors:
            raise ConfigError(f"duplicate actor name {actor.name!r}")
        self._actors[actor.name] = actor

    def actor(self, name: str) -> Actor:
        """Look up a registered actor."""
        try:
            return self._actors[name]
        except KeyError:
            raise ConfigError(f"no actor named {name!r}") from None

    def has_actor(self, name: str) -> bool:
        """True when ``name`` is attached to this network."""
        return name in self._actors

    @property
    def names(self) -> list[str]:
        """All attached actor names, in attachment order."""
        return list(self._actors)

    def set_link(self, src: str, dst: str, model: DelayModel) -> None:
        """Override the delay model for the directed link ``src -> dst``."""
        self._links[(src, dst)] = model

    def link(self, src: str, dst: str) -> DelayModel:
        """The delay model in force for ``src -> dst``."""
        return self._links.get((src, dst), self.default_link)

    def tap(self, callback: Callable[[Envelope], None]) -> None:
        """Observe every envelope as it departs (testing / metrics)."""
        self._taps.append(callback)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def send(
        self,
        sender: str,
        dest: str,
        payload: Any,
        size_bytes: int,
        depart_time: float | None = None,
    ) -> Envelope:
        """Send one message; returns the (already scheduled) envelope.

        ``depart_time`` is when the sender's CPU finished marshalling;
        it defaults to *now* and may not be in the past.
        """
        if size_bytes < 0:
            raise ConfigError(f"negative message size {size_bytes}")
        if dest not in self._actors:
            raise ConfigError(f"message to unknown actor {dest!r}")
        now = self.sim.now
        depart = now if depart_time is None else depart_time
        if depart < now:
            raise SimulationError(
                f"depart_time {depart} is before now {now}"
            )
        key = (sender, dest)
        rng = self._stream_cache.get(key)
        if rng is None:
            rng = self.sim.rng.stream(f"net/{sender}->{dest}")
            self._stream_cache[key] = rng
        link = self._links.get(key)
        dedicated = link is not None
        if link is None:
            link = self.default_link
        delay = link.sample(size_bytes, rng, depart)
        envelope = Envelope(
            msg_id=self._next_msg_id,
            sender=sender,
            dest=dest,
            payload=payload,
            size_bytes=size_bytes,
            depart_time=depart,
            arrive_time=depart + delay,
        )
        self._next_msg_id += 1
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        if dedicated:
            self.pair_messages_sent += 1
        self.messages_by_sender[sender] = self.messages_by_sender.get(sender, 0) + 1
        for tap in self._taps:
            tap(envelope)
        if self._hold_predicate is not None and self._hold_predicate(envelope):
            self._held.append(envelope)
        else:
            self.sim.schedule_at(envelope.arrive_time, self._deliver, envelope)
        return envelope

    # ------------------------------------------------------------------
    # Experiment control: deferred delivery
    # ------------------------------------------------------------------
    def hold_matching(self, predicate: Callable[[Envelope], bool]) -> None:
        """Defer delivery of envelopes matching ``predicate``.

        The network stays *reliable*: held messages are delivered when
        :meth:`release_held` runs.  Experiments use this to age traffic
        (e.g. delaying acks so acked-but-uncommitted orders accumulate
        into BackLogs of a target size for the Figure 6 measurements);
        it models a transient delay spike on the asynchronous network,
        which the system model explicitly permits.
        """
        self._hold_predicate = predicate

    def release_held(self) -> None:
        """Deliver everything held and stop holding."""
        self._hold_predicate = None
        held, self._held = self._held, []
        for envelope in held:
            deliver_at = max(envelope.arrive_time, self.sim.now)
            self.sim.schedule_at(deliver_at, self._deliver, envelope)

    @property
    def held_count(self) -> int:
        """Number of envelopes currently held."""
        return len(self._held)

    def multicast(
        self,
        sender: str,
        dests: Iterable[str],
        payload: Any,
        size_bytes: int,
        depart_time: float | None = None,
    ) -> list[Envelope]:
        """Send the same payload to several destinations.

        Each copy is an independent unicast (the paper's implementation
        uses point-to-point TCP, not IP multicast), so each samples its
        own delay and counts toward the message totals.
        """
        return [
            self.send(sender, dest, payload, size_bytes, depart_time)
            for dest in dests
        ]

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def _deliver(self, envelope: Envelope) -> None:
        actor = self._actors.get(envelope.dest)
        if actor is None:  # actor detached mid-flight; drop silently
            return
        service = actor.receive_service(envelope.payload, envelope.size_bytes)
        if service <= 0.0:
            # Zero-service messages model interrupt-level handling
            # (heartbeats, keepalives): they do not queue behind the
            # node's protocol work.
            self._dispatch(actor, envelope)
            return
        done = actor.cpu.submit(service)
        self.sim.schedule_at(done, self._dispatch, actor, envelope)

    def _dispatch(self, actor: Actor, envelope: Envelope) -> None:
        actor.on_message(envelope.sender, envelope.payload)
