"""The reliable asynchronous network connecting all processes.

Semantics follow the paper's system model: every sent message is
delivered uncorrupted at its destination after a finite delay with no
known bound (the delay model decides the actual value).  There is no
loss, duplication or corruption; Byzantine behaviour lives in the
*processes*, not the wire.

Delivery pipeline for one message::

    sender actor          network                    receiving node
    -----------------     ----------------------     -------------------------
    send(dest, payload,   arrival = depart + delay   service = receive_service
         size, depart) -> schedule at arrival    ->  done = cpu.submit(service)
                                                     on_message at `done`

so a burst of arrivals serialises on the receiver's CPU — the mechanism
behind the saturation regions of Figures 4 and 5.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, Iterable

from repro.errors import ConfigError, SimulationError
from repro.net.delay import DelayModel, LanDelay, LinkDelayStream
from repro.net.message import Envelope
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.process import Actor


class Network:
    """Reliable asynchronous message fabric between named actors.

    Parameters
    ----------
    sim:
        The simulator whose clock and RNG the network uses.
    default_link:
        Delay model used for any (src, dst) without an override.
    """

    def __init__(self, sim: Simulator, default_link: DelayModel | None = None) -> None:
        self.sim = sim
        self.default_link = default_link if default_link is not None else LanDelay()
        self._actors: dict[str, Actor] = {}
        self._links: dict[tuple[str, str], DelayModel] = {}
        self._taps: list[Callable[[Envelope], None]] = []
        self._next_msg_id = 0
        self.messages_sent = 0
        self.bytes_sent = 0
        #: Messages that travelled on a dedicated (overridden) link —
        #: in the paper's architecture, the fast replica-shadow
        #: connections.  ``messages_sent - pair_messages_sent`` is the
        #: load on the shared asynchronous network, the quantity the
        #: paper's message-overhead comparison concerns.
        self.pair_messages_sent = 0
        self.messages_by_sender: dict[str, int] = {}
        self._hold_predicate: Callable[[Envelope], bool] | None = None
        self._held: list[Envelope] = []
        # Per-(src, dst) resolved links: (LinkDelayStream, dedicated)
        # pairs built on first use.  Resolving once fuses the registry
        # lookup, the link-override lookup and the delay-model dispatch
        # that the hot send path used to repeat per message; set_link
        # invalidates the affected entry.
        self._stream_cache: dict[tuple[str, str], tuple[LinkDelayStream, bool]] = {}

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def attach(self, actor: Actor) -> None:
        """Register an actor under its name.  Names must be unique."""
        if actor.name in self._actors:
            raise ConfigError(f"duplicate actor name {actor.name!r}")
        self._actors[actor.name] = actor

    def actor(self, name: str) -> Actor:
        """Look up a registered actor."""
        try:
            return self._actors[name]
        except KeyError:
            raise ConfigError(f"no actor named {name!r}") from None

    def has_actor(self, name: str) -> bool:
        """True when ``name`` is attached to this network."""
        return name in self._actors

    @property
    def names(self) -> list[str]:
        """All attached actor names, in attachment order."""
        return list(self._actors)

    def set_link(self, src: str, dst: str, model: DelayModel) -> None:
        """Override the delay model for the directed link ``src -> dst``.

        Meant for topology construction; replacing a link that already
        carried traffic discards any draws its stream had prefetched
        (the link's RNG stream continues from wherever it stands).
        """
        key = (src, dst)
        self._links[key] = model
        self._stream_cache.pop(key, None)

    def link(self, src: str, dst: str) -> DelayModel:
        """The delay model in force for ``src -> dst``."""
        return self._links.get((src, dst), self.default_link)

    def tap(self, callback: Callable[[Envelope], None]) -> None:
        """Observe every envelope as it departs (testing / metrics)."""
        self._taps.append(callback)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def send(
        self,
        sender: str,
        dest: str,
        payload: Any,
        size_bytes: int,
        depart_time: float | None = None,
    ) -> Envelope:
        """Send one message; returns the (already scheduled) envelope.

        ``depart_time`` is when the sender's CPU finished marshalling;
        it defaults to *now* and may not be in the past.
        """
        if size_bytes < 0:
            raise ConfigError(f"negative message size {size_bytes}")
        if dest not in self._actors:
            raise ConfigError(f"message to unknown actor {dest!r}")
        sim = self.sim
        now = sim.now
        depart = now if depart_time is None else depart_time
        if depart < now:
            raise SimulationError(
                f"depart_time {depart} is before now {now}"
            )
        key = (sender, dest)
        entry = self._stream_cache.get(key)
        if entry is None:
            entry = self._resolve_link(key)
        stream, dedicated = entry
        delay = stream.sample(size_bytes, depart)
        msg_id = self._next_msg_id
        envelope = Envelope(
            msg_id=msg_id,
            sender=sender,
            dest=dest,
            payload=payload,
            size_bytes=size_bytes,
            depart_time=depart,
            arrive_time=depart + delay,
        )
        self._next_msg_id = msg_id + 1
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        if dedicated:
            self.pair_messages_sent += 1
        by_sender = self.messages_by_sender
        by_sender[sender] = by_sender.get(sender, 0) + 1
        taps = self._taps
        if taps:
            for tap in taps:
                tap(envelope)
        hold = self._hold_predicate
        if hold is not None and hold(envelope):
            self._held.append(envelope)
        else:
            sim.schedule_at(envelope.arrive_time, self._deliver, envelope)
        return envelope

    def _resolve_link(self, key: tuple[str, str]) -> tuple[LinkDelayStream, bool]:
        """Build and cache the resolved stream for one directed link."""
        sender, dest = key
        rng = self.sim.rng.stream(f"net/{sender}->{dest}")
        link = self._links.get(key)
        dedicated = link is not None
        entry = (LinkDelayStream(link if dedicated else self.default_link, rng), dedicated)
        self._stream_cache[key] = entry
        return entry

    # ------------------------------------------------------------------
    # Experiment control: deferred delivery
    # ------------------------------------------------------------------
    def hold_matching(self, predicate: Callable[[Envelope], bool]) -> None:
        """Defer delivery of envelopes matching ``predicate``.

        The network stays *reliable*: held messages are delivered when
        :meth:`release_held` runs.  Experiments use this to age traffic
        (e.g. delaying acks so acked-but-uncommitted orders accumulate
        into BackLogs of a target size for the Figure 6 measurements);
        it models a transient delay spike on the asynchronous network,
        which the system model explicitly permits.
        """
        self._hold_predicate = predicate

    def release_held(self) -> None:
        """Deliver everything held and stop holding."""
        self._hold_predicate = None
        held, self._held = self._held, []
        for envelope in held:
            deliver_at = max(envelope.arrive_time, self.sim.now)
            self.sim.schedule_at(deliver_at, self._deliver, envelope)

    @property
    def held_count(self) -> int:
        """Number of envelopes currently held."""
        return len(self._held)

    def multicast(
        self,
        sender: str,
        dests: Iterable[str],
        payload: Any,
        size_bytes: int,
        depart_time: float | None = None,
    ) -> list[Envelope]:
        """Send the same payload to several destinations.

        Each copy is an independent unicast (the paper's implementation
        uses point-to-point TCP, not IP multicast), so each samples its
        own delay and counts toward the message totals.  The loop body
        is :meth:`send` with the per-call validation, clock reads and
        sender bookkeeping hoisted out — a protocol round multicasts to
        every process, so this is the second-hottest network entry
        point after delivery.
        """
        if size_bytes < 0:
            raise ConfigError(f"negative message size {size_bytes}")
        sim = self.sim
        now = sim.now
        depart = now if depart_time is None else depart_time
        if depart < now:
            raise SimulationError(f"depart_time {depart} is before now {now}")
        actors = self._actors
        cache = self._stream_cache
        taps = self._taps
        hold = self._hold_predicate
        envelopes: list[Envelope] = []
        n_sent = 0
        n_dedicated = 0
        msg_id = self._next_msg_id
        for dest in dests:
            if dest not in actors:
                raise ConfigError(f"message to unknown actor {dest!r}")
            entry = cache.get((sender, dest))
            if entry is None:
                entry = self._resolve_link((sender, dest))
            stream, dedicated = entry
            delay = stream.sample(size_bytes, depart)
            envelope = Envelope(
                msg_id=msg_id,
                sender=sender,
                dest=dest,
                payload=payload,
                size_bytes=size_bytes,
                depart_time=depart,
                arrive_time=depart + delay,
            )
            msg_id += 1
            n_sent += 1
            if dedicated:
                n_dedicated += 1
            if taps:
                for tap in taps:
                    tap(envelope)
            if hold is not None and hold(envelope):
                self._held.append(envelope)
            else:
                sim.schedule_at(envelope.arrive_time, self._deliver, envelope)
            envelopes.append(envelope)
        self._next_msg_id = msg_id
        self.messages_sent += n_sent
        self.bytes_sent += n_sent * size_bytes
        self.pair_messages_sent += n_dedicated
        if n_sent:
            by_sender = self.messages_by_sender
            by_sender[sender] = by_sender.get(sender, 0) + n_sent
        return envelopes

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def _deliver(self, envelope: Envelope) -> None:
        actor = self._actors.get(envelope.dest)
        if actor is None:  # actor detached mid-flight; drop silently
            return
        service = actor.receive_service(envelope.payload, envelope.size_bytes)
        if service <= 0.0:
            # Zero-service messages model interrupt-level handling
            # (heartbeats, keepalives): they do not queue behind the
            # node's protocol work.
            actor.on_message(envelope.sender, envelope.payload)
            return
        # Inlined Cpu.submit + Simulator.schedule_at (bit-identical
        # arithmetic; keep in lockstep with both): this pair runs once
        # per queued delivery, the hottest compound call in a sweep.
        # ``on_message`` is scheduled directly — it re-checks crash
        # state at dispatch time itself.
        cpu = actor.cpu
        sim = self.sim
        now = sim.now
        busy = cpu.busy_until
        if busy > now:
            effective = service * (1.0 + cpu.overload_gamma * (busy - now))
            completion = busy + effective
        else:
            effective = service
            completion = now + service
        cpu.busy_until = completion
        cpu.total_busy += effective
        cpu.tasks_run += 1
        queue = sim._queue
        seq = queue._seq
        event = Event(
            completion, seq, actor.on_message, (envelope.sender, envelope.payload), queue
        )
        queue._seq = seq + 1
        heappush(queue._heap, (completion, seq, event))
