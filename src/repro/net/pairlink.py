"""The fast reliable link inside a process pair.

The paper connects each replica node to its shadow "by a fast reliable
network" and uses Java RMI across it.  We model it as a LAN link with
lower propagation delay and negligible jitter; RMI's per-call CPU
overhead is part of the calibration profile, not the link.
"""

from __future__ import annotations

from repro.net.delay import DelayModel, LanDelay
from repro.net.network import Network


def default_pair_link() -> LanDelay:
    """Delay model for the dedicated replica-shadow connection."""
    return LanDelay(propagation=40e-6, bandwidth_bytes_per_s=12.5e6, jitter=10e-6)


def connect_pair(
    network: Network,
    first: str,
    second: str,
    model: DelayModel | None = None,
) -> DelayModel:
    """Install a fast link in both directions between two processes.

    Returns the model so fault injectors can wrap or inspect it.
    """
    link = model if model is not None else default_pair_link()
    network.set_link(first, second, link)
    network.set_link(second, first, link)
    return link
