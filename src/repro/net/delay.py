"""Message delay models.

A delay model answers: how long does a message of ``size_bytes`` spend
in flight on this link?  Models receive the current virtual time so that
fault injectors can create bounded delay surges (used to provoke the
false suspicions that distinguish SCR from SC).

For the hot send path the network resolves each ``(src, dst)`` link
into a :class:`LinkDelayStream` once and samples through it thereafter:
the stream prefetches uniform draws in chunks and evaluates the common
LAN formula closed-form, producing bit-identical delays to the
per-send ``model.sample(...)`` protocol at a fraction of the interpreter
overhead.
"""

from __future__ import annotations

import random

from repro.errors import ConfigError

# Uniform draws prefetched per refill.  Chunks are built lazily on
# first use, so links that never carry traffic draw nothing and the
# stream's k-th draw is always the underlying generator's k-th draw.
_CHUNK = 512


class DelayModel:
    """Interface: sample the in-flight time of one message."""

    def sample(self, size_bytes: int, rng: random.Random, now: float) -> float:
        raise NotImplementedError


class ConstantDelay(DelayModel):
    """Fixed delay regardless of size.  Mostly for unit tests.

    >>> ConstantDelay(0.001).sample(10_000, random.Random(0), now=0.0)
    0.001
    """

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ConfigError(f"negative delay {delay}")
        self.delay = delay

    def sample(self, size_bytes: int, rng: random.Random, now: float) -> float:
        return self.delay


class LanDelay(DelayModel):
    """Switched-LAN model: propagation + transmission + uniform jitter.

    ``delay = propagation + size / bandwidth + U(0, jitter)``

    Defaults approximate the paper's 100 Mb/s switched Ethernet:
    ~0.1 ms propagation/switching, 12.5 MB/s, a few tens of
    microseconds of jitter.
    """

    def __init__(
        self,
        propagation: float = 100e-6,
        bandwidth_bytes_per_s: float = 12.5e6,
        jitter: float = 50e-6,
    ) -> None:
        if propagation < 0 or jitter < 0:
            raise ConfigError("propagation and jitter must be >= 0")
        if bandwidth_bytes_per_s <= 0:
            raise ConfigError("bandwidth must be > 0")
        self.propagation = propagation
        self.bandwidth = bandwidth_bytes_per_s
        self.jitter = jitter

    def sample(self, size_bytes: int, rng: random.Random, now: float) -> float:
        transmission = size_bytes / self.bandwidth
        return self.propagation + transmission + rng.uniform(0.0, self.jitter)


class SurgeableDelay(DelayModel):
    """Wraps another model and multiplies delays during surge windows.

    The fault injector uses this to make a pair's delay estimates
    temporarily inaccurate — the scenario where SCR's eventually-accurate
    assumption 3(b)(i) differs from SC's always-accurate 3(a)(i).
    """

    def __init__(self, inner: DelayModel, surge_factor: float = 10.0) -> None:
        if surge_factor < 1.0:
            raise ConfigError("surge_factor must be >= 1")
        self.inner = inner
        self.surge_factor = surge_factor
        self._surges: list[tuple[float, float, float]] = []

    def add_surge(self, start: float, end: float, factor: float | None = None) -> None:
        """Inflate delays for messages departing in ``[start, end)``.

        ``factor`` defaults to the link's ``surge_factor``; passing it
        per window lets several surges of different severity coexist
        on one link (cascading-fault scenarios).
        """
        if end <= start:
            raise ConfigError(f"empty surge window [{start}, {end})")
        if factor is not None and factor < 1.0:
            raise ConfigError("surge factor must be >= 1")
        self._surges.append(
            (start, end, self.surge_factor if factor is None else factor)
        )

    def in_surge(self, now: float) -> bool:
        """True when ``now`` falls inside any registered surge window."""
        return any(start <= now < end for start, end, _ in self._surges)

    def surge_factor_at(self, now: float) -> float:
        """The inflation applied to messages departing at ``now``
        (the largest factor among windows covering it, 1.0 outside)."""
        factors = [f for start, end, f in self._surges if start <= now < end]
        return max(factors, default=1.0)

    def sample(self, size_bytes: int, rng: random.Random, now: float) -> float:
        return self.inner.sample(size_bytes, rng, now) * self.surge_factor_at(now)


class DrawStream:
    """Chunked, lazily-refilled uniform draws from one generator.

    ``next()`` returns exactly the sequence ``rng.random()`` would —
    the chunk is only a prefetch buffer, refilled on demand — so any
    consumer switching from per-call draws to a stream keeps its draw
    sequence bit-identical.
    """

    __slots__ = ("_random", "_buf", "_i")

    def __init__(self, rng: random.Random) -> None:
        self._random = rng.random
        self._buf: list[float] = []
        self._i = 0

    def next(self) -> float:
        """The next uniform [0, 1) draw."""
        i = self._i
        buf = self._buf
        if i >= len(buf):
            random_ = self._random
            self._buf = buf = [random_() for _ in range(_CHUNK)]
            i = 0
        self._i = i + 1
        return buf[i]


class LinkDelayStream:
    """A resolved ``(src, dst)`` link: one-call delay sampling.

    Wraps a delay model and the link's dedicated RNG stream.  For the
    dominant configurations — :class:`LanDelay`, optionally inside a
    :class:`SurgeableDelay` — the delay is computed closed-form from a
    chunk-prefetched draw buffer (one Python frame per message instead
    of three); anything else falls back to the model's own ``sample``.
    Both paths are bit-identical to calling ``model.sample(size, rng,
    now)`` per send: the buffer preserves draw order, ``jitter * u``
    equals ``rng.uniform(0.0, jitter)`` bit-for-bit, and the no-surge
    fast exit skips only a ``* 1.0``.

    Surge windows added to a wrapped :class:`SurgeableDelay` *after*
    stream creation are honoured — the surge list is consulted live.
    Replacing the model itself requires a new stream; the network
    invalidates its cache in ``set_link``.
    """

    __slots__ = (
        "model",
        "_rng",
        "_random",
        "_buf",
        "_i",
        "_fast",
        "_propagation",
        "_bandwidth",
        "_jitter",
        "_surge",
    )

    def __init__(self, model: DelayModel, rng: random.Random) -> None:
        self.model = model
        self._rng = rng
        self._random = rng.random
        self._buf: list[float] = []
        self._i = 0
        self._surge: SurgeableDelay | None = None
        inner = model
        if type(model) is SurgeableDelay:
            self._surge = model
            inner = model.inner
        # Exact type checks: a subclass may override sample(), so only
        # the stock LanDelay formula is safe to inline.
        self._fast = type(inner) is LanDelay
        if self._fast:
            self._propagation = inner.propagation
            self._bandwidth = inner.bandwidth
            self._jitter = inner.jitter

    def sample(self, size_bytes: int, now: float) -> float:
        """Delay for one message of ``size_bytes`` departing at ``now``."""
        if self._fast:
            i = self._i
            buf = self._buf
            if i >= len(buf):
                random_ = self._random
                self._buf = buf = [random_() for _ in range(_CHUNK)]
                i = 0
            self._i = i + 1
            delay = self._propagation + size_bytes / self._bandwidth + self._jitter * buf[i]
            surge = self._surge
            if surge is not None and surge._surges:
                delay *= surge.surge_factor_at(now)
            return delay
        return self.model.sample(size_bytes, self._rng, now)
