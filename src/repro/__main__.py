"""Command-line entry point: ``python -m repro <command>``.

A thin wrapper over :mod:`repro.harness.experiments`'s CLI so the
package itself is runnable; also the ``repro`` console-script target.

The ``worker``, ``serve``, ``load`` and ``lint`` subcommands
short-circuit before the experiments CLI is imported: sweep
coordinators (:mod:`repro.harness.exec.sockets`) spawn one ``python -m
repro worker`` process per job, the live-cluster controller
(:mod:`repro.live.cluster`) spawns one ``python -m repro serve
--join`` process per replica, the static-analysis pass
(:mod:`repro.analysis`) needs no simulator at all, and the fast paths
defer the experiments CLI (its argparse tree, figure rendering and
their import chain) until a command actually needs it.  The behaviour
is identical either way — these paths and the matching subcommands in
:mod:`repro.harness.experiments` delegate to the same mains.
"""

import sys


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "worker":
        from repro.harness.exec.sockets import main as worker_main

        return worker_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.live.cluster import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "load":
        from repro.live.client import main as load_main

        return load_main(argv[1:])
    if argv and argv[0] == "lint":
        from repro.analysis.cli import main as lint_main

        return lint_main(argv[1:])
    from repro.harness.experiments import main as _main

    return _main(argv)


if __name__ == "__main__":
    sys.exit(main())
