"""Command-line entry point: ``python -m repro <figure>``.

A thin wrapper over :mod:`repro.harness.experiments`'s CLI so the
package itself is runnable.
"""

import sys

from repro.harness.experiments import main

if __name__ == "__main__":
    sys.exit(main())
