"""Command-line entry point: ``python -m repro <command>``.

A thin wrapper over :mod:`repro.harness.experiments`'s CLI so the
package itself is runnable; also the ``repro`` console-script target.
"""

import sys


def main(argv: list[str] | None = None) -> int:
    from repro.harness.experiments import main as _main

    return _main(argv)


if __name__ == "__main__":
    sys.exit(main())
