"""Command-line entry point: ``python -m repro <command>``.

A thin wrapper over :mod:`repro.harness.experiments`'s CLI so the
package itself is runnable; also the ``repro`` console-script target.

The ``worker`` subcommand short-circuits before the experiments CLI
is imported: sweep coordinators (:mod:`repro.harness.exec.sockets`)
spawn one ``python -m repro worker`` process per job, and the fast
path defers the experiments CLI (its argparse tree, figure rendering
and their import chain) until the first task actually needs it.  The
behaviour is identical either way — both this path and the
``worker`` subcommand in :mod:`repro.harness.experiments` delegate to
the same :func:`repro.harness.exec.sockets.main`.
"""

import sys


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "worker":
        from repro.harness.exec.sockets import main as worker_main

        return worker_main(argv[1:])
    from repro.harness.experiments import main as _main

    return _main(argv)


if __name__ == "__main__":
    sys.exit(main())
