"""repro — reproduction of Inayat & Ezhilchelvan (DSN 2006):
"A Performance Study on the Signal-On-Fail Approach to Imposing Total
Order in the Streets of Byzantium".

The package implements the paper's signal-on-crash total-order
protocols (SC and SCR), the baselines it compares against (Castro &
Liskov's BFT, a crash-tolerant CT), and the full substrate required to
reproduce its evaluation: a deterministic discrete-event simulator
standing in for the 15-machine LAN testbed, a from-scratch crypto stack
(RSA, DSA, MD5, SHA-1), failure injection, and an experiment harness
regenerating every figure.

Quick start::

    from repro import ProtocolConfig, build_cluster, OpenLoopWorkload

    cluster = build_cluster("sc", ProtocolConfig(f=2))
    workload = OpenLoopWorkload(cluster, rate=200, duration=2.0)
    workload.install()
    cluster.start()
    cluster.run(until=3.0)
    print(cluster.agreement_digests())
"""

from repro.calibration import CalibrationProfile, ideal_testbed, paper_testbed
from repro.core.config import ProtocolConfig
from repro.core.client import Client
from repro.core.requests import ClientRequest
from repro.core.sc import ScProcess
from repro.core.scr import ScrProcess
from repro.baselines.bft.replica import BftReplica
from repro.baselines.ct import CtProcess
from repro.crypto.schemes import (
    MD5_RSA_1024,
    MD5_RSA_1536,
    PAPER_SCHEMES,
    PLAIN,
    SHA1_DSA_1024,
    CryptoScheme,
    scheme_by_name,
)
from repro.errors import (
    ConfigError,
    CryptoError,
    ProtocolError,
    ReproError,
    SimulationError,
    VerificationError,
)
from repro.harness.cluster import Cluster, build_cluster
from repro.harness.scenario import ScenarioSpec, run_scenario
from repro.harness.workload import OpenLoopWorkload, saturating_rate
from repro.protocols import OrderProtocol
from repro.protocols import names as protocol_names
from repro.protocols import register as register_protocol
from repro.sim.kernel import Simulator

__version__ = "1.0.0"

__all__ = [
    "BftReplica",
    "CalibrationProfile",
    "Client",
    "ClientRequest",
    "Cluster",
    "ConfigError",
    "CryptoError",
    "CryptoScheme",
    "CtProcess",
    "MD5_RSA_1024",
    "MD5_RSA_1536",
    "OpenLoopWorkload",
    "OrderProtocol",
    "PAPER_SCHEMES",
    "PLAIN",
    "ProtocolConfig",
    "ProtocolError",
    "ReproError",
    "SHA1_DSA_1024",
    "ScProcess",
    "ScenarioSpec",
    "ScrProcess",
    "SimulationError",
    "Simulator",
    "VerificationError",
    "build_cluster",
    "ideal_testbed",
    "paper_testbed",
    "protocol_names",
    "register_protocol",
    "run_scenario",
    "saturating_rate",
    "scheme_by_name",
    "__version__",
]
