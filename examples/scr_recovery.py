#!/usr/bin/env python3
"""SCR demo: false suspicion from a delay surge, then pair recovery.

Under assumption 3(b)(i) the delay estimates inside a pair are only
*eventually* accurate.  This script surges the pair link of the
coordinator pair {p1, p1'} so the two (perfectly correct) processes
suspect each other and fail-signal; the view change moves coordination
to pair {p2, p2'}; and once the surge passes, continued mutual checking
lets {p1, p1'} recover to status "up".

Run:  python examples/scr_recovery.py
"""

from repro import ProtocolConfig, build_cluster, OpenLoopWorkload
from repro.failures.faults import DelaySurgeFault


def main() -> None:
    config = ProtocolConfig(f=2, variant="scr", batching_interval=0.100)
    cluster = build_cluster("scr", config=config, seed=11)
    print(f"SCR deployment: n = 3f+2 = {config.n} processes, "
          f"{config.pair_count} pairs (only pairs coordinate)\n")

    workload = OpenLoopWorkload(cluster, rate=100, duration=4.0)
    workload.install()
    cluster.injector.surge_link(
        cluster.pair_links[1],
        DelaySurgeFault(active_from=1.0, until=1.8, factor=40000.0),
    )
    print("injected: pair-1 link delays surge x40000 during t = 1.0 .. 1.8 s\n")

    cluster.start()
    cluster.run(until=8.0)

    for record in cluster.sim.trace:
        if record.kind == "fail_signal_emitted":
            print(f"t={record.time:.3f}s  {record.fields['actor']} fail-signalled "
                  f"({record.fields['domain']} domain) — false suspicion")
        elif record.kind == "view_installed":
            print(f"t={record.time:.3f}s  {record.fields['actor']} installed view "
                  f"{record.fields['view']} (coordinator pair {record.fields['rank']})")
        elif record.kind == "pair_recovered":
            print(f"t={record.time:.3f}s  {record.fields['actor']} recovered: "
                  f"pair status back to 'up'")

    p1 = cluster.process("p1")
    print(f"\npair 1 final status: {p1.status} (recoveries: {p1.recoveries})")
    digests = set(cluster.agreement_digests().values())
    assert len(digests) == 1
    applied = {p.machine.applied_seq for p in cluster.processes.values()}
    print(f"all {len(cluster.processes)} processes executed the same "
          f"{applied.pop()} entries despite the false suspicion ✓")


if __name__ == "__main__":
    main()
