#!/usr/bin/env python3
"""Message-overhead study: SC vs BFT on the shared network.

The paper claims SC wins "also with a smaller message overhead in
failure-free scenarios".  This script counts, per committed batch, the
messages each protocol puts on the shared asynchronous network (pair
links are dedicated point-to-point wires and excluded, as in the
paper's architecture), plus the closing of the SMR loop with client
replies (f+1 matching rule).

Run:  python examples/message_overhead.py
"""

from repro import ProtocolConfig, build_cluster, OpenLoopWorkload
from repro.harness.metrics import collect_latencies
from repro.harness.report import render_table


def measure(protocol: str) -> dict:
    config = ProtocolConfig(f=2, batching_interval=0.100, send_replies=True)
    cluster = build_cluster(protocol, config=config, seed=13)
    workload = OpenLoopWorkload(cluster, rate=120, duration=2.0)
    workload.install()
    cluster.start()
    cluster.run(until=4.0)
    batches = len(collect_latencies(cluster.sim.trace))
    shared = cluster.network.messages_sent - cluster.network.pair_messages_sent
    completed = sum(c.completed_count for c in cluster.clients)
    return {
        "batches": batches,
        "shared_msgs": shared,
        "shared_per_batch": shared / batches,
        "bytes": cluster.network.bytes_sent,
        "completed": completed,
        "issued": workload.issued,
    }


def main() -> None:
    rows = []
    results = {}
    for protocol in ("ct", "sc", "bft"):
        result = measure(protocol)
        results[protocol] = result
        rows.append((
            protocol,
            result["batches"],
            f"{result['shared_per_batch']:.1f}",
            f"{result['bytes'] / 1024:.0f}",
            f"{result['completed']}/{result['issued']}",
        ))
    print(render_table(
        "Message overhead per committed batch (f = 2, incl. client replies)",
        ("protocol", "batches", "shared msgs/batch", "total KB", "replies done"),
        rows,
    ))
    sc = results["sc"]["shared_per_batch"]
    bft = results["bft"]["shared_per_batch"]
    print(f"\nSC places {sc:.1f} messages per batch on the shared network "
          f"vs BFT's {bft:.1f} ({bft / sc:.2f}x) — the paper's 'smaller "
          f"message overhead' claim.")
    for protocol, result in results.items():
        assert result["completed"] == result["issued"], protocol
    print("every request reached f+1 matching client replies in all three ✓")


if __name__ == "__main__":
    main()
