#!/usr/bin/env python3
"""Mini Figure 4/5: CT vs SC vs BFT latency and throughput.

Sweeps three batching intervals for each protocol under MD5+RSA-1024
and prints the paper's comparison: CT cheapest (crash faults only),
SC in the middle, BFT slowest and first into saturation.

The protocol line-up comes straight from the plugin registry
(:mod:`repro.protocols`) — register a new protocol and it appears in
this comparison without touching the sweep code.

Run:  python examples/compare_protocols.py        (~1 minute)
"""

import repro.protocols as protocols
from repro.harness.experiments import run_order_experiment
from repro.harness.report import render_table


def main() -> None:
    intervals = (0.060, 0.100, 0.250)
    # Every registered plugin joins the comparison; SCR is skipped only
    # because its failure-free behaviour matches SC (it would double
    # the runtime to show an identical line).
    line_up = [name for name in protocols.names() if name != "scr"]
    rows = []
    for protocol in line_up:
        plugin = protocols.get(protocol)
        for interval in intervals:
            result = run_order_experiment(
                protocol, "md5-rsa1024", interval,
                n_batches=30, warmup_batches=6,
            )
            rows.append((
                protocol,
                str(plugin.n(result.f)),
                f"{interval * 1e3:.0f}",
                f"{result.latency_mean * 1e3:.1f}",
                f"{result.throughput:.0f}",
            ))
    print(render_table(
        "CT vs SC vs BFT under MD5+RSA-1024 (f = 2, saturating clients)",
        ("protocol", "n", "interval (ms)", "latency (ms)", "throughput (req/s)"),
        rows,
    ))
    by_key = {(r[0], r[2]): float(r[3]) for r in rows}
    print(
        "\nat 250 ms (steady state): "
        f"CT {by_key[('ct', '250')]:.1f} ms  <  "
        f"SC {by_key[('sc', '250')]:.1f} ms  <  "
        f"BFT {by_key[('bft', '250')]:.1f} ms"
    )
    print("the signal-on-fail coordinator buys Byzantine tolerance for "
          "a fraction of BFT's latency premium over CT.")


if __name__ == "__main__":
    main()
