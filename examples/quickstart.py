#!/usr/bin/env python3
"""Quickstart: order requests with the SC protocol and watch replicas agree.

Builds the paper's deployment for f = 2 — five replicas ``p1..p5`` of
which ``p1``/``p2`` are paired with shadows ``p1'``/``p2'`` — drives it
with two clients for two seconds of virtual time, and prints the
latency statistics plus proof that every order process executed the
same sequence.

Run:  python examples/quickstart.py
"""

from repro import ProtocolConfig, build_cluster, OpenLoopWorkload
from repro.harness.metrics import collect_latencies, latency_stats


def main() -> None:
    config = ProtocolConfig(f=2, batching_interval=0.100)
    cluster = build_cluster("sc", config=config, seed=42)
    print(f"deployed {len(cluster.processes)} order processes "
          f"(n = 3f+1 = {config.n}): {', '.join(cluster.process_names)}")

    workload = OpenLoopWorkload(cluster, rate=120, duration=2.0)
    workload.install()
    cluster.start()
    cluster.run(until=3.0)

    samples = collect_latencies(cluster.sim.trace)
    stats = latency_stats(samples, skip_first=3)
    print(f"\nordered {workload.issued} requests in {len(samples)} batches")
    print(f"order latency: mean {stats.mean * 1e3:.1f} ms, "
          f"p50 {stats.p50 * 1e3:.1f} ms, p95 {stats.p95 * 1e3:.1f} ms")

    digests = cluster.agreement_digests()
    unique = {d.hex()[:16] for d in digests.values()}
    print(f"\nreplica state digests ({len(unique)} distinct):")
    for name, digest in sorted(digests.items()):
        print(f"  {name:4s} {digest.hex()[:16]}…")
    assert len(unique) == 1, "replicas diverged!"
    print("\nall order processes executed the identical sequence ✓")

    async_msgs = cluster.network.messages_sent - cluster.network.pair_messages_sent
    print(f"messages: {async_msgs} on the shared network, "
          f"{cluster.network.pair_messages_sent} on pair links")


if __name__ == "__main__":
    main()
