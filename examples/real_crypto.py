#!/usr/bin/env python3
"""Run the protocol on *real* from-scratch RSA, and watch forgery fail.

Everything in the performance studies uses the fast simulated signer
(with calibrated timing); this example provisions actual RSA keys from
the from-scratch implementation (reduced to 512 bits so key generation
takes a moment, not minutes), orders requests end to end, and then
demonstrates Assumption 2: a fabricated signature and a tampered
message are both rejected.

Run:  python examples/real_crypto.py
"""

from repro import ProtocolConfig, build_cluster, OpenLoopWorkload
from repro.crypto.signed import SignedMessage, sign_message, verify_signed
from repro.crypto.signing import Signature


def main() -> None:
    config = ProtocolConfig(f=1, batching_interval=0.100)
    print("generating real RSA keys (512-bit, from-scratch implementation)…")
    cluster = build_cluster("sc", config=config, seed=3,
                            crypto_mode="real", key_bits=512)
    workload = OpenLoopWorkload(cluster, rate=80, duration=1.5)
    workload.install()
    cluster.start()
    cluster.run(until=3.0)

    applied = {p.machine.applied_seq for p in cluster.processes.values()}
    digests = set(cluster.agreement_digests().values())
    print(f"ordered {workload.issued} requests under real RSA signatures; "
          f"replicas agree: {len(digests) == 1} (applied {applied.pop()} entries)\n")

    provider = cluster.provider
    body = {"seq": 1, "digest": "d3adb33f"}
    genuine = sign_message(provider, "p1", body)
    print(f"genuine p1 signature verifies: "
          f"{verify_signed(provider, genuine, ('p1',))}")

    # A Byzantine p2 tries to forge p1's signature with garbage bytes.
    forged = SignedMessage(
        body=body,
        signatures=(Signature(signer="p1", scheme=provider.scheme.name,
                              value=b"\x42" * len(genuine.signatures[0].value)),),
    )
    print(f"forged 'p1' signature verifies:  "
          f"{verify_signed(provider, forged, ('p1',))}")

    # A Byzantine relay tampers with a signed message in transit.
    tampered = SignedMessage(body={"seq": 2, "digest": "d3adb33f"},
                             signatures=genuine.signatures)
    print(f"tampered message verifies:       "
          f"{verify_signed(provider, tampered, ('p1',))}")
    print("\nunforgeability and tamper-evidence hold (Assumption 2) ✓")


if __name__ == "__main__":
    main()
