#!/usr/bin/env python3
"""Fail-over demo: a Byzantine coordinator is caught by its shadow.

Replica ``p1`` (the coordinator) starts signing order batches whose
request digests are corrupted — a value-domain failure.  Its shadow
``p1'`` detects the mismatch while checking the proposal, emits the
doubly-signed fail-signal, and the install part (BackLog → Start →
support tuples) moves coordination to the pair {p2, p2'}.  The deposed
pair goes *dumb* (Section 4.3) and ordering resumes.

Run:  python examples/failover_demo.py
"""

from repro import ProtocolConfig, build_cluster, OpenLoopWorkload
from repro.failures.faults import WrongDigestFault
from repro.harness.metrics import failover_latency


def main() -> None:
    config = ProtocolConfig(f=2, batching_interval=0.100)
    cluster = build_cluster("sc", config=config, seed=7)
    workload = OpenLoopWorkload(cluster, rate=120, duration=3.0)
    workload.install()

    cluster.injector.inject(cluster.process("p1"), WrongDigestFault(active_from=1.0))
    print("injected: p1 will sign corrupted digests from t = 1.0 s\n")

    cluster.start()
    cluster.run(until=5.0)

    trace = cluster.sim.trace
    for record in trace:
        if record.kind == "value_domain_failure":
            print(f"t={record.time:.3f}s  {record.fields['actor']} detected: "
                  f"{record.fields['reason']}")
        elif record.kind == "fail_signal_emitted":
            print(f"t={record.time:.3f}s  {record.fields['actor']} emitted the "
                  f"doubly-signed fail-signal ({record.fields['domain']} domain)")
        elif record.kind == "start_computed":
            print(f"t={record.time:.3f}s  {record.fields['actor']} computed Start "
                  f"(start_seq {record.fields['start_seq']})")
        elif record.kind == "failover_complete":
            print(f"t={record.time:.3f}s  {record.fields['actor']} issued Start with "
                  f"f+1 signatures — new coordinator installed")
        elif record.kind == "went_dumb":
            print(f"t={record.time:.3f}s  {record.fields['actor']} went dumb")

    print(f"\nfail-over latency: {failover_latency(trace) * 1e3:.1f} ms "
          f"(fail-signal → Start with f+1 signatures)")

    ranks = {}
    for record in trace.of_kind("order_committed"):
        if record.fields["actor"] != "p3":  # count each batch once
            continue
        ranks.setdefault(record.fields["rank"], 0)
        ranks[record.fields["rank"]] += record.fields["n_requests"]
    for rank, count in sorted(ranks.items()):
        who = "pair {p1, p1'}" if rank == 1 else "pair {p2, p2'}"
        print(f"requests committed under coordinator {rank} ({who}): {count}")

    digests = set(cluster.agreement_digests().values())
    assert len(digests) == 1, "replicas diverged!"
    print("\nsafety held across the fail-over: all replicas agree ✓")


if __name__ == "__main__":
    main()
