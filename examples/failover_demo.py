#!/usr/bin/env python3
"""Fail-over demo: a Byzantine coordinator is caught by its shadow.

The whole experiment is one declarative :class:`repro.ScenarioSpec`:
the coordinator replica (``target="coordinator"`` — resolved through
the protocol plugin, here ``p1``) starts signing order batches whose
request digests are corrupted — a value-domain failure.  Its shadow
``p1'`` detects the mismatch while checking the proposal, emits the
doubly-signed fail-signal, and the install part (BackLog → Start →
support tuples) moves coordination to the pair {p2, p2'}.  The deposed
pair goes *dumb* (Section 4.3) and ordering resumes.

``build_scenario`` materialises the spec but leaves the simulation in
our hands, so the demo can walk the trace; ``run_scenario(spec)``
would instead return the aggregate :class:`ScenarioResult` directly.

Run:  python examples/failover_demo.py
"""

from repro import ScenarioSpec
from repro.harness.metrics import failover_latency
from repro.harness.scenario import FaultSpec, WorkloadSpec, build_scenario


def main() -> None:
    spec = ScenarioSpec(
        name="failover-demo",
        protocol="sc",
        f=2,
        batching_interval=0.100,
        duration=3.0,
        drain=2.0,
        seed=7,
        workload=WorkloadSpec(rate=120.0),
        faults=(FaultSpec(kind="wrong_digest", target="coordinator", at=1.0),),
        description="shadow catches a value-domain fault at the coordinator",
    )
    cluster, _ = build_scenario(spec)
    print(f"injected: {cluster.coordinator_name} will sign corrupted digests "
          f"from t = 1.0 s\n")

    cluster.start()
    cluster.run(until=spec.duration + spec.drain)

    trace = cluster.sim.trace
    for record in trace:
        if record.kind == "value_domain_failure":
            print(f"t={record.time:.3f}s  {record.fields['actor']} detected: "
                  f"{record.fields['reason']}")
        elif record.kind == "fail_signal_emitted":
            print(f"t={record.time:.3f}s  {record.fields['actor']} emitted the "
                  f"doubly-signed fail-signal ({record.fields['domain']} domain)")
        elif record.kind == "failover_complete":
            print(f"t={record.time:.3f}s  {record.fields['actor']} issued Start with "
                  f"f+1 signatures — new coordinator installed")
        elif record.kind == "went_dumb":
            print(f"t={record.time:.3f}s  {record.fields['actor']} went dumb")

    print(f"\nfail-over latency: {failover_latency(trace) * 1e3:.1f} ms "
          f"(fail-signal → Start with f+1 signatures)")

    ranks = {}
    for record in trace.of_kind("order_committed"):
        if record.fields["actor"] != "p3":  # count each batch once
            continue
        ranks.setdefault(record.fields["rank"], 0)
        ranks[record.fields["rank"]] += record.fields["n_requests"]
    for rank, count in sorted(ranks.items()):
        who = "pair {p1, p1'}" if rank == 1 else "pair {p2, p2'}"
        print(f"requests committed under coordinator {rank} ({who}): {count}")

    digests = set(cluster.agreement_digests().values())
    assert len(digests) == 1, "replicas diverged!"
    print("\nsafety held across the fail-over: all replicas agree ✓")


if __name__ == "__main__":
    main()
