"""Crypto substrate microbenchmarks.

Times the from-scratch implementations (real big-int RSA/DSA and the
pure-Python MD5/SHA-1) and sanity-checks the *calibrated cost model*
against the paper's qualitative claims: RSA and DSA signing cost about
the same, RSA verification is much cheaper than DSA verification, and
larger RSA keys cost more.  (The model encodes the 2006 testbed, so
absolute times are asserted only on the model, not on this machine.)
"""

import random

import pytest

from repro.crypto import dsa, rsa
from repro.crypto.costs import CryptoCostModel
from repro.crypto.digests import digest
from repro.crypto.md5 import md5
from repro.crypto.sha1 import sha1
from repro.crypto.signing import SimulatedSignatureProvider, default_dsa_parameters
from repro.crypto.schemes import MD5_RSA_1024

RSA_KEY = rsa.generate_keypair(1024, random.Random(1))
DSA_KEY = dsa.generate_keypair(default_dsa_parameters(1024), random.Random(2))
MESSAGE = b"order<c, o, D(m)>" * 8


def test_rsa1024_sign(benchmark):
    signature = benchmark(lambda: rsa.sign(RSA_KEY, MESSAGE, "md5"))
    assert rsa.verify(RSA_KEY.public, MESSAGE, signature, "md5")


def test_rsa1024_verify(benchmark):
    signature = rsa.sign(RSA_KEY, MESSAGE, "md5")
    ok = benchmark(lambda: rsa.verify(RSA_KEY.public, MESSAGE, signature, "md5"))
    assert ok


def test_dsa1024_sign(benchmark):
    signature = benchmark(lambda: dsa.sign(DSA_KEY, MESSAGE, "sha1"))
    assert dsa.verify(DSA_KEY.public, MESSAGE, signature, "sha1")


def test_dsa1024_verify(benchmark):
    signature = dsa.sign(DSA_KEY, MESSAGE, "sha1")
    ok = benchmark(lambda: dsa.verify(DSA_KEY.public, MESSAGE, signature, "sha1"))
    assert ok


def test_md5_1kb(benchmark):
    data = bytes(range(256)) * 4
    out = benchmark(lambda: md5(data))
    assert len(out) == 16


def test_sha1_1kb(benchmark):
    data = bytes(range(256)) * 4
    out = benchmark(lambda: sha1(data))
    assert len(out) == 20


def test_simulated_token_sign(benchmark):
    provider = SimulatedSignatureProvider(MD5_RSA_1024, ["p1"])
    sig = benchmark(lambda: provider.sign("p1", MESSAGE))
    assert provider.verify(sig, MESSAGE, "p1")


def test_real_rsa_verify_faster_than_sign(benchmark):
    """The structural asymmetry (e = 65537 vs a full-width private
    exponent) that the paper's cost argument rests on holds in the
    from-scratch implementation too."""
    import time

    def measure(fn, n=5):
        t0 = time.perf_counter()
        for _ in range(n):
            fn()
        return (time.perf_counter() - t0) / n

    signature = rsa.sign(RSA_KEY, MESSAGE, "md5")
    sign_time = measure(lambda: rsa.sign(RSA_KEY, MESSAGE, "md5"))
    verify_time = measure(
        lambda: rsa.verify(RSA_KEY.public, MESSAGE, signature, "md5")
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert verify_time < sign_time / 3


def test_cost_model_matches_paper_claims(benchmark):
    model = benchmark(CryptoCostModel.p4_2006)
    rsa1024 = model.costs("md5-rsa1024")
    rsa1536 = model.costs("md5-rsa1536")
    dsa1024 = model.costs("sha1-dsa1024")
    # "In both the schemes the time taken to sign a given message is
    # similar" (RSA-1024 vs DSA-1024).
    assert 0.5 < rsa1024.sign / dsa1024.sign < 2.0
    # "signature verification is much faster in the RSA scheme".
    assert dsa1024.verify / rsa1024.verify > 3
    # Larger keys cost more.
    assert rsa1536.sign > rsa1024.sign
    assert rsa1536.verify > rsa1024.verify
