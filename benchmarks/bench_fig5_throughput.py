"""Figure 5: throughput vs batching interval (f = 2).

Regenerates one panel per crypto scheme for CT, SC and BFT and asserts
the paper's observations:

* throughput is low at large batching intervals (a 1 KB batch per
  interval bounds the commit rate) and increases as the interval
  shrinks;
* SC and BFT hit a saturation point after which throughput *drops*;
  BFT peaks lower / drops earlier than SC;
* no drop is observed for CT in the swept range.

The sweep runs as a task grid over :mod:`repro.harness.runner`, the
same machinery ``python -m repro suite`` uses (the suite's quick/full
grids use different point counts — compare like with like).
"""

import pytest

from repro.harness.runner import execute, order_grid, order_series
from repro.harness.sweeps import (
    BENCH_INTERVALS,
    ORDER_PROTOCOLS,
    run_once,
    series_table,
)

INTERVALS = BENCH_INTERVALS
N_BATCHES = 35


def _sweep(scheme: str):
    tasks = order_grid(
        ORDER_PROTOCOLS, (scheme,), INTERVALS,
        n_batches=N_BATCHES, warmup_batches=8,
    )
    return order_series(execute(tasks), value="throughput")[scheme]


def _check_panel(scheme: str, series) -> None:
    thr = {p: dict(pts) for p, pts in series.items()}
    # Low throughput at large intervals, rising as the interval shrinks.
    for protocol in ("ct", "sc", "bft"):
        assert thr[protocol][0.500] < thr[protocol][0.100], (
            f"{protocol}: throughput should rise as the interval shrinks"
        )
    # CT keeps rising to the smallest interval — no drop in range.
    ct = [thr["ct"][iv] for iv in INTERVALS]
    assert ct == sorted(ct, reverse=True) or ct[0] >= max(ct[1:]), (
        "CT should show no throughput drop in the swept range"
    )
    # SC and BFT peak inside the range and drop at the tightest interval.
    for protocol in ("sc", "bft"):
        values = [thr[protocol][iv] for iv in INTERVALS]
        peak = max(values)
        assert values[0] < peak, (
            f"{protocol}: throughput should drop past the saturation point"
        )
    # BFT's post-saturation throughput falls below SC's.
    assert thr["bft"][0.040] < thr["sc"][0.040], (
        "BFT should saturate harder than SC"
    )


@pytest.mark.parametrize(
    "scheme", ["md5-rsa1024", "md5-rsa1536", "sha1-dsa1024"]
)
def test_fig5_panel(benchmark, scheme):
    series = run_once(benchmark, lambda: _sweep(scheme))
    print()
    print(series_table(
        f"Figure 5 — throughput (req/s/process) vs batching interval [{scheme}]",
        series, "interval (s)", "req/s",
    ))
    _check_panel(scheme, series)
