"""Hot-path microbenchmarks: the per-message constant factors.

A cProfile of a representative sweep point showed ~35% of harness wall
time inside canonical encoding and ~16% inside the from-scratch MD5 —
none of it affecting any simulated metric.  These benchmarks pin the
optimised ingredients (the single-pass memoising encoder of
:mod:`repro.crypto.canon`, the cached ``signing_bytes``, the hashlib
digest backend, the tuple-keyed event heap) and assert the properties
the optimisation relies on: byte-identical output and cache hits that
actually hit.  Absolute wall-time claims live in ``python -m repro
perf`` output, not in asserts — this machine is not CI's machine.
"""

import copy

from repro.core.messages import Ack
from repro.crypto.canon import encode_canonical, strip_memo
from repro.crypto.digests import digest
from repro.crypto.encoding import canonical_bytes, reference_canonical_bytes
from repro.crypto.schemes import MD5_RSA_1024
from repro.crypto.signed import sign_message, signing_bytes
from repro.crypto.signing import SimulatedSignatureProvider
from repro.harness.perf import (
    REFERENCE_TASK,
    run_reference_point,
    sample_hotpath_message,
)
from repro.harness.runner import run_task

PROVIDER = SimulatedSignatureProvider(MD5_RSA_1024, ["p1", "p1'", "p2"])

#: Shared with ``repro.harness.perf.microbench`` so the pytest-benchmark
#: numbers and the ``repro perf`` report measure the same object shape.
MESSAGE = sample_hotpath_message()


def test_fast_encode_warm(benchmark):
    """The memo-warm path: what sign→countersign→verify actually pays."""
    out = benchmark(lambda: encode_canonical(MESSAGE))
    assert out == reference_canonical_bytes(MESSAGE)


def test_fast_encode_cold(benchmark):
    """The no-memo path: every cached fragment is stripped from the
    graph before each encode (deepcopy alone would *copy* the memos)."""
    cold = copy.deepcopy(MESSAGE)

    def encode_cold():
        strip_memo(cold)
        return encode_canonical(cold)

    out = benchmark(encode_cold)
    assert out == reference_canonical_bytes(MESSAGE)


def test_reference_encode(benchmark):
    """The oracle's rate, for the before/after ratio in reports."""
    out = benchmark(lambda: reference_canonical_bytes(MESSAGE))
    assert out == canonical_bytes(MESSAGE)


def test_signing_bytes_cached(benchmark):
    """Verify-after-countersign re-requests the same prefix bytes."""
    expected = signing_bytes(MESSAGE.body, MESSAGE.signatures)
    out = benchmark(lambda: signing_bytes(MESSAGE.body, MESSAGE.signatures))
    assert out == expected


def test_md5_backend_equivalence_1kb(benchmark):
    """hashlib (the default) and the from-scratch MD5 are bit-identical."""
    data = bytes(range(256)) * 4
    out = benchmark(lambda: digest("md5", data))
    assert out == digest("md5", data, use_stdlib=False)


def test_ack_payload_encoding(benchmark):
    """A signed ack embedding a signed order: the deepest hot message."""
    ack = sign_message(PROVIDER, "p2", Ack(acker="p2", order=MESSAGE))
    out = benchmark(lambda: encode_canonical(ack))
    assert out == reference_canonical_bytes(ack)


def test_reference_point_deterministic(benchmark):
    """The ``repro perf`` reference point: warm caches change wall time
    only — a second in-process run reproduces every simulated metric."""
    first = run_task(REFERENCE_TASK)
    second = benchmark.pedantic(
        lambda: run_task(REFERENCE_TASK), rounds=1, iterations=1
    )
    assert second.result == first.result
    assert second.metrics() == first.metrics()
    perf = run_reference_point()
    assert perf.events == first.events_processed > 0
    assert perf.events_per_second > 0


def test_slot_batch_pop(benchmark):
    """The batched drain: one ``pop_due_batch`` per slot vs a heap of
    mixed-time events; output order must match the one-event oracle."""
    from repro.sim.events import EventQueue

    def build():
        q = EventQueue()
        for i in range(2_000):
            q.push(float(i % 50), (lambda: None), ())
        return q

    def drain():
        q = build()
        out = []
        order = []
        while q.pop_due_batch(None, out) is not None:
            order.extend(e.seq for e in out)
            out.clear()
        return order

    order = benchmark(drain)
    oracle = build()
    expected = []
    while (event := oracle.pop_due(None)) is not None:
        expected.append(event.seq)
    assert order == expected


def test_link_delay_stream(benchmark):
    """The chunk-prefetched per-link stream vs per-send model.sample:
    bit-identical delays at a fraction of the call overhead."""
    import random

    from repro.net.delay import LanDelay, LinkDelayStream

    model = LanDelay()

    def streamed():
        stream = LinkDelayStream(model, random.Random(3))
        return [stream.sample(1024, i * 1e-3) for i in range(1_000)]

    got = benchmark(streamed)
    rng = random.Random(3)
    assert got == [model.sample(1024, rng, i * 1e-3) for i in range(1_000)]


def test_fast_crypto_signing_bytes(benchmark):
    """Identity-token signing bytes: sign/verify agree on the token
    stream, and forged bodies still mismatch, without byte encoding."""
    from repro.crypto.costs import fast_crypto

    forged = sample_hotpath_message()
    with fast_crypto():
        out = benchmark(lambda: signing_bytes(MESSAGE.body, MESSAGE.signatures))
        assert out == signing_bytes(MESSAGE.body, MESSAGE.signatures)
        assert out != signing_bytes(forged.body, forged.signatures)
