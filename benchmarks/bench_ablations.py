"""Ablations of the design choices DESIGN.md calls out.

Not in the paper, but each isolates one design decision:

* **dumb-process optimisation** (Section 4.3): after a fail-over, does
  shrinking n and f (and therefore the quorum) pay?
* **batching** (Section 4.3): batch-size sensitivity at a fixed
  interval;
* **pair-link speed**: how much of SC's latency is the 1→1 endorsement
  round trip;
* **pair forwarding** (Section 3.1 literal copying): the cost of
  forwarding every received message to the counterpart, which direct
  reception makes redundant.
"""

import pytest

from benchmarks.conftest import run_once, series_table
from repro import ProtocolConfig, build_cluster, OpenLoopWorkload
from repro.calibration import CalibrationProfile
from repro.failures.faults import WrongDigestFault
from repro.harness.experiments import run_order_experiment
from repro.harness.metrics import collect_latencies, latency_stats


def _post_failover_latency(dumb: bool) -> float:
    """Mean order latency under the *new* coordinator after fail-over."""
    config = ProtocolConfig(f=2, batching_interval=0.100, dumb_optimization=dumb)
    cluster = build_cluster("sc", config=config, seed=9)
    workload = OpenLoopWorkload(cluster, rate=150, duration=4.0)
    workload.install()
    cluster.injector.inject(cluster.process("p1"), WrongDigestFault(active_from=1.0))
    cluster.start()
    cluster.run(until=7.0)
    samples = [
        s for s in collect_latencies(cluster.sim.trace) if s.rank == 2
    ]
    assert samples, "fail-over did not complete"
    return latency_stats(samples, skip_first=3).mean


def test_ablation_dumb_processes(benchmark):
    results = run_once(
        benchmark,
        lambda: {dumb: _post_failover_latency(dumb) for dumb in (True, False)},
    )
    print(f"\npost-failover latency: dumb-opt on {results[True]*1e3:.1f} ms, "
          f"off {results[False]*1e3:.1f} ms")
    # With the optimisation the quorum shrinks by one, so commits wait
    # for one fewer ack: latency must not get worse.
    assert results[True] <= results[False] * 1.05


def test_ablation_batch_size(benchmark):
    def sweep():
        out = []
        for batch_bytes in (256, 1024, 4096):
            config = ProtocolConfig(
                f=2, batching_interval=0.100, batch_size_bytes=batch_bytes
            )
            cluster = build_cluster("sc", config=config, seed=3)
            workload = OpenLoopWorkload(cluster, rate=150, duration=3.0)
            workload.install()
            cluster.start()
            cluster.run(until=6.0)
            samples = collect_latencies(cluster.sim.trace)
            committed = sum(
                r.fields["n_requests"]
                for r in cluster.sim.trace.of_kind("order_committed")
                if r.fields["actor"] == "p3"
            )
            out.append((batch_bytes, latency_stats(samples, skip_first=3).mean,
                        committed / 3.0))
        return out

    results = run_once(benchmark, sweep)
    print()
    for batch_bytes, latency, throughput in results:
        print(f"  batch {batch_bytes:5d} B: latency {latency*1e3:6.1f} ms, "
              f"throughput {throughput:6.1f} req/s")
    by_size = {b: (lat, thr) for b, lat, thr in results}
    # Small batches cannot keep up with a 150 req/s offered load (only
    # 4 requests fit per batch): committed throughput collapses.
    assert by_size[256][1] < 0.7 * by_size[1024][1]
    # Per-batch latency stays in the same band — the paper's latency
    # metric starts at batch formation, so the growing to-be-batched
    # queue is invisible to it (Section 5's definition).
    assert 0.8 * by_size[1024][0] < by_size[256][0] < 1.2 * by_size[1024][0]
    # Oversized batches change little once the offered load fits.
    assert by_size[4096][0] <= by_size[1024][0] * 1.5


def test_ablation_pair_link_speed(benchmark):
    def sweep():
        out = []
        for propagation in (50e-6, 1e-3, 5e-3):
            calibration = CalibrationProfile(pair_propagation=propagation)
            result_cluster = build_cluster(
                "sc",
                ProtocolConfig(f=2, batching_interval=0.100),
                calibration=calibration,
                seed=3,
            )
            workload = OpenLoopWorkload(result_cluster, rate=150, duration=2.5)
            workload.install()
            result_cluster.start()
            result_cluster.run(until=5.0)
            samples = collect_latencies(result_cluster.sim.trace)
            out.append((propagation, latency_stats(samples, skip_first=3).mean))
        return out

    results = run_once(benchmark, sweep)
    print()
    for propagation, latency in results:
        print(f"  pair link {propagation*1e6:7.0f} µs: latency {latency*1e3:6.1f} ms")
    latencies = [lat for _, lat in results]
    # The commit critical path crosses the pair link once (pc's 1->1
    # proposal; the shadow's endorsed order travels the shared LAN), so
    # latency grows by roughly the added one-way delay — confirming
    # Figure 3(a)'s phase structure.
    assert latencies[0] < latencies[1] < latencies[2]
    added = latencies[2] - latencies[0]
    assert 0.6 * (5e-3 - 50e-6) < added < 2.0 * (5e-3 - 50e-6)


def test_ablation_pair_forwarding(benchmark):
    def sweep():
        out = {}
        for forwarding in (False, True):
            config = ProtocolConfig(
                f=2, batching_interval=0.100, pair_forwarding=forwarding
            )
            cluster = build_cluster("sc", config=config, seed=3)
            workload = OpenLoopWorkload(cluster, rate=150, duration=2.5)
            workload.install()
            cluster.start()
            cluster.run(until=5.0)
            samples = collect_latencies(cluster.sim.trace)
            out[forwarding] = (
                latency_stats(samples, skip_first=3).mean,
                cluster.network.pair_messages_sent,
            )
        return out

    results = run_once(benchmark, sweep)
    print(f"\nforwarding off: {results[False][0]*1e3:.1f} ms, "
          f"{results[False][1]} pair-link msgs; "
          f"on: {results[True][0]*1e3:.1f} ms, {results[True][1]} pair-link msgs")
    # Literal Section 3.1 copying multiplies pair-link traffic...
    assert results[True][1] > 3 * results[False][1]
    # ...and costs latency (extra CPU work on the coordinator pair).
    assert results[True][0] > results[False][0]
