"""Figure 6: fail-over latency vs BackLog size (f = 2).

Regenerates the SC and SCR fail-over curves for each crypto scheme.
A value-domain fault is injected at the coordinator replica while a
controlled number of ~1 KB order batches sit acked-but-uncommitted, so
BackLogs (SC) / ViewChanges (SCR) carry 1..5 KB of recovery payload.

Asserted paper claims:

* fail-over latency increases linearly with BackLog size (checked with
  a least-squares fit, r² >= 0.9);
* more expensive cryptography raises the whole curve (the install path
  re-verifies every signature the backlogs carry).

The sweep runs as a task grid over :mod:`repro.harness.runner`, the
same machinery ``python -m repro suite`` uses.
"""

import pytest

from repro.harness.metrics import linear_fit
from repro.harness.runner import execute, failover_grid, failover_series
from repro.harness.sweeps import BACKLOG_BATCHES, run_once, series_table

_steady_by_scheme: dict[tuple[str, str], float] = {}


def _sweep(protocol: str, scheme: str):
    tasks = failover_grid((protocol,), (scheme,), BACKLOG_BATCHES)
    return failover_series(execute(tasks))[scheme][protocol]


@pytest.mark.parametrize("scheme", ["md5-rsa1024", "md5-rsa1536", "sha1-dsa1024"])
@pytest.mark.parametrize("protocol", ["sc", "scr"])
def test_fig6_curve(benchmark, protocol, scheme):
    pts = run_once(benchmark, lambda: _sweep(protocol, scheme))
    print()
    print(series_table(
        f"Figure 6 — fail-over latency (s) vs BackLog size [{protocol}, {scheme}]",
        {protocol: pts}, "backlog (KB)", "latency (s)",
    ))
    xs = [x for x, _ in pts]
    ys = [y for _, y in pts]
    assert xs == sorted(xs) and xs[0] < xs[-1], "backlog sizes should grow"
    slope, intercept, r2 = linear_fit(xs, ys)
    print(f"  fit: {slope*1e3:.1f} ms/KB + {intercept*1e3:.1f} ms (r² = {r2:.3f})")
    assert slope > 0, "latency should grow with backlog size"
    assert r2 >= 0.90, "growth should be close to linear (paper: linear)"
    _steady_by_scheme[(protocol, scheme)] = ys[0]
    cheap = _steady_by_scheme.get((protocol, "md5-rsa1024"))
    dear = _steady_by_scheme.get((protocol, "sha1-dsa1024"))
    if cheap is not None and dear is not None:
        assert dear > cheap, (
            "more expensive crypto should raise the fail-over curve"
        )
