"""Section 5's f = 3 observation (reported in text, not plotted).

"As we increase f to 3, we observe similar trends, except that the
saturation thresholds are encountered at larger batching intervals,
and the order latencies in the steady state increase.  These
observations can be attributed to the fact that as n increases, each
individual process receives more messages which need to be
authenticated and processed."

The sweep runs as a task grid over :mod:`repro.harness.runner`, the
same machinery ``python -m repro suite`` uses (the suite's quick/full
grids use different batch counts — compare like with like).
"""

from repro.harness.runner import execute, f3_grid, group_series
from repro.harness.sweeps import (
    F3_INTERVALS,
    F3_PROTOCOLS,
    STEADY_INTERVAL,
    run_once,
    series_table,
)

INTERVALS = F3_INTERVALS
STEADY = STEADY_INTERVAL
TIGHT = 0.060


def _sweep():
    tasks = f3_grid(
        F3_PROTOCOLS, ("md5-rsa1024",), INTERVALS,
        n_batches=30, warmup_batches=6,
    )
    return group_series(
        execute(tasks),
        key=lambda p: f"{p.task.protocol} f={p.task.f}",
        point=lambda p: (p.task.batching_interval, p.result.latency_mean),
    )


def test_f3_scaling(benchmark):
    series = run_once(benchmark, _sweep)
    print()
    print(series_table(
        "f = 2 vs f = 3 — order latency (s), MD5+RSA-1024",
        series, "interval (s)", "latency (s)",
    ))
    data = {k: dict(v) for k, v in series.items()}
    for protocol in ("sc", "bft"):
        # Steady-state latency increases with f (more processes, more
        # messages to authenticate per commit).
        assert data[f"{protocol} f=3"][STEADY] > data[f"{protocol} f=2"][STEADY]
        # Saturation arrives at larger intervals for f = 3: the blow-up
        # factor at the tight interval is at least as large.
        blow_2 = data[f"{protocol} f=2"][TIGHT] / data[f"{protocol} f=2"][STEADY]
        blow_3 = data[f"{protocol} f=3"][TIGHT] / data[f"{protocol} f=3"][STEADY]
        assert blow_3 > blow_2 * 0.9, (
            f"{protocol}: f=3 should saturate at least as early as f=2"
        )
    # SC keeps beating BFT at f = 3.
    for interval in INTERVALS:
        assert data["sc f=3"][interval] < data["bft f=3"][interval]
