"""Figure 4: order latency vs batching interval (f = 2).

Regenerates one panel per crypto scheme — (a) MD5+RSA-1024,
(b) MD5+RSA-1536, (c) SHA1+DSA-1024 — for CT, SC and BFT, and asserts
the paper's findings:

* CT's latency stays flat and low across the sweep;
* SC's steady-state latency is below BFT's for every scheme;
* both SC and BFT blow up below a saturation threshold, and BFT's
  threshold is *larger* (it saturates at larger batching intervals);
* the SC/BFT steady-state gap widens when RSA is replaced by DSA
  (verification cost hits BFT's n-to-n phases hardest).

The sweep runs as a task grid over :mod:`repro.harness.runner`, the
same machinery ``python -m repro suite`` uses (the suite's quick/full
grids use different point counts — compare like with like).
"""

import pytest

from repro.harness.runner import execute, order_grid, order_series
from repro.harness.sweeps import (
    BENCH_INTERVALS,
    ORDER_PROTOCOLS,
    STEADY_INTERVAL,
    run_once,
    series_table,
)

INTERVALS = BENCH_INTERVALS
STEADY = STEADY_INTERVAL
N_BATCHES = 40

_gap_by_scheme: dict[str, float] = {}


def _sweep(scheme: str):
    tasks = order_grid(
        ORDER_PROTOCOLS, (scheme,), INTERVALS,
        n_batches=N_BATCHES, warmup_batches=8,
    )
    return order_series(execute(tasks), value="latency_mean")[scheme]


def _check_panel(scheme: str, series) -> None:
    latency = {p: dict(pts) for p, pts in series.items()}
    # CT flat and low.
    ct_values = [latency["ct"][iv] for iv in INTERVALS]
    assert max(ct_values) < 0.015, "CT should stay around 10 ms"
    assert max(ct_values) / min(ct_values) < 2.5, "CT should stay flat"
    # SC below BFT at every interval.
    for iv in INTERVALS:
        assert latency["sc"][iv] < latency["bft"][iv], (
            f"SC should beat BFT at {iv*1e3:.0f} ms under {scheme}"
        )
    # Saturation: BFT inflates more at the tightest interval.
    sc_blow = latency["sc"][INTERVALS[0]] / latency["sc"][STEADY]
    bft_blow = latency["bft"][INTERVALS[0]] / latency["bft"][STEADY]
    assert bft_blow > sc_blow, "BFT should saturate earlier/harder than SC"
    _gap_by_scheme[scheme] = latency["bft"][STEADY] - latency["sc"][STEADY]


@pytest.mark.parametrize(
    "scheme", ["md5-rsa1024", "md5-rsa1536", "sha1-dsa1024"]
)
def test_fig4_panel(benchmark, scheme):
    series = run_once(benchmark, lambda: _sweep(scheme))
    print()
    print(series_table(
        f"Figure 4 — order latency (s) vs batching interval [{scheme}]",
        series, "interval (s)", "latency (s)",
    ))
    _check_panel(scheme, series)
    if "md5-rsa1024" in _gap_by_scheme and "sha1-dsa1024" in _gap_by_scheme:
        assert (
            _gap_by_scheme["sha1-dsa1024"] > _gap_by_scheme["md5-rsa1024"]
        ), "DSA should widen the SC/BFT steady-state gap (paper: 21 -> 37 ms)"
