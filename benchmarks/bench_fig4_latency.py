"""Figure 4: order latency vs batching interval (f = 2).

Regenerates one panel per crypto scheme — (a) MD5+RSA-1024,
(b) MD5+RSA-1536, (c) SHA1+DSA-1024 — for CT, SC and BFT, and asserts
the paper's findings:

* CT's latency stays flat and low across the sweep;
* SC's steady-state latency is below BFT's for every scheme;
* both SC and BFT blow up below a saturation threshold, and BFT's
  threshold is *larger* (it saturates at larger batching intervals);
* the SC/BFT steady-state gap widens when RSA is replaced by DSA
  (verification cost hits BFT's n-to-n phases hardest).
"""

import pytest

from benchmarks.conftest import run_once, series_table
from repro.harness.experiments import run_order_experiment

INTERVALS = (0.040, 0.060, 0.100, 0.250, 0.500)
STEADY = 0.500
N_BATCHES = 40

_gap_by_scheme: dict[str, float] = {}


def _sweep(scheme: str):
    series: dict[str, list[tuple[float, float]]] = {}
    for protocol in ("ct", "sc", "bft"):
        pts = []
        for interval in INTERVALS:
            result = run_order_experiment(
                protocol, scheme, interval, n_batches=N_BATCHES, warmup_batches=8
            )
            pts.append((interval, result.latency_mean))
        series[protocol] = pts
    return series


def _check_panel(scheme: str, series) -> None:
    latency = {p: dict(pts) for p, pts in series.items()}
    # CT flat and low.
    ct_values = [latency["ct"][iv] for iv in INTERVALS]
    assert max(ct_values) < 0.015, "CT should stay around 10 ms"
    assert max(ct_values) / min(ct_values) < 2.5, "CT should stay flat"
    # SC below BFT at every interval.
    for iv in INTERVALS:
        assert latency["sc"][iv] < latency["bft"][iv], (
            f"SC should beat BFT at {iv*1e3:.0f} ms under {scheme}"
        )
    # Saturation: BFT inflates more at the tightest interval.
    sc_blow = latency["sc"][INTERVALS[0]] / latency["sc"][STEADY]
    bft_blow = latency["bft"][INTERVALS[0]] / latency["bft"][STEADY]
    assert bft_blow > sc_blow, "BFT should saturate earlier/harder than SC"
    _gap_by_scheme[scheme] = latency["bft"][STEADY] - latency["sc"][STEADY]


@pytest.mark.parametrize(
    "scheme", ["md5-rsa1024", "md5-rsa1536", "sha1-dsa1024"]
)
def test_fig4_panel(benchmark, scheme):
    series = run_once(benchmark, lambda: _sweep(scheme))
    print()
    print(series_table(
        f"Figure 4 — order latency (s) vs batching interval [{scheme}]",
        series, "interval (s)", "latency (s)",
    ))
    _check_panel(scheme, series)
    if "md5-rsa1024" in _gap_by_scheme and "sha1-dsa1024" in _gap_by_scheme:
        assert (
            _gap_by_scheme["sha1-dsa1024"] > _gap_by_scheme["md5-rsa1024"]
        ), "DSA should widen the SC/BFT steady-state gap (paper: 21 -> 37 ms)"
