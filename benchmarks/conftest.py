"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's artefacts (a figure
panel, a table, or an ablation of a design choice) and *asserts the
paper's qualitative claims* about it, so the suite doubles as a
regression harness for the reproduction.  Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to see the regenerated series printed as tables.
"""

from __future__ import annotations


def series_table(title: str, series: dict[str, list[tuple[float, float]]],
                 xlabel: str, ylabel: str) -> str:
    from repro.harness.report import render_series

    return render_series(title, xlabel, ylabel, series)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
