"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's artefacts (a figure
panel, a table, or an ablation of a design choice) and *asserts the
paper's qualitative claims* about it, so the suite doubles as a
regression harness for the reproduction.  Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to see the regenerated series printed as tables.

The sweep vocabulary (interval grids, table rendering, the one-shot
benchmark wrapper) lives in :mod:`repro.harness.sweeps`, shared with
the parallel runner and the ``python -m repro suite`` CLI; the names
below are re-exported for convenience.
"""

from __future__ import annotations

from repro.harness.sweeps import run_once, series_table

__all__ = ["run_once", "series_table"]
