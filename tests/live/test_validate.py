"""`repro compare --live`: artifact plumbing and point matching."""

from __future__ import annotations

import io
import json

import pytest

from repro.errors import ConfigError
from repro.harness import artifact as artifact_mod
from repro.live.validate import (
    build_live_point,
    compare_live,
    live_point_id,
    write_live_artifact,
)


def _fake_reports() -> dict[str, dict]:
    """Minimal node reports: two replicas tracing one ordered batch."""
    records = [
        (0.60, "batch_formed", {"actor": "p1", "batch_id": 1, "rank": 1,
                                "first_seq": 1, "n_requests": 4}),
        (0.65, "order_committed", {"actor": "p1", "batch_id": 1, "rank": 1,
                                   "first_seq": 1, "n_requests": 4}),
    ]
    return {
        "p1": {"records": records, "history": [(1, "ab")], "crashed": False},
        "p2": {"records": [records[1]], "history": [(1, "ab")], "crashed": False},
    }


def test_write_live_artifact_is_schema_valid(tmp_path):
    path = write_live_artifact(
        reports=_fake_reports(), protocol="sc", scheme="md5-rsa1024",
        f=1, seed=1, batching_interval=0.1, duration=2.0, warmup=0.5,
        json_dir=tmp_path,
    )
    assert path.name == "BENCH_live_sc.json"
    loaded = artifact_mod.load_artifact(path)  # validates the schema
    [point] = loaded.points
    assert point["id"] == live_point_id("sc", "md5-rsa1024", 1, 0.1, 1)
    assert point["kind"] == "live-order"
    assert point["metrics"]["latency_mean"] == pytest.approx(0.05)
    assert loaded.params["runtime"] == "live"


def test_compare_live_matches_baseline_points(tmp_path):
    live_path = write_live_artifact(
        reports=_fake_reports(), protocol="sc", scheme="md5-rsa1024",
        f=1, seed=1, batching_interval=0.1, duration=2.0, warmup=0.5,
        json_dir=tmp_path,
    )
    point = build_live_point(
        _fake_reports(), "sc", "md5-rsa1024", 1, 1, 0.1, 2.0, 0.5
    )
    sim_point = dict(point)
    sim_point["id"] = "order/sc/md5-rsa1024/f1/i0.1/s1"
    sim_point["kind"] = "order"
    sim_point["metrics"] = {"latency_mean": 0.10, "latency_p95": 0.10,
                            "throughput": 10.0}
    baseline = artifact_mod.from_points("fig4", [sim_point])
    baseline_path = artifact_mod.write_artifact(baseline, tmp_path)

    out = io.StringIO()
    code = compare_live(live_path, baseline_path, out=out)
    rendered = out.getvalue()
    assert code == 0
    assert "live/sim" in rendered
    assert "latency_mean" in rendered
    # live 0.05s vs sim 0.10s: the ratio column must say 0.50x.
    assert "0.50x" in rendered


def test_compare_live_flags_missing_counterpart(tmp_path):
    live_path = write_live_artifact(
        reports=_fake_reports(), protocol="sc", scheme="md5-rsa1024",
        f=1, seed=1, batching_interval=0.1, duration=2.0, warmup=0.5,
        json_dir=tmp_path,
    )
    other = build_live_point(
        _fake_reports(), "sc", "md5-rsa1024", 1, 1, 0.1, 2.0, 0.5
    )
    other.update({"id": "order/bft/x", "kind": "order", "protocol": "bft"})
    baseline_path = artifact_mod.write_artifact(
        artifact_mod.from_points("fig4", [other]), tmp_path
    )
    out = io.StringIO()
    assert compare_live(live_path, baseline_path, out=out) == 1
    assert "no simulated counterpart" in out.getvalue()


def test_from_points_rejects_malformed(tmp_path):
    with pytest.raises(ConfigError):
        artifact_mod.from_points("live_sc", [{"id": "x", "metrics": {}}])


def test_cli_exposes_live_flag(tmp_path, capsys):
    from repro.harness.experiments import main as repro_main

    live_path = write_live_artifact(
        reports=_fake_reports(), protocol="sc", scheme="md5-rsa1024",
        f=1, seed=1, batching_interval=0.1, duration=2.0, warmup=0.5,
        json_dir=tmp_path,
    )
    sim_point = build_live_point(
        _fake_reports(), "sc", "md5-rsa1024", 1, 1, 0.1, 2.0, 0.5
    )
    sim_point["id"] = "order/sc"
    sim_point["kind"] = "order"
    baseline_path = artifact_mod.write_artifact(
        artifact_mod.from_points("fig4", [sim_point]), tmp_path
    )
    code = repro_main(["compare", "--live", str(live_path), str(baseline_path)])
    assert code == 0
    assert "live/sim" in capsys.readouterr().out
    # Without --live, a missing baseline is a usage error, not a crash.
    assert repro_main(["compare", str(live_path)]) == 2
