"""Replica restart, rejoin and state transfer.

Three layers:

* unit — ``replay_history`` / ``install_prefix`` (the kernel-free
  replay half) against a directly executed reference machine;
* in-loop — :func:`serve_state_transfer` and :class:`PrefixFetcher`
  talking over a real :class:`LiveTransport` listener in one event
  loop: chunking, resumable idempotence, digest verification and the
  atomic-discard guarantee;
* cluster — real ``repro serve`` subprocesses: kill a replica
  mid-load, restart it, and require the rejoined node's history to
  pass the all-pairs prefix-agreement check; SIGTERM mid-transfer must
  still yield a clean summary with the partial snapshot discarded; an
  injected partition must heal with no divergence.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import signal
import time

import pytest

from repro.core.messages import OrderEntry
from repro.core.service import ReplicatedStateMachine
from repro.errors import ProtocolError
from repro.live import recovery
from repro.live.transport import LiveTransport
from repro.protocols.runtime import (
    StepRuntime,
    install_prefix,
    replay_history,
)

from cluster_utils import finish_serve, run_load, start_serve


def _reference_machine(n: int) -> ReplicatedStateMachine:
    machine = ReplicatedStateMachine("ref")
    for seq in range(1, n + 1):
        machine.apply(OrderEntry(
            seq=seq,
            req_digest=hashlib.sha256(f"req-{seq}".encode()).digest(),
            client="c0",
            req_id=seq,
        ))
    return machine


# ----------------------------------------------------------------------
# replay_history / install_prefix
# ----------------------------------------------------------------------
def test_replay_reproduces_the_digest_chain():
    ref = _reference_machine(25)
    replayed = replay_history("p3", ref.history,
                              expected_digest=ref.state_digest())
    assert replayed.applied_seq == 25
    assert replayed.state_digest() == ref.state_digest()


def test_replay_rejects_gapped_rows():
    ref = _reference_machine(5)
    rows = [ref.history[0], ref.history[2]]  # seq 1 then 3
    with pytest.raises(ProtocolError):
        replay_history("p3", rows)


def test_replay_is_idempotent_for_resent_rows():
    ref = _reference_machine(10)
    base = replay_history("p3", ref.history[:6])
    # A resumed transfer resends overlapping rows; they must be skipped.
    merged = replay_history("p3", ref.history[3:], base=base)
    assert merged is base
    assert merged.state_digest() == ref.state_digest()


def test_replay_rejects_a_forged_final_digest():
    ref = _reference_machine(5)
    with pytest.raises(ProtocolError, match="discarding"):
        replay_history("p3", ref.history, expected_digest=b"\x00" * 32)


def test_install_prefix_fast_forwards_the_execution_cursor():
    class Proc:
        machine = ReplicatedStateMachine("p3")
        _exec_next = 1

    ref = _reference_machine(7)
    proc = Proc()
    assert install_prefix(proc, ref) == 7
    assert proc.machine is ref
    assert proc._exec_next == 8


# ----------------------------------------------------------------------
# The wire protocol, one event loop, real sockets
# ----------------------------------------------------------------------
class _ProviderProcess:
    def __init__(self, machine) -> None:
        self.machine = machine
        self.traced: list[tuple] = []

    def trace(self, kind, **fields) -> None:
        self.traced.append((kind, fields))


def _run_transfer(n_entries, chunk_rows, tamper=False):
    async def scenario():
        ref = _reference_machine(n_entries)
        provider_proc = _ProviderProcess(ref)
        if tamper:
            provider_proc.machine = type(
                "Tampered", (), {
                    "history": ref.history,
                    "applied_seq": ref.applied_seq,
                    "state_digest": lambda self: b"\xff" * 32,
                },
            )()
        provider = LiveTransport("p1")
        host, port = await provider.start_listener("127.0.0.1", 0)
        recovery.serve_state_transfer(provider, provider_proc)

        runtime = StepRuntime()
        fetcher = recovery.PrefixFetcher(
            "p3", ["p1"], {"p1": (host, port)}, None, runtime,
            chunk_rows=chunk_rows,
        )

        class Target:
            machine = ReplicatedStateMachine("p3")
            _exec_next = 1

        target = Target()
        try:
            stats = await fetcher.fetch_and_install(target)
        finally:
            fetcher.close()
            await provider.close()
        return ref, target, stats, provider_proc, runtime

    return asyncio.run(scenario())


def test_state_transfer_round_trip_is_chunked_and_verified():
    ref, target, stats, provider_proc, runtime = _run_transfer(
        n_entries=23, chunk_rows=5
    )
    assert target.machine.applied_seq == 23
    assert target.machine.state_digest() == ref.state_digest()
    assert target._exec_next == 24
    assert stats["snapshot_seq"] == 23
    assert stats["entries"] == 23
    assert stats["chunks"] >= 5  # 23 rows in 5-row chunks
    assert stats["bytes"] > 0
    assert stats["peer"] == "p1"
    # Both halves leave their trail: the provider's serve records and
    # the requester's rejoin_started/rejoin_complete trace.
    assert any(kind == "state_served" for kind, _ in provider_proc.traced)
    kinds = [r.kind for r in runtime.trace.records]
    assert kinds.count("rejoin_started") == 1
    assert kinds.count("rejoin_complete") == 1


def test_state_transfer_discards_on_digest_mismatch():
    with pytest.raises(ProtocolError, match="partial prefix discarded"):
        _run_transfer(n_entries=9, chunk_rows=4, tamper=True)


def test_empty_provider_transfers_an_empty_prefix():
    _ref, target, stats, _proc, _rt = _run_transfer(n_entries=0, chunk_rows=4)
    assert target.machine.applied_seq == 0
    assert stats["snapshot_seq"] == 0


# ----------------------------------------------------------------------
# Full clusters: kill, restart, rejoin
# ----------------------------------------------------------------------
def test_sc_replica_restart_and_rejoin(tmp_path):
    """The tentpole acceptance: a replica killed mid-load restarts,
    completes a snapshot + delta transfer from a live peer, and its
    post-rejoin history passes the all-pairs prefix-agreement check."""
    proc, control = start_serve(
        "--protocol", "sc", "--f", "1", "--duration", "10",
        "--kill-after", "p3:2.5", "--restart-after", "p3:4.5",
        "--json-dir", str(tmp_path),
    )
    try:
        load = run_load(control, rate=40, duration=6)
        summary = finish_serve(proc, timeout=45)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert load["issued"] > 0
    assert load["committed"] >= 0.9 * load["issued"]
    assert summary["killed"] == ["p3"]
    assert summary["restarted"] == ["p3"]
    assert summary["rejoined"] == ["p3"]
    # The rejoined replica is a full voting member of the safety check.
    assert "p3" in summary["survivors"]
    assert summary["histories_agree"] is True
    assert summary["divergence"] is None
    assert summary["committed_prefix"] > 0
    rejoin = summary["recovery"]["p3"]
    assert rejoin["snapshot_seq"] > 0
    assert rejoin["bytes"] > 0
    assert rejoin["duration"] > 0

    artifact = json.loads((tmp_path / "BENCH_live_sc.json").read_text())
    [point] = artifact["points"]
    assert "recovery-timeline" in point["probes"]
    metrics = point["metrics"]
    assert metrics["rejoins"] >= 1
    assert metrics["rejoin_duration_mean"] > 0
    assert metrics["catchup_entries"] > 0
    assert metrics["catchup_bytes"] > 0
    # Peers detected the kill before the restart healed it.
    assert metrics["suspicions"] >= 1
    assert metrics["detection_latency_mean"] > 0


def test_sigterm_mid_state_transfer_still_summarises(monkeypatch):
    """Satellite: a SIGTERM landing while the restarted replica is
    mid state-transfer must still produce a clean controller exit with
    a summary, and the partial snapshot must be discarded (the aborted
    node reports, but never becomes a voting survivor)."""
    # Slow the transfer down so the stop signal reliably lands inside
    # it: 2-row chunks with a 0.4s pause between chunks.
    monkeypatch.setenv("REPRO_ST_CHUNK_ROWS", "2")
    monkeypatch.setenv(recovery.ST_CHUNK_DELAY_ENV, "0.4")
    proc, control = start_serve(
        "--protocol", "sc", "--f", "1", "--duration", "30",
        "--kill-after", "p3:1.5", "--restart-after", "p3:3.5",
    )
    try:
        load = run_load(control, rate=60, duration=2.5)
        # Transfer starts ~1s after the restart; by now it is running
        # (and will run for seconds, thanks to the chunk delay).
        time.sleep(2.5)
        proc.send_signal(signal.SIGTERM)
        summary = finish_serve(proc, timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert load["issued"] > 0
    assert summary["histories_agree"] is True
    assert summary["restarted"] == ["p3"]
    assert summary["rejoined"] == []
    rejoin = summary["recovery"].get("p3")
    assert rejoin is not None and rejoin["aborted"] is True
    assert "p3" not in summary["survivors"]
    # The survivors' committed work is still verified and reported.
    assert summary["committed_prefix"] > 0


def test_partition_heals_without_divergence(tmp_path):
    """Acceptance: an injected partition (one replica isolated for
    1.5s) is detected, parks the minority side, heals, and leaves no
    history divergence."""
    proc, control = start_serve(
        "--protocol", "sc", "--f", "1", "--duration", "7",
        "--partition", "p1,p1',p2|p3:2.0:1.5",
        "--hb-timeout", "0.6",
        "--json-dir", str(tmp_path),
    )
    try:
        load = run_load(control, rate=30, duration=4)
        summary = finish_serve(proc, timeout=40)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert load["issued"] > 0
    assert summary["histories_agree"] is True
    assert summary["divergence"] is None
    assert summary["killed"] == []

    artifact = json.loads((tmp_path / "BENCH_live_sc.json").read_text())
    [point] = artifact["points"]
    metrics = point["metrics"]
    # Both sides of the cut noticed: suspicions raised, then cleared
    # when the window closed; the isolated minority parked on quorum
    # loss and recovered.
    assert metrics["suspicions"] >= 1
    assert metrics["suspicions_cleared"] >= 1
    assert metrics["quorum_losses"] >= 1
    assert metrics["quorum_outage_s"] > 0
