"""End-to-end: ``repro load --population`` against a real loopback
cluster, cross-checked against the simulator's seeded stream.

The acceptance property of the population engine: the live driver and
the simulator construct their arrival streams from the same named RNG
registry, so a shared seed yields **bit-identical** ``(time, class,
client)`` events — proven here by comparing the live run's stream
digest (from a real TCP replay) with a digest computed directly from
:func:`population_stream`, and with a full simulated scenario run.
"""

import json
import subprocess
import sys
from pathlib import Path

from repro.harness.population import (
    PopulationSpec,
    population_stream,
    stream_digest,
)
from repro.harness.scenario import ScenarioSpec, WorkloadSpec, run_scenario
from repro.sim.rng import RngRegistry
from tests.live.cluster_utils import _env, finish_serve, start_serve

RATE = 40.0
DURATION = 3.0
SEED = 7
POPULATION = {"clients": 10_000, "id_distribution": "zipf", "zipf_s": 1.1}


def _run_population_load(control: str, population_file: Path,
                         bench_dir: Path) -> dict:
    out = subprocess.run(
        [sys.executable, "-m", "repro", "load", "--control", control,
         "--rate", str(RATE), "--duration", str(DURATION),
         "--seed", str(SEED), "--client-id", "driver",
         "--population", str(population_file),
         "--bench-dir", str(bench_dir)],
        env=_env(),
        capture_output=True,
        text=True,
        timeout=DURATION + 60,
    )
    assert out.returncode == 0, f"load failed:\n{out.stdout}\n{out.stderr}"
    return json.loads(out.stdout.strip().splitlines()[-1])


def test_population_load_over_loopback_matches_sim_stream(tmp_path):
    population_file = tmp_path / "population.json"
    population_file.write_text(json.dumps(POPULATION))
    bench_dir = tmp_path / "bench"

    proc, control = start_serve(
        "--protocol", "sc", "--f", "1", "--duration", str(DURATION + 5)
    )
    try:
        load = _run_population_load(control, population_file, bench_dir)
    finally:
        summary = finish_serve(proc, timeout=DURATION + 60)

    # The cluster stayed safe and served the virtual population.
    assert summary["histories_agree"] is True
    assert load["issued"] > 0
    assert load["committed"] >= 0.9 * load["issued"]
    assert load["clients"] == POPULATION["clients"]

    # Stream identity #1: the live digest equals one computed straight
    # from the population engine with a fresh registry.
    population = PopulationSpec(
        clients=POPULATION["clients"],
        id_distribution="zipf",
        zipf_s=POPULATION["zipf_s"],
    )
    events = list(
        population_stream(population, RATE, DURATION, RngRegistry(SEED))
    )
    assert load["stream_digest"] == stream_digest(events)
    assert load["issued"] == len(events)

    # Stream identity #2: a full simulated scenario run with the same
    # seed schedules the exact same arrivals.
    sim = run_scenario(
        ScenarioSpec(
            name="live-xcheck",
            protocol="sc",
            f=1,
            duration=DURATION,
            seed=SEED,
            workload=WorkloadSpec(rate=RATE),
            population=population,
        )
    )
    assert sim.stream_digest == load["stream_digest"]
    assert sim.requests_issued == load["issued"]

    # The live BENCH_f3pop.json is a valid schema-v3 artifact carrying
    # the digest for offline comparison.
    artifact = json.loads((bench_dir / "BENCH_f3pop.json").read_text())
    assert artifact["schema_version"] == 3
    assert artifact["params"]["stream_digest"] == load["stream_digest"]
    [point] = artifact["points"]
    assert point["kind"] == "live-population"
    assert point["x"] == float(POPULATION["clients"])
    assert point["metrics"]["committed"] > 0
