"""Live loopback clusters: total order over real TCP, for every protocol.

Each test spawns a real ``python -m repro serve`` controller (which
spawns one OS process per replica), drives it with ``python -m repro
load``, and judges the run by the controller's machine-readable
summary line: every correct replica must report a committed history
that is a prefix of every other's (live total-order safety), and the
offered requests must actually commit.

The fail-over test additionally kills the SC coordinator mid-run —
the node hosting ``p1`` hard-exits, TCP connections drop, and the
surviving replicas must keep committing through the shadow while the
clients never notice.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [REPO_SRC, env.get("PYTHONPATH", "")] if p
    )
    return env


def start_serve(*args: str) -> tuple[subprocess.Popen, str]:
    """Launch a controller; returns (process, control address)."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--bind", "127.0.0.1:0", *args],
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.time() + 30
    address = None
    while time.time() < deadline:
        line = proc.stderr.readline()
        if not line:
            break
        match = re.search(r"control listening on (\S+)", line)
        if match:
            address = match.group(1)
            break
    if address is None:
        proc.kill()
        raise AssertionError("controller never announced its control port")
    return proc, address


def run_load(control: str, rate: float, duration: float) -> dict:
    out = subprocess.run(
        [sys.executable, "-m", "repro", "load", "--control", control,
         "--rate", str(rate), "--duration", str(duration)],
        env=_env(),
        capture_output=True,
        text=True,
        timeout=duration + 30,
    )
    assert out.returncode == 0, f"load failed:\n{out.stdout}\n{out.stderr}"
    return json.loads(out.stdout.strip().splitlines()[-1])


def finish_serve(proc: subprocess.Popen, timeout: float) -> dict:
    stdout, stderr = proc.communicate(timeout=timeout)
    assert proc.returncode == 0, f"serve failed ({proc.returncode}):\n{stderr}"
    return json.loads(stdout.strip().splitlines()[-1])


@pytest.mark.parametrize("protocol", ("sc", "scr", "bft", "ct"))
def test_cluster_commits_identical_prefix(protocol):
    proc, control = start_serve("--protocol", protocol, "--f", "1",
                                "--duration", "5")
    try:
        load = run_load(control, rate=40, duration=2.5)
        summary = finish_serve(proc, timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert load["issued"] > 0
    assert load["committed"] == load["issued"]
    assert load["latency_mean_s"] > 0
    assert summary["histories_agree"] is True
    assert summary["committed_prefix"] >= load["committed"]
    assert sorted(summary["reported"]) == sorted(summary["replicas"])
    assert summary["killed"] == []


def test_sc_survives_coordinator_kill(tmp_path):
    """One injected replica failure mid-load: the coordinator's node
    process dies for real, survivors agree, clients lose nothing, and
    the artifact records the fail-over through the standard probes."""
    proc, control = start_serve(
        "--protocol", "sc", "--f", "1", "--duration", "8",
        "--kill-after", "p1:2.5", "--json-dir", str(tmp_path),
    )
    try:
        load = run_load(control, rate=40, duration=5)
        summary = finish_serve(proc, timeout=40)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert load["issued"] > 0
    # The fail-over is supposed to be invisible to correct clients.
    assert load["committed"] >= 0.9 * load["issued"]
    assert summary["killed"] == ["p1"]
    assert "p1" not in summary["survivors"]
    assert len(summary["survivors"]) == 3
    assert summary["histories_agree"] is True
    assert summary["committed_prefix"] > 0

    artifact = json.loads((tmp_path / "BENCH_live_sc.json").read_text())
    assert artifact["schema_version"] == 3
    [point] = artifact["points"]
    assert point["kind"] == "live-order"
    assert "failover" in point["probes"]
    assert point["metrics"]["failover_latency"] > 0
    assert point["metrics"]["batches_measured"] > 0


def test_serve_controller_reaps_children_on_sigterm():
    """Satellite regression: a controller killed mid-run must take its
    replica subprocesses down with it — no orphaned `serve --join`
    processes keep the ports and CPUs busy."""
    proc, control = start_serve("--protocol", "ct", "--f", "1")
    try:
        time.sleep(1.0)
        proc.send_signal(signal.SIGTERM)
        stdout, _ = proc.communicate(timeout=20)
    finally:
        if proc.poll() is None:
            proc.kill()
    # SIGTERM means "stop the cluster", not "crash": the controller
    # still verifies and summarises before exiting.
    summary = json.loads(stdout.strip().splitlines()[-1])
    assert summary["histories_agree"] is True
    remaining = subprocess.run(
        ["pgrep", "-f", f"join {control}"], capture_output=True, text=True
    )
    assert remaining.stdout.strip() == "", (
        f"orphaned replica processes survive the controller:\n{remaining.stdout}"
    )


def test_prefix_agreement_is_pairwise():
    """Reviewer regression: two long histories that both extend a short
    reference but diverge from each other must fail the safety check —
    agreement is pairwise, not against an arbitrary reference."""
    from repro.live.cluster import check_prefix_agreement

    a, b, c = (1, "x"), (2, "y"), (2, "z")
    assert check_prefix_agreement({}) == (0, True)
    assert check_prefix_agreement({"p1": [a], "p2": [a, b], "p3": [a, b]}) \
        == (1, True)
    prefix, ok = check_prefix_agreement({"p1": [a], "p2": [a, b], "p3": [a, c]})
    assert ok is False
